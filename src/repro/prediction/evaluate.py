"""Grading predictions against the simulator's ground-truth QoE.

The paper's operators can only validate MOS predictions against the
sparse ratings users volunteer; our simulator knows the *experienced*
per-session MOS (the quality each participant actually saw, before
feedback bias and rounding), so we can measure true error.  This module
computes overall and per-platform MAE/bias, reusing
:class:`~repro.core.stats.BinGrouping` for the group-by — platforms map
to integer bin keys, one grouping is built, and both the absolute and
the signed error columns reduce against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.stats import bin_grouping
from repro.errors import AnalysisError


@dataclass(frozen=True)
class PlatformErrors:
    """Prediction error for one platform's sessions."""

    platform: str
    mae: float
    bias: float
    n: int


@dataclass(frozen=True)
class GroundTruthReport:
    """Prediction error vs the simulator's experienced QoE."""

    mae: float
    bias: float
    n: int
    per_platform: Tuple[PlatformErrors, ...]

    def as_dict(self) -> dict:
        return {
            "mae": round(self.mae, 9),
            "bias": round(self.bias, 9),
            "n": self.n,
            "per_platform": {
                p.platform: {
                    "mae": round(p.mae, 9),
                    "bias": round(p.bias, 9),
                    "n": p.n,
                }
                for p in self.per_platform
            },
        }

    def table(self) -> str:
        """Fixed-width per-platform error table (CLI / log friendly)."""
        headers = ("platform", "mae", "bias", "n")
        rows: List[Tuple[str, ...]] = [headers]
        for p in self.per_platform + (
            PlatformErrors("(all)", self.mae, self.bias, self.n),
        ):
            rows.append((
                p.platform, f"{p.mae:.4f}", f"{p.bias:+.4f}", str(p.n),
            ))
        widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(
                cell.ljust(widths[col]) for col, cell in enumerate(row)
            ).rstrip())
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


def evaluate_ground_truth(
    predictions: Sequence[float],
    truth: Sequence[float],
    platforms: Sequence[str],
) -> GroundTruthReport:
    """MAE and signed bias of ``predictions`` vs ``truth``, per platform.

    ``bias`` is ``mean(prediction - truth)``: positive means the model
    flatters the experience, negative means it undersells it.
    """
    pred = np.asarray(predictions, dtype=float)
    actual = np.asarray(truth, dtype=float)
    if pred.shape != actual.shape or pred.ndim != 1:
        raise AnalysisError(
            f"predictions and truth must be equal-length 1-D arrays: "
            f"{pred.shape} vs {actual.shape}"
        )
    if len(platforms) != len(pred):
        raise AnalysisError(
            f"platforms must align with predictions: "
            f"{len(platforms)} != {len(pred)}"
        )
    if len(pred) == 0:
        raise AnalysisError("cannot evaluate zero predictions")
    errors = pred - actual
    names = sorted(set(platforms))
    index = {name: i for i, name in enumerate(names)}
    keys = np.array([index[p] for p in platforms], dtype=float)
    # Integer-centred edges: platform i falls in bin [i-0.5, i+0.5).
    grouping = bin_grouping(keys, np.arange(len(names) + 1) - 0.5)
    mae_curve = grouping.reduce(np.abs(errors), "mean")
    bias_curve = grouping.reduce(errors, "mean")
    per_platform = tuple(
        PlatformErrors(
            platform=name,
            mae=float(mae_curve.stat[i]),
            bias=float(bias_curve.stat[i]),
            n=int(grouping.counts[i]),
        )
        for i, name in enumerate(names)
    )
    return GroundTruthReport(
        mae=float(np.abs(errors).mean()),
        bias=float(errors.mean()),
        n=len(pred),
        per_platform=per_platform,
    )

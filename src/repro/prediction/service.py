"""The serving-side prediction engine and its cost/degradation ladder.

:class:`PredictionEngine` binds a fitted
:class:`~repro.prediction.model.ColumnarMosPredictor` to one columnar
block and answers row-indexed prediction requests under a deadline.
The ladder has exactly two rungs:

1. **Full model** — one vectorized ``predict_columns`` call over the
   batch's rows, when the remaining deadline budget covers the model's
   estimated per-batch cost.
2. **E-model prior** — the cheaper, training-free
   :func:`~repro.prediction.emodel.emodel_prior_mos`, marked
   ``degraded``, when the budget does not.  The fallback runs even if
   the budget cannot cover *it* either: answering late-but-bounded
   beats never answering, and the overrun is then at most one
   (fallback) batch cost — the invariant the soak asserts.

Costs come from an explicit :class:`PredictionCostModel` blended with a
clock-measured EWMA of observed batch costs, never from direct
``time.*`` calls — this module is covered by the clock-discipline lint.
With ``charge_clock=True`` the engine *sleeps* the modelled cost on the
injected clock, which is how the deterministic soaks make compute time
visible to deadlines on a :class:`~repro.resilience.clock.ManualClock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import AnalysisError, ConfigError
from repro.netsim.mitigation import MitigationStack
from repro.netsim.qoe import QoeModel
from repro.perf.columnar import ParticipantColumns
from repro.prediction.emodel import emodel_prior_mos
from repro.prediction.model import ColumnarMosPredictor
from repro.resilience.clock import Clock
from repro.serving.deadline import Deadline

#: Weight of the newest observation in the cost EWMA.
_EWMA_ALPHA = 0.3


@dataclass(frozen=True)
class PredictionCostModel:
    """Affine per-batch cost model for the deadline ladder.

    Attributes:
        base_s: fixed per-batch dispatch cost.
        per_row_s: marginal cost per predicted row.
        fallback_scale: the E-model prior's cost as a fraction of the
            full model's (it skips standardisation and the trained
            weights, so it is strictly cheaper).
    """

    base_s: float = 0.002
    per_row_s: float = 2e-6
    fallback_scale: float = 0.25

    def __post_init__(self) -> None:
        if self.base_s < 0 or self.per_row_s < 0:
            raise ConfigError("cost model terms must be non-negative")
        if not 0 < self.fallback_scale <= 1:
            raise ConfigError("fallback_scale must be in (0, 1]")

    def batch_cost_s(self, n_rows: int) -> float:
        return self.base_s + self.per_row_s * n_rows

    def fallback_cost_s(self, n_rows: int) -> float:
        return self.fallback_scale * self.batch_cost_s(n_rows)


@dataclass(frozen=True)
class MosPredictionAnswer:
    """One query's slice of a (possibly coalesced) prediction batch."""

    predictions: np.ndarray
    rows: Tuple[int, ...]
    model: str                 # "ridge" (full) or "emodel" (fallback)
    degraded: bool
    batch_rows: int            # rows in the vectorized call that served it
    coalesced: int             # queries merged into that call

    def summary(self) -> str:
        mean = float(self.predictions.mean()) if len(self.predictions) else 0.0
        return (
            f"{len(self.predictions)} prediction(s) via {self.model}"
            f"{' (degraded)' if self.degraded else ''}, mean MOS "
            f"{mean:.2f}, batch of {self.batch_rows} row(s) "
            f"across {self.coalesced} quer{'y' if self.coalesced == 1 else 'ies'}"
        )


class PredictionEngine:
    """Deadline-aware batched inference over one columnar block."""

    def __init__(
        self,
        model: ColumnarMosPredictor,
        columns: ParticipantColumns,
        clock: Clock,
        cost_model: Optional[PredictionCostModel] = None,
        charge_clock: bool = False,
        qoe_model: Optional[QoeModel] = None,
        stack: Optional[MitigationStack] = None,
    ) -> None:
        if not model.is_fitted:
            raise AnalysisError(
                "prediction engine requires a fitted model; call "
                "fit_columns first"
            )
        if len(columns) == 0:
            raise ConfigError("prediction engine requires a non-empty block")
        self._model = model
        self._columns = columns
        self._clock = clock
        self.cost_model = cost_model or PredictionCostModel()
        self._charge_clock = charge_clock
        self._qoe_model = qoe_model
        self._stack = stack
        self._observed_per_row_s: Optional[float] = None
        # Monotonic serving counters (exposed via metrics()).
        self.batches = 0
        self.rows_predicted = 0
        self.fallback_batches = 0
        self.fallback_rows = 0
        self.coalesced_queries = 0

    @property
    def columns(self) -> ParticipantColumns:
        return self._columns

    @property
    def model(self) -> ColumnarMosPredictor:
        return self._model

    @property
    def n_rows(self) -> int:
        return len(self._columns)

    def estimated_batch_cost_s(self, n_rows: int) -> float:
        """Configured cost blended with the observed per-row EWMA.

        The estimate never drops below the configured model — a few
        lucky fast batches must not talk the ladder into missing
        deadlines — but it rises when measured costs exceed it.
        """
        configured = self.cost_model.batch_cost_s(n_rows)
        if self._observed_per_row_s is None:
            return configured
        observed = (
            self.cost_model.base_s + self._observed_per_row_s * n_rows
        )
        return max(configured, observed)

    def _observe(self, elapsed_s: float, n_rows: int) -> None:
        if elapsed_s <= 0 or n_rows <= 0:
            return
        per_row = elapsed_s / n_rows
        if self._observed_per_row_s is None:
            self._observed_per_row_s = per_row
        else:
            self._observed_per_row_s += _EWMA_ALPHA * (
                per_row - self._observed_per_row_s
            )

    def check_rows(self, rows: Optional[Tuple[int, ...]]) -> np.ndarray:
        """Validate a query's row indices against the bound block."""
        if rows is None:
            return np.arange(self.n_rows, dtype=np.intp)
        idx = np.asarray(rows, dtype=np.intp)
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_rows):
            raise ConfigError(
                f"prediction rows out of range for a block of "
                f"{self.n_rows} row(s)"
            )
        return idx

    def predict_rows(
        self,
        rows: np.ndarray,
        deadline: Optional[Deadline] = None,
        coalesced: int = 1,
    ) -> MosPredictionAnswer:
        """One vectorized batch through the degradation ladder."""
        idx = np.asarray(rows, dtype=np.intp)
        n = int(idx.size)
        degraded = (
            deadline is not None
            and deadline.remaining() < self.estimated_batch_cost_s(n)
        )
        started = self._clock.now()
        if degraded:
            predictions = emodel_prior_mos(
                self._columns, idx,
                model=self._qoe_model, stack=self._stack,
            )
            charged = self.cost_model.fallback_cost_s(n)
        else:
            predictions = self._model.predict_columns(self._columns, idx)
            charged = self.estimated_batch_cost_s(n)
        if self._charge_clock:
            self._clock.sleep(charged)
        else:
            self._observe(self._clock.now() - started, n)
        self.batches += 1
        self.rows_predicted += n
        self.coalesced_queries += coalesced
        if degraded:
            self.fallback_batches += 1
            self.fallback_rows += n
        return MosPredictionAnswer(
            predictions=predictions,
            rows=tuple(int(i) for i in idx),
            model="emodel" if degraded else "ridge",
            degraded=degraded,
            batch_rows=n,
            coalesced=coalesced,
        )

    def metrics(self) -> Dict[str, float]:
        return {
            "batches": self.batches,
            "rows_predicted": self.rows_predicted,
            "fallback_batches": self.fallback_batches,
            "fallback_rows": self.fallback_rows,
            "coalesced_queries": self.coalesced_queries,
            "mean_batch_rows": (
                self.rows_predicted / self.batches if self.batches else 0.0
            ),
            "mean_coalesced": (
                self.coalesced_queries / self.batches if self.batches else 0.0
            ),
        }

"""Deterministic overload soak for the prediction serving path.

Drives a coalescer-equipped :class:`~repro.serving.server.UsaasServer`
with a seeded arrival schedule of ``predict_mos`` queries on a
:class:`~repro.resilience.clock.ManualClock`, then closes the books:
every submitted prediction must land in exactly one terminal state, and
any query that carried a deadline and was *answered* must have overrun
it by at most one batch cost (the degradation ladder's invariant).

The driver advances the clock in steps no larger than half the
coalescer's ``max_delay_s`` while idle, so age-due flushes happen
promptly instead of being discovered an arbitrary interval later —
mirroring a real server's timer wheel without giving the coalescer a
clock of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.usaas.query import UsaasQuery
from repro.errors import ConfigError, QueryRejectedError
from repro.perf.columnar import ParticipantColumns
from repro.prediction.coalescer import CoalescerConfig
from repro.prediction.model import ColumnarMosPredictor
from repro.prediction.service import PredictionCostModel, PredictionEngine
from repro.resilience.clock import ManualClock
from repro.resilience.faults import Arrival, FaultPlan
from repro.serving.server import DrainReport, UsaasServer


@dataclass(frozen=True)
class PredictionSoakReport:
    """Closed-books summary of one prediction soak."""

    arrivals: int
    submitted: int
    served: int
    served_degraded: int
    shed: int
    deadline_exceeded: int
    failed: int
    batches: int
    fallback_batches: int
    mean_coalesced: float
    p50_latency_s: Optional[float]
    p99_latency_s: Optional[float]
    max_overrun_s: float
    drain: DrainReport
    final_clock_s: float

    @property
    def accounted(self) -> bool:
        """Exactly-once: every submission reached one terminal state."""
        return self.submitted == (
            self.served + self.served_degraded + self.shed
            + self.deadline_exceeded + self.failed
        )

    @property
    def answered(self) -> int:
        return self.served + self.served_degraded

    @property
    def shed_rate(self) -> float:
        return self.shed / self.submitted if self.submitted else 0.0

    def counters_dict(self) -> Dict[str, object]:
        return {
            "arrivals": self.arrivals,
            "submitted": self.submitted,
            "served": self.served,
            "served_degraded": self.served_degraded,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed,
            "batches": self.batches,
            "fallback_batches": self.fallback_batches,
            "mean_coalesced": round(self.mean_coalesced, 6),
            "p50_latency_s": self.p50_latency_s,
            "p99_latency_s": self.p99_latency_s,
            "max_overrun_s": round(self.max_overrun_s, 9),
            "final_clock_s": round(self.final_clock_s, 6),
        }

    def summary(self) -> str:
        return (
            f"prediction soak: {self.submitted} submitted, "
            f"{self.served} served, {self.served_degraded} degraded, "
            f"{self.shed} shed, {self.deadline_exceeded} deadline, "
            f"{self.failed} failed over {self.batches} batch(es) "
            f"({self.fallback_batches} fallback)"
        )


def synthetic_prediction_server(
    columns: ParticipantColumns,
    model: ColumnarMosPredictor,
    seed: int = 0,
    cost_model: Optional[PredictionCostModel] = None,
    coalescer: Optional[CoalescerConfig] = None,
    max_pending: int = 8,
    shed_policy: str = "priority",
    min_feasible_s: Optional[float] = None,
) -> Tuple[UsaasServer, FaultPlan, PredictionEngine]:
    """A clock-charged prediction server on a fresh ``ManualClock``.

    The underlying :func:`~repro.serving.soak.synthetic_soak_service`
    provides the clock and executor plumbing; the engine charges its
    modelled batch cost to that clock (``charge_clock=True``) so
    deadline pressure is real and byte-reproducible.  ``min_feasible_s``
    defaults to the cost of a single-row *fallback* batch: a deadline
    that cannot fit even that is shed at admission as infeasible
    instead of being answered hopelessly late.
    """
    from repro.serving.soak import synthetic_soak_service

    plan = FaultPlan(seed=seed, clock=ManualClock())
    service = synthetic_soak_service(plan)
    cost_model = cost_model or PredictionCostModel()
    engine = PredictionEngine(
        model, columns, clock=plan.clock,
        cost_model=cost_model, charge_clock=True,
    )
    if min_feasible_s is None:
        min_feasible_s = cost_model.fallback_cost_s(1)
    server = UsaasServer(
        service,
        max_pending=max_pending,
        shed_policy=shed_policy,
        min_feasible_s=min_feasible_s,
        prediction=engine,
        coalescer=coalescer or CoalescerConfig(),
    )
    return server, plan, engine


def run_prediction_soak(
    server: UsaasServer,
    arrivals: Sequence[Arrival],
    rows_for: Optional[
        Callable[[Arrival, int], Optional[Tuple[int, ...]]]
    ] = None,
    network: str = "synthetic",
) -> PredictionSoakReport:
    """Feed ``arrivals`` as ``predict_mos`` queries and close the books.

    ``rows_for(arrival, index)`` chooses each query's row subset (None
    = every row of the engine's block); it must be a pure function of
    its arguments so the soak stays deterministic.
    """
    if server.prediction is None:
        raise ConfigError("prediction soak requires a prediction engine")
    clock = server.clock
    advance = getattr(clock, "advance", clock.sleep)
    tick = None
    if server.coalescer is not None:
        delay = server.coalescer.config.max_delay_s
        tick = delay / 2 if delay > 0 else None
    ordered = sorted(arrivals, key=lambda a: a.at_s)
    engine = server.prediction
    budgets: Dict[int, float] = {}
    submitted = 0
    for index, arrival in enumerate(ordered):
        while clock.now() < arrival.at_s:
            if server.has_pending():
                server.run_next()
            else:
                step = arrival.at_s - clock.now()
                if tick is not None:
                    step = min(step, tick)
                advance(step)
        rows = rows_for(arrival, index) if rows_for is not None else None
        query = UsaasQuery(network=network, kind="predict_mos", rows=rows)
        submitted += 1
        try:
            ticket = server.submit(
                query,
                priority=arrival.priority,
                deadline_s=arrival.deadline_s,
            )
        except QueryRejectedError:
            continue  # accounted as shed by the server
        if arrival.deadline_s is not None:
            budgets[ticket.id] = float(arrival.deadline_s)
    drain = server.drain()

    counters = server.kind_counters("predict_mos")
    max_overrun = 0.0
    for ticket_id, budget in budgets.items():
        outcome = server.outcomes.get(ticket_id)
        if outcome is None or outcome.latency_s is None:
            continue
        if outcome.status in ("served", "served_degraded"):
            max_overrun = max(max_overrun, outcome.latency_s - budget)
    engine_metrics = engine.metrics()
    return PredictionSoakReport(
        arrivals=len(ordered),
        submitted=submitted,
        served=counters.served,
        served_degraded=counters.served_degraded,
        shed=counters.shed,
        deadline_exceeded=counters.deadline_exceeded,
        failed=counters.failed,
        batches=int(engine_metrics["batches"]),
        fallback_batches=int(engine_metrics["fallback_batches"]),
        mean_coalesced=float(engine_metrics["mean_coalesced"]),
        p50_latency_s=counters.as_dict()["p50_latency_s"],
        p99_latency_s=counters.as_dict()["p99_latency_s"],
        max_overrun_s=max(0.0, max_overrun),
        drain=drain,
        final_clock_s=clock.now(),
    )

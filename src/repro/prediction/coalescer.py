"""Micro-batching for batch-class ``predict_mos`` queries.

A single prediction is one tiny matvec; the fixed per-query serving
overhead (admission, deadline bookkeeping, dispatch) dwarfs it.  The
coalescer sits *in front of* the admission controller: batch-class
prediction tickets accumulate here and enter the queue as one group
occupying one slot, executed as one vectorized ``predict_columns``
call.  Interactive-class predictions never come through this path —
the server admits them directly, trading throughput for latency.

Two knobs bound the added latency (:class:`CoalescerConfig`):

* ``max_batch`` — a full buffer flushes immediately, regardless of age;
* ``max_delay_s`` — once the oldest buffered ticket has waited this
  long *on the injected clock*, the next server interaction (submit,
  ``run_next``, ``has_pending``, drain) flushes, so no query ever waits
  in the buffer past ``max_delay_s`` once the server is touched again.

The coalescer holds tickets, not queries: the server mints and counts
the ticket first, so exactly-once accounting is unaffected by whether
a prediction travelled solo or coalesced.  Time arrives as explicit
``now`` values read from the server's injected Clock — the coalescer
itself never reads a clock, which keeps it trivially deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError


@dataclass(frozen=True)
class CoalescerConfig:
    """Bounds on prediction micro-batches.

    Attributes:
        max_batch: flush as soon as this many tickets are buffered.
        max_delay_s: flush once the oldest buffered ticket has waited
            this long, full or not.
    """

    max_batch: int = 16
    max_delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError("max_batch must be >= 1")
        if self.max_delay_s < 0:
            raise ConfigError("max_delay_s must be non-negative")


class PredictionCoalescer:
    """FIFO buffer that groups tickets into admission-ready batches."""

    def __init__(self, config: CoalescerConfig) -> None:
        self._config = config
        self._entries: List = []          # (ticket, enqueued_at) pairs
        self.flushed_batches = 0
        self.flushed_tickets = 0

    @property
    def config(self) -> CoalescerConfig:
        return self._config

    def pending_count(self) -> int:
        return len(self._entries)

    def has_entries(self) -> bool:
        return bool(self._entries)

    def add(self, ticket, now: float) -> None:
        """Buffer one batch-class prediction ticket."""
        self._entries.append((ticket, float(now)))

    def oldest_wait_s(self, now: float) -> float:
        if not self._entries:
            return 0.0
        return float(now) - self._entries[0][1]

    def due(self, now: float) -> bool:
        """True when the next interaction must flush at least one batch."""
        if not self._entries:
            return False
        return (
            len(self._entries) >= self._config.max_batch
            or self.oldest_wait_s(now) >= self._config.max_delay_s
        )

    def _pop_batch(self) -> List:
        batch = [t for t, _ in self._entries[: self._config.max_batch]]
        del self._entries[: self._config.max_batch]
        self.flushed_batches += 1
        self.flushed_tickets += len(batch)
        return batch

    def flush_due(self, now: float) -> List[List]:
        """Every batch that is due at ``now`` (oldest first)."""
        batches: List[List] = []
        while self.due(now):
            batches.append(self._pop_batch())
        return batches

    def flush_all(self) -> List[List]:
        """Everything, due or not — the drain/serve path."""
        batches: List[List] = []
        while self._entries:
            batches.append(self._pop_batch())
        return batches

"""Columnar ridge regression for MOS, byte-identical to the record path.

:class:`ColumnarMosPredictor` is the training/inference half of the
prediction tentpole: it fits the same standardised ridge model as
:class:`repro.engagement.predictor.MosPredictor` but reads its features
straight out of a :class:`~repro.perf.columnar.ParticipantColumns`
block — network aggregates via :meth:`ParticipantColumns.metric` and
engagement percentages via the block's attribute arrays — so neither
training nor inference ever touches a record object.

Equivalence is a hard contract, pinned the way ``test_columnar.py``
pins the analysis paths: the design matrix is assembled with the exact
same numpy construction as the record reference (a ``(k, n)``
C-contiguous stack of feature columns, transposed), the rated-row
filter selects the same rows in the same order as the reference's
``p.rating is not None`` list comprehension, and the normal-equation
solve runs the identical op sequence.  Weights and predictions are
therefore ``tobytes``-identical, not merely close — which is what lets
the serving layer swap the columnar engine in without changing a single
answer.

Column *extraction* is zero-copy (the feature arrays are the block's
own buffers); only the final stack into the design matrix copies, which
BLAS needs anyway.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.engagement.predictor import ALL_FEATURES, NETWORK_FEATURES
from repro.errors import AnalysisError, InsufficientRatingsError
from repro.perf.columnar import ParticipantColumns


class ColumnarMosPredictor:
    """Ridge regression from columnar session features to the 1–5 rating.

    Mirrors :class:`~repro.engagement.predictor.MosPredictor` exactly —
    same features, same ``l2``, same standardisation, same closed-form
    solve — but fits and predicts on column blocks.  ``fit_columns`` on
    a block built from a record dataset yields ``tobytes``-identical
    weights to the record reference fitted on the same sessions, and
    ``predict_columns`` yields ``tobytes``-identical predictions.
    """

    def __init__(
        self,
        features: Sequence[str] = ALL_FEATURES,
        l2: float = 1.0,
        network_stat: str = "mean",
    ) -> None:
        unknown = [f for f in features if f not in ALL_FEATURES]
        if unknown:
            raise AnalysisError(f"unknown features: {unknown}")
        if not features:
            raise AnalysisError("at least one feature required")
        if l2 < 0:
            raise AnalysisError("l2 must be non-negative")
        self._features = tuple(features)
        self._l2 = l2
        self._network_stat = network_stat
        self._weights: Optional[np.ndarray] = None
        self._mean: Optional[np.ndarray] = None
        self._sd: Optional[np.ndarray] = None
        self._intercept: float = 0.0

    @property
    def features(self) -> Tuple[str, ...]:
        return self._features

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    def _feature_column(self, cols: ParticipantColumns, name: str) -> np.ndarray:
        if name in NETWORK_FEATURES:
            return cols.metric(name, self._network_stat)
        return np.asarray(getattr(cols, name), dtype=float)

    def _design(
        self,
        cols: ParticipantColumns,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        # Identical construction to the record reference: stack the k
        # feature columns into a (k, n) C-contiguous array, then view it
        # transposed.  Keeping the construction (not just the values)
        # identical is what makes the downstream reductions and BLAS
        # calls bit-for-bit reproducible against the record path.
        columns = []
        for name in self._features:
            col = self._feature_column(cols, name)
            columns.append(col if rows is None else col[rows])
        return np.array(columns, dtype=float).T

    def fit_columns(
        self,
        cols: ParticipantColumns,
        exclude: Optional[np.ndarray] = None,
    ) -> "ColumnarMosPredictor":
        """Fit on the block's rated rows (NaN in ``rating`` = unrated).

        ``exclude`` is an optional boolean mask over *all* rows marking
        ratings the trainer must not learn from — typically
        :func:`repro.integrity.trust.fraud_rating_mask`, so a rating-
        fraud campaign cannot steer the model.  With ``exclude=None``
        (or an all-False mask) the fit is byte-identical to the
        unfiltered path.

        Raises:
            InsufficientRatingsError: fewer rated rows than the model
                needs — e.g. a corpus generated with
                ``FeedbackModel.sample_rate=0`` — *before* any linear
                algebra runs, so the failure names the rating count
                instead of surfacing as a numpy ``LinAlgError``.
        """
        rating = np.asarray(cols.rating, dtype=float)
        finite = np.isfinite(rating)
        if exclude is not None:
            exclude = np.asarray(exclude, dtype=bool)
            if exclude.shape != rating.shape:
                raise AnalysisError(
                    f"exclude mask must cover all rows: "
                    f"{exclude.shape} != {rating.shape}"
                )
            finite = finite & ~exclude
        rated = np.flatnonzero(finite)
        required = len(self._features) + 2
        if len(rated) < required:
            raise InsufficientRatingsError(len(rated), required)
        x = self._design(cols, rated)
        y = rating[rated]
        self._mean = x.mean(axis=0)
        sd = x.std(axis=0)
        sd[sd == 0] = 1.0
        self._sd = sd
        xs = (x - self._mean) / self._sd
        n_features = xs.shape[1]
        gram = xs.T @ xs + self._l2 * np.eye(n_features)
        self._weights = np.linalg.solve(gram, xs.T @ (y - y.mean()))
        self._intercept = float(y.mean())
        return self

    def predict_columns(
        self,
        cols: ParticipantColumns,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Predict MOS for ``rows`` of the block (all rows when None)."""
        if not self.is_fitted:
            raise AnalysisError("predictor is not fitted")
        if rows is not None:
            rows = np.asarray(rows, dtype=np.intp)
            if rows.size == 0:
                return np.array([])
        elif len(cols) == 0:
            return np.array([])
        xs = (self._design(cols, rows) - self._mean) / self._sd
        raw = xs @ self._weights + self._intercept
        return np.clip(raw, 1.0, 5.0)

    def weights(self) -> Dict[str, float]:
        """Standardised coefficient per feature (importance proxy)."""
        if not self.is_fitted:
            raise AnalysisError("predictor is not fitted")
        return dict(zip(self._features, (float(w) for w in self._weights)))

"""Delay-variation (jitter) processes.

Jitter is modelled as an AR(1) process around the link's anchor jitter
scale, with occasional multiplicative spikes representing cross-traffic
bursts and wireless retransmission storms.  The AR(1) term gives each
session temporal coherence (a jittery session stays jittery), which is why
per-session *mean* jitter — the statistic the paper bins on — is a
meaningful session descriptor at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError


@dataclass
class JitterProcess:
    """AR(1) jitter with spike events.

    Attributes:
        scale_ms: anchor (long-run mean) jitter of the path.
        persistence: AR(1) coefficient in [0, 1); higher → smoother.
        spike_prob: per-interval probability of a jitter spike.
        spike_factor: multiplicative size of a spike.
    """

    scale_ms: float
    persistence: float = 0.7
    spike_prob: float = 0.05
    spike_factor: float = 3.0
    _level: float = field(default=0.0, repr=False)
    _initialised: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.scale_ms < 0:
            raise ConfigError(f"jitter scale must be >= 0, got {self.scale_ms}")
        if not 0 <= self.persistence < 1:
            raise ConfigError(
                f"persistence must be in [0, 1), got {self.persistence}"
            )
        if not 0 <= self.spike_prob <= 1:
            raise ConfigError(f"spike_prob must be in [0, 1], got {self.spike_prob}")
        if self.spike_factor < 1:
            raise ConfigError(f"spike_factor must be >= 1, got {self.spike_factor}")

    def sample_interval(self, rng: np.random.Generator) -> float:
        """Mean jitter (ms) over the next five-second interval."""
        if self.scale_ms == 0:
            return 0.0
        if not self._initialised:
            self._level = self.scale_ms
            self._initialised = True
        innovation_sd = self.scale_ms * np.sqrt(1 - self.persistence**2) * 0.4
        self._level = (
            self.persistence * self._level
            + (1 - self.persistence) * self.scale_ms
            + rng.normal(0.0, innovation_sd)
        )
        self._level = max(0.05, self._level)
        value = self._level
        if rng.random() < self.spike_prob:
            value *= 1 + (self.spike_factor - 1) * rng.random()
        return float(value)

    def reset(self) -> None:
        """Forget state between sessions."""
        self._initialised = False
        self._level = 0.0

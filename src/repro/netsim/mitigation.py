"""Application-layer safeguards: FEC, jitter buffering, concealment.

§3.2 of the paper explains the surprisingly weak loss effect: *"MS Teams
is able to effectively mitigate the packet loss using application layer
safeguards."*  This module implements those safeguards so the weak loss
effect is *mechanistic* in our reproduction rather than baked into the
analysis:

* **Forward error correction** repairs most random losses below its
  protection budget; bursty losses overwhelm it (all redundancy for a
  block is gone at once).
* The **jitter buffer** absorbs delay variation up to its target depth at
  the cost of added mouth-to-ear delay; jitter beyond the buffer surfaces
  as late-frame discard (felt as residual loss, mostly by video).
* **Concealment** (PLC for audio, freeze/LTR recovery for video) masks a
  further share of residual gaps perceptually.

Disabling the stack (``MitigationStack.disabled()``) is the ablation
DESIGN.md calls out: without it, the Fig. 1 loss panel steepens to match
the latency panel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.netsim.trace import ConditionSample


@dataclass(frozen=True)
class EffectiveConditions:
    """Conditions as *experienced* after mitigation.

    Attributes:
        delay_ms: mouth-to-ear / glass-to-glass one-way delay, including
            jitter-buffer depth.
        residual_audio_loss_pct: audible gap rate after FEC + PLC.
        residual_video_loss_pct: visible artefact rate after FEC +
            freeze-recovery; includes late frames discarded by the buffer.
        video_bitrate_share: fraction of the wanted video bitrate the
            bandwidth could carry (1.0 = unconstrained).
        audio_bitrate_share: same for audio (almost always 1.0).
    """

    delay_ms: float
    residual_audio_loss_pct: float
    residual_video_loss_pct: float
    video_bitrate_share: float
    audio_bitrate_share: float


@dataclass(frozen=True)
class MitigationStack:
    """Tunable model of the conferencing client's loss/jitter defences.

    Attributes:
        fec_budget_pct: loss percentage fully repairable by FEC when
            losses are random.
        fec_efficiency: fraction of in-budget random losses repaired.
        burst_penalty: how much burstiness degrades FEC (0 = none).
        jitter_buffer_ms: adaptive buffer target depth.
        audio_concealment: fraction of residual audio gaps masked by PLC.
        video_concealment: fraction of residual video artefacts masked.
        video_target_mbps / audio_target_mbps: codec target bitrates.
    """

    fec_budget_pct: float = 2.0
    fec_efficiency: float = 0.92
    burst_penalty: float = 0.5
    jitter_buffer_ms: float = 4.0
    audio_concealment: float = 0.6
    video_concealment: float = 0.35
    video_target_mbps: float = 1.0
    audio_target_mbps: float = 0.064

    def __post_init__(self) -> None:
        if self.fec_budget_pct < 0:
            raise ConfigError("fec_budget_pct must be >= 0")
        if not 0 <= self.fec_efficiency <= 1:
            raise ConfigError("fec_efficiency must be in [0, 1]")
        if not 0 <= self.burst_penalty <= 1:
            raise ConfigError("burst_penalty must be in [0, 1]")
        if self.jitter_buffer_ms < 0:
            raise ConfigError("jitter_buffer_ms must be >= 0")
        if not 0 <= self.audio_concealment <= 1:
            raise ConfigError("audio_concealment must be in [0, 1]")
        if not 0 <= self.video_concealment <= 1:
            raise ConfigError("video_concealment must be in [0, 1]")
        if self.video_target_mbps <= 0 or self.audio_target_mbps <= 0:
            raise ConfigError("codec target bitrates must be positive")

    @classmethod
    def disabled(cls) -> "MitigationStack":
        """No FEC, no buffer headroom, no concealment — the ablation."""
        return cls(
            fec_budget_pct=0.0,
            fec_efficiency=0.0,
            burst_penalty=1.0,
            jitter_buffer_ms=0.0,
            audio_concealment=0.0,
            video_concealment=0.0,
        )

    def apply(self, sample: ConditionSample, burstiness: float = 0.3) -> EffectiveConditions:
        """Map raw network conditions to experienced conditions."""
        if not 0 <= burstiness <= 1:
            raise ConfigError(f"burstiness must be in [0, 1], got {burstiness}")

        # --- FEC: repairs in-budget loss, degraded by burstiness. ---
        loss = sample.loss_pct
        effective_efficiency = self.fec_efficiency * (1 - self.burst_penalty * burstiness)
        in_budget = min(loss, self.fec_budget_pct)
        over_budget = max(0.0, loss - self.fec_budget_pct)
        after_fec = in_budget * (1 - effective_efficiency) + over_budget

        # --- Jitter buffer: absorbs up to its depth, discards the rest. ---
        excess_jitter = max(0.0, sample.jitter_ms - self.jitter_buffer_ms)
        # Late-frame discard grows with excess jitter; video frames (large,
        # multi-packet) suffer disproportionately.
        late_audio_pct = min(20.0, 0.15 * excess_jitter)
        late_video_pct = min(40.0, 1.5 * excess_jitter)

        # --- Concealment over what's left. ---
        residual_audio = (after_fec + late_audio_pct) * (1 - self.audio_concealment)
        residual_video = (after_fec + late_video_pct) * (1 - self.video_concealment)

        # --- Bandwidth adequacy. ---
        video_share = min(1.0, sample.bandwidth_mbps / self.video_target_mbps)
        audio_share = min(1.0, sample.bandwidth_mbps / self.audio_target_mbps)

        delay = sample.latency_ms + self.jitter_buffer_ms + min(
            sample.jitter_ms, self.jitter_buffer_ms
        )
        return EffectiveConditions(
            delay_ms=float(delay),
            residual_audio_loss_pct=float(min(100.0, residual_audio)),
            residual_video_loss_pct=float(min(100.0, residual_video)),
            video_bitrate_share=float(video_share),
            audio_bitrate_share=float(audio_share),
        )

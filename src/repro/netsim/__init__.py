"""Network condition simulation and QoE modelling.

This substrate stands in for the real networks under the paper's two
studies.  It produces per-session traces of the four metrics the MS Teams
client reports every five seconds — latency, packet loss, jitter and
available bandwidth (§3.1) — and converts them into experienced quality:

* condition *processes* with realistic temporal structure
  (:mod:`repro.netsim.link`, :mod:`repro.netsim.loss`,
  :mod:`repro.netsim.jitter`, composed by :mod:`repro.netsim.path`),
* five-second sampling into traces (:mod:`repro.netsim.trace`),
* the application-layer safeguards the paper credits for the weak loss
  effect — FEC, jitter buffering, concealment
  (:mod:`repro.netsim.mitigation`), and
* an ITU-T E-model-style mapping from (mitigated) conditions to audio,
  video and interactivity quality (:mod:`repro.netsim.qoe`).
"""

from repro.netsim.jitter import JitterProcess
from repro.netsim.link import LinkProfile, NETWORK_TIERS, sample_link_profile
from repro.netsim.loss import BernoulliLoss, GilbertElliottLoss
from repro.netsim.mitigation import EffectiveConditions, MitigationStack
from repro.netsim.path import NetworkPath
from repro.netsim.qoe import QoeModel, QualityScores
from repro.netsim.trace import (
    ConditionSample,
    ConditionTrace,
    TraceGenerator,
    generate_condition_arrays,
)
from repro.netsim.abr import AbrController, AbrResult, simulate_abr
from repro.netsim.queueing import BottleneckQueue, profile_for_load, simulate_queue
from repro.netsim.tuning import MitigationTuner, TuningResult, tuning_gain
from repro.netsim.vectorized import (
    EffectiveArrays,
    QualityArrays,
    mitigate_arrays,
    qoe_arrays,
)

__all__ = [
    "AbrController",
    "AbrResult",
    "BernoulliLoss",
    "BottleneckQueue",
    "ConditionSample",
    "ConditionTrace",
    "EffectiveArrays",
    "EffectiveConditions",
    "GilbertElliottLoss",
    "JitterProcess",
    "LinkProfile",
    "MitigationStack",
    "MitigationTuner",
    "NETWORK_TIERS",
    "TuningResult",
    "tuning_gain",
    "NetworkPath",
    "QoeModel",
    "QualityArrays",
    "QualityScores",
    "TraceGenerator",
    "generate_condition_arrays",
    "mitigate_arrays",
    "profile_for_load",
    "qoe_arrays",
    "sample_link_profile",
    "simulate_abr",
    "simulate_queue",
]

"""§6 online resource tuning: act on what the user signals say.

The paper: *"If call latency, for example, is the discerning factor
affecting user experience on MS Teams, could network resource allocation
be tuned online to cater to the demand?"*

The conferencing client owns one genuinely two-sided knob: the **jitter
buffer**.  Deepening it absorbs delay variation (protecting video, the
Cam On driver) but adds mouth-to-ear delay (hurting interactivity, the
Mic On driver).  The right depth therefore depends on the *path*: a jittery
low-latency cable line wants a deep buffer, a clean high-latency
satellite path wants a shallow one.  USaaS-style engagement feedback is
exactly what reveals which side of the trade a cohort sits on.

:class:`MitigationTuner` sweeps buffer depths (and optionally FEC budget)
against the QoE model for a given path profile and recommends per-cohort
settings; :func:`tuning_gain` quantifies the improvement over the
one-size-fits-all default.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.netsim.link import LinkProfile
from repro.netsim.mitigation import MitigationStack
from repro.netsim.qoe import QoeModel
from repro.netsim.trace import generate_condition_arrays
from repro.netsim.vectorized import mitigate_arrays, qoe_arrays
from repro.rng import derive


@dataclass(frozen=True)
class TuningResult:
    """Recommended settings for one path profile.

    Attributes:
        stack: the recommended mitigation stack.
        score: mean objective under the recommendation.
        default_score: mean objective under the default stack.
        objective: which quality dimension was optimised.
    """

    stack: MitigationStack
    score: float
    default_score: float
    objective: str

    @property
    def gain(self) -> float:
        return self.score - self.default_score


class MitigationTuner:
    """Sweep-based per-cohort mitigation tuning.

    Attributes:
        buffer_depths_ms: candidate jitter-buffer depths.
        fec_budgets_pct: candidate FEC budgets (None keeps the default).
        objective: ``"overall"`` (blended MOS), ``"interactivity"`` or
            ``"video"``.
        n_intervals: simulated five-second intervals per evaluation.
    """

    def __init__(
        self,
        buffer_depths_ms: Sequence[float] = (0.0, 2.0, 4.0, 8.0, 16.0, 32.0),
        fec_budgets_pct: Optional[Sequence[float]] = None,
        objective: str = "overall",
        n_intervals: int = 360,
        qoe: Optional[QoeModel] = None,
        seed: int = 0,
    ) -> None:
        if not buffer_depths_ms:
            raise ConfigError("need at least one candidate buffer depth")
        if any(d < 0 for d in buffer_depths_ms):
            raise ConfigError("buffer depths must be >= 0")
        if objective not in ("overall", "interactivity", "video"):
            raise ConfigError(f"unknown objective {objective!r}")
        if n_intervals < 10:
            raise ConfigError("n_intervals must be >= 10")
        self._depths = tuple(buffer_depths_ms)
        self._budgets = tuple(fec_budgets_pct) if fec_budgets_pct else None
        self._objective = objective
        self._n_intervals = n_intervals
        self._qoe = qoe or QoeModel()
        self._seed = seed

    def _score_stack(self, profile: LinkProfile, stack: MitigationStack) -> float:
        rng = derive(self._seed, "tuning", repr(profile))
        conditions = generate_condition_arrays(profile, rng, self._n_intervals)
        eff = mitigate_arrays(
            stack,
            conditions["latency_ms"], conditions["loss_pct"],
            conditions["jitter_ms"], conditions["bandwidth_mbps"],
            profile.burstiness,
        )
        quality = qoe_arrays(self._qoe, eff)
        if self._objective == "overall":
            return float(quality.overall_mos.mean())
        if self._objective == "interactivity":
            return float(quality.interactivity.mean())
        return float(quality.video_mos.mean())

    def candidates(self, base: MitigationStack) -> List[MitigationStack]:
        stacks = []
        budgets = self._budgets or (base.fec_budget_pct,)
        for depth in self._depths:
            for budget in budgets:
                stacks.append(replace(
                    base, jitter_buffer_ms=depth, fec_budget_pct=budget
                ))
        return stacks

    def tune(
        self,
        profile: LinkProfile,
        base: MitigationStack = MitigationStack(),
    ) -> TuningResult:
        """Find the best candidate stack for a path profile."""
        default_score = self._score_stack(profile, base)
        best_stack, best_score = base, default_score
        for stack in self.candidates(base):
            score = self._score_stack(profile, stack)
            if score > best_score:
                best_stack, best_score = stack, score
        return TuningResult(
            stack=best_stack,
            score=best_score,
            default_score=default_score,
            objective=self._objective,
        )


def tuning_gain(
    profiles: Dict[str, LinkProfile],
    tuner: Optional[MitigationTuner] = None,
) -> Dict[str, TuningResult]:
    """Tune every cohort and report per-cohort recommendations."""
    if not profiles:
        raise ConfigError("profiles must be non-empty")
    tuner = tuner or MitigationTuner()
    return {name: tuner.tune(profile) for name, profile in profiles.items()}

"""Adaptive video bitrate: why bandwidth barely dents engagement.

Fig. 1 (right) shows *MS Teams is not too bandwidth hungry* — engagement
at 1 Mbps sits within 5 % of 4 Mbps.  The mechanism is the client's
bitrate ladder: video degrades *gracefully* by stepping down resolution
long before it stalls.  §3.2 also notes application-level optimisations
differ by platform ("depending on CPU and other resource availability"),
which here maps to different ladders.

:class:`AbrController` implements a conservative EWMA-estimate +
hysteresis rung selector; :func:`simulate_abr` runs it over a bandwidth
trace and summarises delivered quality (mean rung utility, switch count,
starvation fraction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, SimulationError

# Teams-like ladder: audio-only fallback through 1080p-ish.
DEFAULT_LADDER_MBPS: Tuple[float, ...] = (0.15, 0.3, 0.6, 1.0, 1.5, 2.5)

# Log-saturating perceptual utility per rung (diminishing returns).
def rung_utility(bitrate_mbps: float, ladder_top: float) -> float:
    """Perceptual value of a rung in [0, 1], log-saturating."""
    if bitrate_mbps <= 0 or ladder_top <= 0:
        raise ConfigError("bitrates must be positive")
    return float(
        np.log1p(9 * bitrate_mbps / ladder_top) / np.log1p(9)
    )


@dataclass
class AbrController:
    """EWMA bandwidth estimation with hysteretic rung switching.

    Attributes:
        ladder_mbps: ascending bitrate rungs.
        estimate_gain: EWMA weight of the newest bandwidth sample.
        up_headroom: estimate must exceed the next rung by this factor
            before switching up (prevents flapping).
        down_trigger: switch down when the estimate falls below the
            current rung times this factor.
    """

    ladder_mbps: Tuple[float, ...] = DEFAULT_LADDER_MBPS
    estimate_gain: float = 0.3
    up_headroom: float = 1.3
    down_trigger: float = 1.0
    _estimate: float = field(default=0.0, repr=False)
    _rung: int = field(default=0, repr=False)
    _started: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if len(self.ladder_mbps) < 2:
            raise ConfigError("ladder needs at least two rungs")
        if list(self.ladder_mbps) != sorted(self.ladder_mbps):
            raise ConfigError("ladder must be ascending")
        if any(b <= 0 for b in self.ladder_mbps):
            raise ConfigError("ladder bitrates must be positive")
        if not 0 < self.estimate_gain <= 1:
            raise ConfigError("estimate_gain must be in (0, 1]")
        if self.up_headroom < 1:
            raise ConfigError("up_headroom must be >= 1")
        if not 0 < self.down_trigger <= self.up_headroom:
            raise ConfigError("down_trigger must be in (0, up_headroom]")

    @property
    def current_bitrate(self) -> float:
        return self.ladder_mbps[self._rung]

    def step(self, measured_bandwidth_mbps: float) -> float:
        """Consume one bandwidth sample; return the selected bitrate."""
        if measured_bandwidth_mbps < 0:
            raise ConfigError("bandwidth must be >= 0")
        if not self._started:
            self._estimate = measured_bandwidth_mbps
            self._started = True
            # Start conservatively: highest rung safely under the estimate.
            self._rung = 0
            for i, rung in enumerate(self.ladder_mbps):
                if rung <= self._estimate:
                    self._rung = i
        else:
            self._estimate = (
                (1 - self.estimate_gain) * self._estimate
                + self.estimate_gain * measured_bandwidth_mbps
            )
        # Down-switch as far as needed.
        while (
            self._rung > 0
            and self._estimate < self.ladder_mbps[self._rung] * self.down_trigger
        ):
            self._rung -= 1
        # Up-switch one rung at a time, with headroom.
        if (
            self._rung + 1 < len(self.ladder_mbps)
            and self._estimate
            >= self.ladder_mbps[self._rung + 1] * self.up_headroom
        ):
            self._rung += 1
        return self.current_bitrate

    def reset(self) -> None:
        self._started = False
        self._estimate = 0.0
        self._rung = 0


@dataclass(frozen=True)
class AbrResult:
    """Outcome of running ABR over a bandwidth trace.

    Attributes:
        bitrates: selected bitrate per interval.
        n_switches: rung changes over the trace.
        starvation_fraction: intervals where even the lowest rung
            exceeded the measured bandwidth (video would stall).
        mean_utility: average perceptual rung utility in [0, 1].
    """

    bitrates: np.ndarray
    n_switches: int
    starvation_fraction: float
    mean_utility: float


def simulate_abr(
    bandwidth_trace_mbps: Sequence[float],
    controller: AbrController = None,
) -> AbrResult:
    """Run the controller over a per-interval bandwidth trace."""
    trace = np.asarray(bandwidth_trace_mbps, dtype=float)
    if len(trace) == 0:
        raise SimulationError("empty bandwidth trace")
    controller = controller or AbrController()
    controller.reset()
    ladder_top = controller.ladder_mbps[-1]
    lowest = controller.ladder_mbps[0]

    bitrates = np.empty(len(trace))
    switches = 0
    starved = 0
    previous = None
    for i, bandwidth in enumerate(trace):
        selected = controller.step(float(bandwidth))
        bitrates[i] = selected
        if previous is not None and selected != previous:
            switches += 1
        previous = selected
        if bandwidth < lowest:
            starved += 1
    utilities = [rung_utility(b, ladder_top) for b in bitrates]
    return AbrResult(
        bitrates=bitrates,
        n_switches=switches,
        starvation_fraction=starved / len(trace),
        mean_utility=float(np.mean(utilities)),
    )


def graceful_degradation_curve(
    mean_bandwidths_mbps: Sequence[float],
    controller: AbrController = None,
    n_intervals: int = 240,
    seed: int = 0,
) -> List[Tuple[float, float]]:
    """Mean delivered utility vs mean available bandwidth.

    The Fig. 1 (right) mechanism in one curve: utility is log-saturating,
    so halving bandwidth from 4 to 2 Mbps barely moves it, while dropping
    under the lowest rung finally hurts.
    """
    from repro.rng import derive

    out: List[Tuple[float, float]] = []
    for mean_bw in mean_bandwidths_mbps:
        if mean_bw <= 0:
            raise ConfigError("bandwidths must be positive")
        rng = derive(seed, "abr", str(mean_bw))
        trace = mean_bw * np.exp(rng.normal(0, 0.25, size=n_intervals))
        result = simulate_abr(trace, controller)
        out.append((float(mean_bw), result.mean_utility))
    return out

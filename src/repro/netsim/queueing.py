"""Bottleneck queueing: where latency, jitter and loss actually come from.

The link profiles in :mod:`repro.netsim.link` anchor each path's typical
conditions; this module grounds those anchors in first principles.  A
congested access link is a finite-buffer FIFO queue in front of a
fixed-rate bottleneck, and its delay/jitter/loss all follow from the
offered load:

* :class:`BottleneckQueue` gives the closed-form M/M/1/K quantities
  (mean wait, delay variation, blocking probability);
* :func:`simulate_queue` is a small discrete-event simulation of the same
  queue, used by the tests to validate the formulas and available for
  workloads that are not Poisson;
* :func:`profile_for_load` converts (propagation delay, offered load)
  into a :class:`~repro.netsim.link.LinkProfile`, so a whole family of
  tier anchors can be derived from one physical story.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.netsim.link import LinkProfile


@dataclass(frozen=True)
class BottleneckQueue:
    """A finite-buffer FIFO in front of a fixed-rate bottleneck (M/M/1/K).

    Attributes:
        capacity_mbps: bottleneck service rate.
        buffer_packets: queue capacity K (including the one in service).
        packet_bytes: mean packet size.
    """

    capacity_mbps: float = 10.0
    buffer_packets: int = 50
    packet_bytes: int = 1200

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise ConfigError("capacity_mbps must be positive")
        if self.buffer_packets < 1:
            raise ConfigError("buffer_packets must be >= 1")
        if self.packet_bytes <= 0:
            raise ConfigError("packet_bytes must be positive")

    @property
    def service_time_ms(self) -> float:
        """Mean transmission time of one packet."""
        return self.packet_bytes * 8 / (self.capacity_mbps * 1e6) * 1e3

    def utilisation(self, offered_mbps: float) -> float:
        if offered_mbps < 0:
            raise ConfigError("offered load must be >= 0")
        return offered_mbps / self.capacity_mbps

    def _state_probabilities(self, rho: float) -> np.ndarray:
        k = self.buffer_packets
        if abs(rho - 1.0) < 1e-12:
            return np.full(k + 1, 1.0 / (k + 1))
        powers = rho ** np.arange(k + 1)
        return powers * (1 - rho) / (1 - rho ** (k + 1))

    def blocking_probability(self, offered_mbps: float) -> float:
        """Probability an arriving packet finds the buffer full (= loss)."""
        rho = self.utilisation(offered_mbps)
        if rho == 0:
            return 0.0
        return float(self._state_probabilities(rho)[-1])

    def mean_wait_ms(self, offered_mbps: float) -> float:
        """Mean queueing + service delay of *accepted* packets."""
        rho = self.utilisation(offered_mbps)
        probs = self._state_probabilities(rho)
        mean_queue = float(np.arange(len(probs)) @ probs)
        accepted_rate = rho * (1 - probs[-1])  # in service-time units
        if accepted_rate <= 0:
            return self.service_time_ms
        # Little's law: L = lambda_eff * W.
        return mean_queue / accepted_rate * self.service_time_ms

    def delay_std_ms(self, offered_mbps: float) -> float:
        """Standard deviation of the sojourn time (jitter proxy).

        Computed from the queue-length distribution seen by accepted
        arrivals (PASTA, renormalised over non-full states): a packet
        arriving at queue length n waits n+1 service times, each Exp(mu).
        """
        rho = self.utilisation(offered_mbps)
        probs = self._state_probabilities(rho)
        accept = probs[:-1]
        total = accept.sum()
        if total <= 0:
            return 0.0
        accept = accept / total
        n = np.arange(len(accept))
        stages = n + 1  # Erlang(n+1) sojourn
        mean = float(stages @ accept)
        # Var = E[Var|n] + Var(E|n) with Erlang stages of unit-mean phases.
        var = float(stages @ accept) + float((stages**2) @ accept) - mean**2
        return math.sqrt(max(var, 0.0)) * self.service_time_ms


def simulate_queue(
    rng: np.random.Generator,
    queue: BottleneckQueue,
    offered_mbps: float,
    n_packets: int = 20000,
) -> Tuple[np.ndarray, float]:
    """Discrete-event simulation of the M/M/1/K queue.

    Returns (sojourn times in ms of accepted packets, loss fraction).
    """
    if n_packets < 1:
        raise SimulationError("n_packets must be >= 1")
    rho = queue.utilisation(offered_mbps)
    if rho <= 0:
        raise SimulationError("offered load must be positive to simulate")
    service_ms = queue.service_time_ms
    interarrival_ms = service_ms / rho

    arrivals = np.cumsum(rng.exponential(interarrival_ms, size=n_packets))
    services = rng.exponential(service_ms, size=n_packets)

    # Track departure times of packets currently in the system.
    in_system: List[float] = []
    sojourns: List[float] = []
    dropped = 0
    free_at = 0.0  # when the server becomes free
    for arrival, service in zip(arrivals, services):
        in_system = [d for d in in_system if d > arrival]
        if len(in_system) >= queue.buffer_packets:
            dropped += 1
            continue
        # FIFO: service starts when the previous departure completes
        # (free_at <= arrival whenever the system is empty, because the
        # last departure was already filtered out above).
        start = max(arrival, in_system[-1] if in_system else free_at)
        departure = start + service
        in_system.append(departure)
        free_at = departure
        sojourns.append(departure - arrival)
    return np.asarray(sojourns), dropped / n_packets


@dataclass(frozen=True)
class PriorityBottleneck:
    """Two-class non-preemptive priority at the same bottleneck.

    Conferencing traffic is commonly DSCP-marked so audio (class 1)
    queues ahead of video/bulk (class 2).  The classic M/M/1
    non-preemptive priority results give per-class mean waits:

        W_q1 = R / (1 - rho1)
        W_q2 = R / ((1 - rho1)(1 - rho1 - rho2))

    with R the mean residual service time of the job in service.  This is
    why audio stays interactive on a loaded link long after video has
    gone to mush — the physical complement of the FEC/concealment story.
    """

    queue: BottleneckQueue = BottleneckQueue()

    def _rhos(self, audio_mbps: float, video_mbps: float) -> Tuple[float, float]:
        if audio_mbps < 0 or video_mbps < 0:
            raise ConfigError("offered loads must be >= 0")
        rho1 = audio_mbps / self.queue.capacity_mbps
        rho2 = video_mbps / self.queue.capacity_mbps
        if rho1 + rho2 >= 1:
            raise ConfigError(
                f"total load {rho1 + rho2:.2f} >= 1 has no steady state"
            )
        return rho1, rho2

    def mean_waits_ms(self, audio_mbps: float,
                      video_mbps: float) -> Tuple[float, float]:
        """(audio, video) mean *queueing* waits, excluding service."""
        rho1, rho2 = self._rhos(audio_mbps, video_mbps)
        service = self.queue.service_time_ms
        # Exponential service: mean residual = rho_total * service.
        residual = (rho1 + rho2) * service
        wait_audio = residual / (1 - rho1)
        wait_video = residual / ((1 - rho1) * (1 - rho1 - rho2))
        return wait_audio, wait_video

    def protection_factor(self, audio_mbps: float,
                          video_mbps: float) -> float:
        """How many times shorter the audio wait is than the video wait."""
        wait_audio, wait_video = self.mean_waits_ms(audio_mbps, video_mbps)
        if wait_audio <= 0:
            return float("inf")
        return wait_video / wait_audio


def simulate_priority_queue(
    rng: np.random.Generator,
    bottleneck: PriorityBottleneck,
    audio_mbps: float,
    video_mbps: float,
    n_packets: int = 30000,
) -> Tuple[float, float]:
    """Event simulation of the two-class queue; returns mean waits (ms).

    Non-preemptive: the packet in service finishes; among waiting
    packets, audio always goes first (FIFO within class).
    """
    rho1, rho2 = bottleneck._rhos(audio_mbps, video_mbps)
    service_ms = bottleneck.queue.service_time_ms
    total_rate = (rho1 + rho2) / service_ms  # packets per ms
    if total_rate <= 0:
        raise SimulationError("need positive offered load")
    p_audio = rho1 / (rho1 + rho2)

    arrivals = np.cumsum(rng.exponential(1 / total_rate, size=n_packets))
    classes = rng.random(n_packets) < p_audio
    services = rng.exponential(service_ms, size=n_packets)

    waits = {True: [], False: []}
    queue_audio: List[int] = []
    queue_video: List[int] = []
    clock = 0.0
    next_arrival = 0
    while next_arrival < n_packets or queue_audio or queue_video:
        # Admit everything that has arrived by the current clock.
        while next_arrival < n_packets and arrivals[next_arrival] <= clock:
            (queue_audio if classes[next_arrival] else queue_video).append(
                next_arrival
            )
            next_arrival += 1
        if not queue_audio and not queue_video:
            if next_arrival >= n_packets:
                break
            clock = arrivals[next_arrival]
            continue
        index = queue_audio.pop(0) if queue_audio else queue_video.pop(0)
        start = max(clock, arrivals[index])
        waits[bool(classes[index])].append(start - arrivals[index])
        clock = start + services[index]
    mean_audio = float(np.mean(waits[True])) if waits[True] else 0.0
    mean_video = float(np.mean(waits[False])) if waits[False] else 0.0
    return mean_audio, mean_video


def profile_for_load(
    base_latency_ms: float,
    offered_mbps: float,
    queue: BottleneckQueue = BottleneckQueue(),
    available_headroom_fraction: float = 1.0,
) -> LinkProfile:
    """Derive a LinkProfile from a physical bottleneck story.

    Args:
        base_latency_ms: propagation delay of the path.
        offered_mbps: cross-traffic load on the bottleneck.
        queue: the bottleneck's queue.
        available_headroom_fraction: share of the residual capacity the
            measured flow can actually grab.
    """
    if base_latency_ms < 0:
        raise ConfigError("base_latency_ms must be >= 0")
    if not 0 < available_headroom_fraction <= 1:
        raise ConfigError("available_headroom_fraction must be in (0, 1]")
    rho = queue.utilisation(offered_mbps)
    if rho >= 1.2:
        raise ConfigError("offered load beyond 120% of capacity is not a "
                          "steady state worth profiling")
    residual = max(0.2, (queue.capacity_mbps - offered_mbps)
                   * available_headroom_fraction)
    loss = queue.blocking_probability(offered_mbps)
    return LinkProfile(
        base_latency_ms=base_latency_ms + queue.mean_wait_ms(offered_mbps),
        loss_rate=min(0.2, loss),
        jitter_ms=queue.delay_std_ms(offered_mbps),
        bandwidth_mbps=min(residual, 4.5),
        burstiness=min(1.0, 0.2 + 0.6 * rho),
    )

"""Composition of link segments into an end-to-end path.

A conferencing session traverses several segments (access link, transit,
the provider's edge).  :class:`NetworkPath` composes their profiles with
the standard serial-path rules:

* latency adds,
* loss combines as ``1 - prod(1 - p_i)``,
* jitter adds in quadrature (independent delay-variation sources),
* bandwidth is the minimum (bottleneck), and
* burstiness is dominated by the burstiest segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigError
from repro.netsim.link import LinkProfile


@dataclass(frozen=True)
class NetworkPath:
    """A serial composition of :class:`LinkProfile` segments."""

    segments: tuple

    def __post_init__(self) -> None:
        if not self.segments:
            raise ConfigError("a path needs at least one segment")
        for seg in self.segments:
            if not isinstance(seg, LinkProfile):
                raise ConfigError(
                    f"path segments must be LinkProfile, got {type(seg).__name__}"
                )

    @classmethod
    def of(cls, *segments: LinkProfile) -> "NetworkPath":
        return cls(segments=tuple(segments))

    def end_to_end(self) -> LinkProfile:
        """Collapse the path into a single equivalent profile."""
        latency = sum(s.base_latency_ms for s in self.segments)
        survive = 1.0
        for s in self.segments:
            survive *= 1 - s.loss_rate
        jitter = float(np.sqrt(sum(s.jitter_ms**2 for s in self.segments)))
        bandwidth = min(s.bandwidth_mbps for s in self.segments)
        burstiness = max(s.burstiness for s in self.segments)
        return LinkProfile(
            base_latency_ms=latency,
            loss_rate=1 - survive,
            jitter_ms=jitter,
            bandwidth_mbps=bandwidth,
            burstiness=burstiness,
        )

    def __len__(self) -> int:
        return len(self.segments)


def access_plus_backbone(access: LinkProfile,
                         backbone_latency_ms: float = 8.0) -> NetworkPath:
    """The common case: a user access link plus a clean provider backbone.

    The backbone is modelled as near-lossless and high-bandwidth; in
    practice (and in the paper's data) the access link dominates every
    metric except baseline latency.
    """
    backbone = LinkProfile(
        base_latency_ms=backbone_latency_ms,
        loss_rate=0.00005,
        jitter_ms=0.3,
        bandwidth_mbps=1000.0,
        burstiness=0.05,
    )
    return NetworkPath.of(access, backbone)

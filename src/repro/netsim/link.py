"""Access-link profiles: the static part of a user's network conditions.

A :class:`LinkProfile` captures the *typical* conditions of one user's
path for one call — base propagation latency, mean loss rate, jitter
scale and available bandwidth.  The dynamic processes in
:mod:`repro.netsim.loss` / :mod:`repro.netsim.jitter` add within-session
variation around these anchors.

``NETWORK_TIERS`` spans the condition space of Fig. 1: the paper's call
population mixes everything from pristine enterprise fibre to congested
mobile and satellite links, which is exactly what lets it bin sessions
along each metric axis.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class LinkProfile:
    """Per-session anchor conditions for one participant's access path.

    Attributes:
        base_latency_ms: one-way propagation + queueing baseline.
        loss_rate: mean fraction of packets lost before mitigation, [0, 1].
        jitter_ms: typical delay variation scale.
        bandwidth_mbps: available downlink/uplink bottleneck bandwidth.
        burstiness: 0 → independent losses, 1 → highly bursty losses.
    """

    base_latency_ms: float
    loss_rate: float
    jitter_ms: float
    bandwidth_mbps: float
    burstiness: float = 0.3

    def __post_init__(self) -> None:
        if self.base_latency_ms < 0:
            raise ConfigError(f"latency must be >= 0, got {self.base_latency_ms}")
        if not 0 <= self.loss_rate <= 1:
            raise ConfigError(f"loss_rate must be in [0, 1], got {self.loss_rate}")
        if self.jitter_ms < 0:
            raise ConfigError(f"jitter must be >= 0, got {self.jitter_ms}")
        if self.bandwidth_mbps <= 0:
            raise ConfigError(f"bandwidth must be > 0, got {self.bandwidth_mbps}")
        if not 0 <= self.burstiness <= 1:
            raise ConfigError(f"burstiness must be in [0, 1], got {self.burstiness}")

    def scaled(self, latency: float = 1.0, loss: float = 1.0,
               jitter: float = 1.0, bandwidth: float = 1.0) -> "LinkProfile":
        """A copy with metrics multiplied by the given factors."""
        return replace(
            self,
            base_latency_ms=self.base_latency_ms * latency,
            loss_rate=min(1.0, self.loss_rate * loss),
            jitter_ms=self.jitter_ms * jitter,
            bandwidth_mbps=self.bandwidth_mbps * bandwidth,
        )


# Condition tiers spanning the axes of Fig. 1.  Weights approximate a
# realistic enterprise call population: mostly good paths with a long tail
# of degraded ones.  Each tier gives (profile, weight).
NETWORK_TIERS: Dict[str, tuple] = {
    "enterprise_fiber": (
        LinkProfile(base_latency_ms=12, loss_rate=0.0004, jitter_ms=1.0,
                    bandwidth_mbps=4.0, burstiness=0.1),
        0.30,
    ),
    "good_broadband": (
        LinkProfile(base_latency_ms=30, loss_rate=0.001, jitter_ms=2.0,
                    bandwidth_mbps=3.5, burstiness=0.2),
        0.25,
    ),
    "average_broadband": (
        LinkProfile(base_latency_ms=60, loss_rate=0.003, jitter_ms=4.0,
                    bandwidth_mbps=2.5, burstiness=0.3),
        0.18,
    ),
    "congested_broadband": (
        LinkProfile(base_latency_ms=120, loss_rate=0.008, jitter_ms=8.0,
                    bandwidth_mbps=1.5, burstiness=0.5),
        0.10,
    ),
    "mobile_lte": (
        LinkProfile(base_latency_ms=80, loss_rate=0.006, jitter_ms=9.0,
                    bandwidth_mbps=2.0, burstiness=0.5),
        0.08,
    ),
    "weak_mobile": (
        LinkProfile(base_latency_ms=180, loss_rate=0.018, jitter_ms=14.0,
                    bandwidth_mbps=0.9, burstiness=0.7),
        0.05,
    ),
    "satellite_leo": (
        LinkProfile(base_latency_ms=45, loss_rate=0.010, jitter_ms=10.0,
                    bandwidth_mbps=2.8, burstiness=0.6),
        0.02,
    ),
    "terrible": (
        LinkProfile(base_latency_ms=260, loss_rate=0.035, jitter_ms=18.0,
                    bandwidth_mbps=0.6, burstiness=0.8),
        0.02,
    ),
}


def sample_link_profile(
    rng: np.random.Generator,
    tier: Optional[str] = None,
) -> LinkProfile:
    """Draw a per-session link profile.

    Without ``tier``, a tier is drawn by population weight; the anchor
    values are then perturbed log-normally so that session conditions form
    a continuum along each axis rather than eight discrete clusters.
    """
    if tier is None:
        names = list(NETWORK_TIERS)
        weights = np.array([NETWORK_TIERS[n][1] for n in names])
        tier = str(rng.choice(names, p=weights / weights.sum()))
    if tier not in NETWORK_TIERS:
        raise ConfigError(f"unknown network tier {tier!r}")
    anchor: LinkProfile = NETWORK_TIERS[tier][0]

    def jig(scale: float = 0.35) -> float:
        return float(np.exp(rng.normal(0.0, scale)))

    return LinkProfile(
        base_latency_ms=anchor.base_latency_ms * jig(),
        loss_rate=min(0.20, anchor.loss_rate * jig(0.6)),
        jitter_ms=anchor.jitter_ms * jig(),
        bandwidth_mbps=max(0.2, anchor.bandwidth_mbps * jig(0.25)),
        burstiness=float(np.clip(anchor.burstiness + rng.normal(0, 0.1), 0, 1)),
    )

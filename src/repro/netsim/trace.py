"""Five-second condition sampling — the telemetry the Teams client reports.

The paper (§3.1): *"The client running on the user-end of MS Teams gathers
network latency, packet loss percent, jitter, and available bandwidth
information every 5 seconds.  When the user session ends, each client
computes the mean, median, and 95th percentile (P95) value for each of
these metrics per session."*

:class:`TraceGenerator` produces exactly that stream for a given path, and
:class:`ConditionTrace` performs the end-of-session aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.netsim.jitter import JitterProcess
from repro.netsim.link import LinkProfile
from repro.netsim.loss import GilbertElliottLoss

SAMPLE_INTERVAL_S = 5.0


@dataclass(frozen=True)
class ConditionSample:
    """One five-second telemetry sample."""

    t_s: float
    latency_ms: float
    loss_pct: float  # percentage, 0-100, matching the client's report
    jitter_ms: float
    bandwidth_mbps: float

    def __post_init__(self) -> None:
        if self.latency_ms < 0 or self.jitter_ms < 0:
            raise ConfigError("latency and jitter must be non-negative")
        if not 0 <= self.loss_pct <= 100:
            raise ConfigError(f"loss_pct must be in [0, 100], got {self.loss_pct}")
        if self.bandwidth_mbps < 0:
            raise ConfigError("bandwidth must be non-negative")


class ConditionTrace:
    """An ordered list of samples with per-session aggregation."""

    METRICS = ("latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps")

    def __init__(self, samples: Sequence[ConditionSample]) -> None:
        if not samples:
            raise SimulationError("a trace needs at least one sample")
        self._samples: List[ConditionSample] = list(samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[ConditionSample]:
        return iter(self._samples)

    def __getitem__(self, i: int) -> ConditionSample:
        return self._samples[i]

    @property
    def duration_s(self) -> float:
        return len(self._samples) * SAMPLE_INTERVAL_S

    def metric(self, name: str) -> np.ndarray:
        if name not in self.METRICS:
            raise SimulationError(f"unknown trace metric {name!r}")
        return np.array([getattr(s, name) for s in self._samples])

    def aggregate(self) -> Dict[str, Dict[str, float]]:
        """Per-metric mean / median / P95, as computed at session end."""
        summary: Dict[str, Dict[str, float]] = {}
        for name in self.METRICS:
            values = self.metric(name)
            summary[name] = {
                "mean": float(values.mean()),
                "median": float(np.median(values)),
                "p95": float(np.percentile(values, 95)),
            }
        return summary

    def truncated(self, duration_s: float) -> "ConditionTrace":
        """The prefix of the trace a user who left early actually saw."""
        n = max(1, int(round(duration_s / SAMPLE_INTERVAL_S)))
        return ConditionTrace(self._samples[:n])


def generate_condition_arrays(
    profile: LinkProfile,
    rng: np.random.Generator,
    n_intervals: int,
) -> Dict[str, np.ndarray]:
    """Vectorised session trace: one array per metric, length ``n_intervals``.

    This is the fast path used by the telemetry generator.  It mirrors
    :meth:`TraceGenerator.generate`: AR(1) jitter with spikes, queueing
    delay co-moving with jitter, run-length Gilbert–Elliott loss and a
    clipped multiplicative bandwidth walk.
    """
    if n_intervals < 1:
        raise SimulationError(f"n_intervals must be >= 1, got {n_intervals}")

    # Jitter: AR(1) around the anchor scale, plus multiplicative spikes.
    persistence, spike_prob, spike_factor = 0.7, 0.05, 3.0
    scale = profile.jitter_ms
    if scale == 0:
        jitter = np.zeros(n_intervals)
    else:
        from scipy.signal import lfilter

        innovation_sd = scale * np.sqrt(1 - persistence**2) * 0.4
        eps = rng.normal(0.0, innovation_sd, size=n_intervals)
        drive = (1 - persistence) * scale
        # AR(1): level_i = persistence * level_{i-1} + drive + eps_i, with
        # level_0 seeded at the anchor scale via the filter's initial state.
        jitter, _ = lfilter(
            [1.0], [1.0, -persistence], drive + eps, zi=[persistence * scale]
        )
        jitter = np.maximum(0.05, jitter)
        spikes = rng.random(n_intervals) < spike_prob
        jitter = np.where(
            spikes, jitter * (1 + (spike_factor - 1) * rng.random(n_intervals)), jitter
        )

    # Latency: baseline + queueing co-moving with jitter + measurement noise.
    queueing = 1.5 * jitter * rng.random(n_intervals)
    noise = np.abs(rng.normal(0, 0.03 * profile.base_latency_ms + 0.5, size=n_intervals))
    latency = profile.base_latency_ms + queueing + noise

    # Loss: run-length Gilbert–Elliott across the whole session.
    # LinkProfile allows burstiness up to 1.0; the GE chain needs < 1.
    chain = GilbertElliottLoss(
        rate=profile.loss_rate, burstiness=min(profile.burstiness, 0.95)
    )
    loss_pct = np.minimum(
        100.0, chain.interval_loss_rates(rng, n_intervals, SAMPLE_INTERVAL_S) * 100
    )

    # Bandwidth: clipped multiplicative random walk around the bottleneck.
    steps = rng.normal(0, 0.05, size=n_intervals)
    walk = profile.bandwidth_mbps * np.exp(np.cumsum(steps))
    bandwidth = np.clip(
        walk, 0.3 * profile.bandwidth_mbps, 1.5 * profile.bandwidth_mbps
    )

    return {
        "latency_ms": latency,
        "loss_pct": loss_pct,
        "jitter_ms": jitter,
        "bandwidth_mbps": bandwidth,
    }


class TraceGenerator:
    """Generate a session-long condition trace for one participant's path.

    Latency varies around the path baseline with load-dependent inflation
    (standing queues correlate with jitter), loss follows a Gilbert–Elliott
    chain whose burstiness comes from the profile, and bandwidth wanders
    slowly around the bottleneck value.
    """

    def __init__(self, profile: LinkProfile) -> None:
        self._profile = profile
        self._loss = GilbertElliottLoss(
            rate=profile.loss_rate, burstiness=min(profile.burstiness, 0.95)
        )
        self._jitter = JitterProcess(scale_ms=profile.jitter_ms)

    def generate(self, rng: np.random.Generator, duration_s: float) -> ConditionTrace:
        if duration_s <= 0:
            raise SimulationError(f"duration must be positive, got {duration_s}")
        n_samples = max(1, int(round(duration_s / SAMPLE_INTERVAL_S)))
        self._jitter.reset()
        samples: List[ConditionSample] = []
        bandwidth_level = self._profile.bandwidth_mbps
        for i in range(n_samples):
            jitter_ms = self._jitter.sample_interval(rng)
            # Queueing delay co-moves with jitter: both come from queues.
            queueing_ms = 1.5 * jitter_ms * rng.random()
            latency_ms = self._profile.base_latency_ms + queueing_ms + abs(
                rng.normal(0, 0.03 * self._profile.base_latency_ms + 0.5)
            )
            loss_frac = self._loss.interval_loss_rate(rng, SAMPLE_INTERVAL_S)
            # Slow multiplicative random walk for available bandwidth.
            bandwidth_level *= float(np.exp(rng.normal(0, 0.05)))
            bandwidth_level = float(
                np.clip(bandwidth_level,
                        0.3 * self._profile.bandwidth_mbps,
                        1.5 * self._profile.bandwidth_mbps)
            )
            samples.append(
                ConditionSample(
                    t_s=i * SAMPLE_INTERVAL_S,
                    latency_ms=float(latency_ms),
                    loss_pct=float(min(100.0, loss_frac * 100)),
                    jitter_ms=float(jitter_ms),
                    bandwidth_mbps=bandwidth_level,
                )
            )
        return ConditionTrace(samples)

"""Array-based fast paths mirroring the scalar mitigation/QoE models.

The telemetry generator simulates hundreds of thousands of participant
sessions, each with hundreds of five-second intervals.  Calling the
scalar :meth:`MitigationStack.apply` / :meth:`QoeModel.score` per interval
would dominate the runtime, so this module re-expresses the same formulas
over numpy arrays.  ``tests/netsim/test_vectorized.py`` pins the two
implementations together element-by-element — if the scalar model changes,
that test fails until this file is updated to match.

Two layers live here:

* the **per-session** array path (:func:`mitigate_arrays` /
  :func:`qoe_arrays`), shape-agnostic elementwise formulas shared by the
  record generator (1-D per session) and the block engine (2-D);
* the **block** condition layer (:class:`LinkProfileArrays`,
  :func:`condition_blocks`, :func:`loss_pct_block`) that simulates whole
  *batches* of sessions as ``(n_sessions, n_intervals)`` arrays — the
  tentpole of the vectorized generation engine.  Block loss uses a
  compound-Poisson approximation of the Gilbert–Elliott chain whose
  stationary mean is exact (see :func:`loss_pct_block`); equivalence to
  the scalar processes is pinned statistically by
  ``tests/netsim/test_vectorized_blocks.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.errors import SimulationError
from repro.netsim.loss import PACKETS_PER_SECOND
from repro.netsim.mitigation import MitigationStack
from repro.netsim.qoe import QoeModel


@dataclass(frozen=True)
class EffectiveArrays:
    """Vector analogue of :class:`repro.netsim.mitigation.EffectiveConditions`."""

    delay_ms: np.ndarray
    residual_audio_loss_pct: np.ndarray
    residual_video_loss_pct: np.ndarray
    video_bitrate_share: np.ndarray
    audio_bitrate_share: np.ndarray


@dataclass(frozen=True)
class QualityArrays:
    """Vector analogue of :class:`repro.netsim.qoe.QualityScores`."""

    audio_mos: np.ndarray
    video_mos: np.ndarray
    interactivity: np.ndarray
    overall_mos: np.ndarray


def mitigate_arrays(
    stack: MitigationStack,
    latency_ms: np.ndarray,
    loss_pct: np.ndarray,
    jitter_ms: np.ndarray,
    bandwidth_mbps: np.ndarray,
    burstiness: float,
) -> EffectiveArrays:
    """Vectorised :meth:`MitigationStack.apply` over per-interval arrays."""
    effective_efficiency = stack.fec_efficiency * (1 - stack.burst_penalty * burstiness)
    in_budget = np.minimum(loss_pct, stack.fec_budget_pct)
    over_budget = np.maximum(0.0, loss_pct - stack.fec_budget_pct)
    after_fec = in_budget * (1 - effective_efficiency) + over_budget

    excess_jitter = np.maximum(0.0, jitter_ms - stack.jitter_buffer_ms)
    late_audio_pct = np.minimum(20.0, 0.15 * excess_jitter)
    late_video_pct = np.minimum(40.0, 1.5 * excess_jitter)

    residual_audio = (after_fec + late_audio_pct) * (1 - stack.audio_concealment)
    residual_video = (after_fec + late_video_pct) * (1 - stack.video_concealment)

    video_share = np.minimum(1.0, bandwidth_mbps / stack.video_target_mbps)
    audio_share = np.minimum(1.0, bandwidth_mbps / stack.audio_target_mbps)

    delay = latency_ms + stack.jitter_buffer_ms + np.minimum(
        jitter_ms, stack.jitter_buffer_ms
    )
    return EffectiveArrays(
        delay_ms=delay,
        residual_audio_loss_pct=np.minimum(100.0, residual_audio),
        residual_video_loss_pct=np.minimum(100.0, residual_video),
        video_bitrate_share=video_share,
        audio_bitrate_share=audio_share,
    )


def _r_to_mos_arrays(r: np.ndarray) -> np.ndarray:
    r_clipped = np.clip(r, 0.0, 100.0)
    mos = 1 + 0.035 * r_clipped + 7e-6 * r_clipped * (r_clipped - 60) * (100 - r_clipped)
    mos = np.where(r <= 0, 1.0, mos)
    mos = np.where(r >= 100, 4.5, mos)
    return mos


def qoe_arrays(model: QoeModel, eff: EffectiveArrays) -> QualityArrays:
    """Vectorised :meth:`QoeModel.score` over mitigated condition arrays."""
    # --- audio R-factor ---
    delay = eff.delay_ms
    id_term = 0.024 * delay + np.where(
        delay > model.delay_knee_ms, 0.11 * (delay - model.delay_knee_ms), 0.0
    )
    loss_frac = eff.residual_audio_loss_pct / 100.0
    ie_term = model.loss_impairment_scale * np.log(1 + 15 * loss_frac)
    starvation = 40.0 * (1 - eff.audio_bitrate_share)
    r = model.r_baseline - id_term - ie_term - starvation
    audio = np.clip(_r_to_mos_arrays(r), 1.0, 5.0)

    # --- video ---
    artefact_frac = eff.residual_video_loss_pct / 100.0
    artefact_quality = np.exp(-7.0 * artefact_frac)
    share = np.maximum(1e-3, eff.video_bitrate_share)
    bitrate_quality = np.minimum(1.0, 0.88 + 0.12 * np.log10(1 + 9 * share))
    video = np.clip(1 + 4 * artefact_quality * bitrate_quality, 1.0, 5.0)

    # --- interactivity & overall ---
    interactivity = np.exp(-np.log(2) * delay / model.interactivity_halflife_ms)
    overall = np.clip(
        0.55 * audio + 0.25 * video + 0.20 * (1 + 4 * interactivity), 1.0, 5.0
    )
    return QualityArrays(
        audio_mos=audio,
        video_mos=video,
        interactivity=interactivity,
        overall_mos=overall,
    )


# -- block simulation: many sessions at once -------------------------------


@dataclass(frozen=True)
class LinkProfileArrays:
    """Struct-of-arrays analogue of :class:`~repro.netsim.link.LinkProfile`.

    One row per session; every field is a float64 array of the same
    length.  This is what the block engine carries instead of a list of
    profile objects.
    """

    base_latency_ms: np.ndarray
    loss_rate: np.ndarray
    jitter_ms: np.ndarray
    bandwidth_mbps: np.ndarray
    burstiness: np.ndarray

    def __len__(self) -> int:
        return len(self.base_latency_ms)


@dataclass(frozen=True)
class MitigationParamArrays:
    """Per-row mitigation parameters, duck-typed as a ``MitigationStack``.

    :func:`mitigate_arrays` only reads attributes and combines them
    elementwise, so handing it ``(n_sessions, 1)``-shaped parameter
    columns broadcasts the per-platform safeguard stacks across a whole
    block in one call.
    """

    fec_budget_pct: np.ndarray
    fec_efficiency: np.ndarray
    burst_penalty: np.ndarray
    jitter_buffer_ms: np.ndarray
    audio_concealment: np.ndarray
    video_concealment: np.ndarray
    video_target_mbps: np.ndarray
    audio_target_mbps: np.ndarray

    @classmethod
    def from_stacks(cls, stacks: Sequence[MitigationStack]) -> "MitigationParamArrays":
        """Column-stack per-row stacks into broadcastable parameters."""

        def column(name: str) -> np.ndarray:
            return np.array(
                [getattr(s, name) for s in stacks], dtype=float
            )[:, None]

        return cls(
            fec_budget_pct=column("fec_budget_pct"),
            fec_efficiency=column("fec_efficiency"),
            burst_penalty=column("burst_penalty"),
            jitter_buffer_ms=column("jitter_buffer_ms"),
            audio_concealment=column("audio_concealment"),
            video_concealment=column("video_concealment"),
            video_target_mbps=column("video_target_mbps"),
            audio_target_mbps=column("audio_target_mbps"),
        )


#: Per-packet loss probability in the Gilbert–Elliott bad state (matches
#: :class:`~repro.netsim.loss.GilbertElliottLoss`'s default).
_BAD_LOSS = 0.5


def loss_pct_block(
    rng: np.random.Generator,
    loss_rate: np.ndarray,
    burstiness: np.ndarray,
    n_intervals: int,
    duration_s: float = 5.0,
) -> np.ndarray:
    """Batched Gilbert–Elliott interval loss over ``(rows, n_intervals)``.

    The scalar chain alternates geometric good/bad sojourns packet by
    packet.  The block form replaces the renewal process with a compound
    Poisson of bad runs per interval: with ``M`` packets per interval,
    bad→good probability ``p_bg`` and stationary bad occupancy
    ``pi_bad = rate / bad_loss``, the number of bad runs touching an
    interval is ``Poisson(M * p_bg * pi_bad)``, each run's length is
    geometric with mean ``1/p_bg``, and losses thin the bad packets by
    ``bad_loss``.  The stationary mean is exact —
    ``E[loss] = M * pi_bad * bad_loss = M * rate`` — while run
    straddling across interval boundaries (the source of the scalar
    chain's small cross-interval correlation) is dropped; the
    equivalence tests pin means and marginal dispersion, not the
    autocovariance.

    Everything is sampled from bulk uniform/normal draws — numpy's
    per-element ``poisson``/``negative_binomial``/``binomial`` paths
    with array parameters cost 30–70x more per variate and would
    dominate the whole block engine.  Three draws, in order:

    1. ``rng.random((rows, n_intervals))`` — run counts by exact
       Poisson inverse CDF (the per-row CDF table is closed-form);
    2. ``rng.random(total_runs)`` — run lengths by exact geometric
       inverse CDF (``1 + floor(log(u) / log(1 - p_bg))``); the draw
       *count* depends on step 1, which is fine: each caller owns a
       per-unit substream, so consumption is deterministic per unit;
    3. ``rng.standard_normal((rows, n_intervals))`` — the
       ``Binomial(bad, 0.5)`` thinning by rounded normal approximation,
       clipped to ``[0, bad]`` (exact mean; the approximation error is
       far below the run-length variance).
    """
    if n_intervals < 1:
        raise SimulationError(f"n_intervals must be >= 1, got {n_intervals}")
    packets = max(1, int(duration_s * PACKETS_PER_SECOND))
    p_bg = _loss_p_bg(burstiness)
    n_runs = _loss_run_counts(rng, loss_rate, p_bg, packets, n_intervals)
    u_geom = rng.random(int(n_runs.sum()))
    thin_z = rng.standard_normal(n_runs.shape)
    return _loss_finish(n_runs, u_geom, thin_z, p_bg, packets)


def _loss_p_bg(burstiness: np.ndarray) -> np.ndarray:
    """Bad→good transition probability per row (burstiness capped at
    0.95, matching the scalar chain's constructor)."""
    return (1.0 - np.minimum(burstiness, 0.95)) * 0.5 + 1e-6


def _loss_run_counts(
    rng: np.random.Generator,
    loss_rate: np.ndarray,
    p_bg: np.ndarray,
    packets: int,
    n_intervals: int,
) -> np.ndarray:
    """Step 1: bad-run counts per interval, exact Poisson inverse CDF.

    Consumes exactly one ``rng.random((rows, n_intervals))`` draw.  The
    CDF table is tiny (a few dozen columns), so building it in closed
    form beats numpy's per-element rejection sampler by an order of
    magnitude.
    """
    # Function-level import: scipy costs seconds cold, and this module
    # sits on the `import repro.telemetry` path via behavior.py — keep
    # that light for code that never simulates (first call pays once).
    from scipy.special import gammaln

    rows = len(loss_rate)
    pi_bad = np.minimum(loss_rate / _BAD_LOSS, 1.0)
    lam = packets * p_bg * pi_bad
    shape = (rows, n_intervals)
    u_runs = rng.random(shape)
    lam_max = float(lam.max(initial=0.0))
    k_max = int(np.ceil(lam_max + 12.0 * np.sqrt(lam_max) + 20.0))
    ks = np.arange(k_max + 1)
    log_lam = np.log(np.maximum(lam, 1e-300))
    cdf = np.cumsum(
        np.exp(-lam[:, None] + ks[None, :] * log_lam[:, None]
               - gammaln(ks + 1.0)[None, :]),
        axis=1,
    )
    # One flat searchsorted instead of a per-row loop: shifting row r's
    # CDF (values in [0, 1]) and its uniforms by 2r keeps the whole
    # concatenation strictly increasing, so band-local ranks fall out.
    k_cols = cdf.shape[1]
    offsets = 2.0 * np.arange(rows)[:, None]
    return (
        np.searchsorted(
            (cdf + offsets).ravel(), (u_runs + offsets).ravel(),
            side="right",
        ).reshape(shape)
        - np.arange(rows)[:, None] * k_cols
    )


def _loss_finish(
    n_runs: np.ndarray,
    u_geom: np.ndarray,
    thin_z: np.ndarray,
    p_bg: np.ndarray,
    packets: int,
) -> np.ndarray:
    """Steps 2–3: geometric run lengths and binomial thinning.

    Pure arithmetic on already-drawn randomness, so bucketed callers can
    concatenate many sessions' draws and run this once per bucket.
    """
    shape = n_runs.shape
    # 2. Run lengths: exact geometric (support >= 1, mean 1/p_bg) via
    # log-uniform inversion, summed per interval with a padded cumsum.
    counts = n_runs.ravel()
    ends = counts.cumsum()
    log_keep_run = np.repeat(np.log1p(-p_bg), n_runs.sum(axis=1))
    run_len = 1 + np.floor(
        np.log(np.maximum(u_geom, 1e-300)) / log_keep_run
    )
    sums = np.concatenate([[0.0], run_len.cumsum()])
    bad = np.minimum(
        (sums[ends] - sums[ends - counts]).reshape(shape), packets
    )
    # 3. Thinning: Binomial(bad, 0.5) by rounded normal approximation.
    lost = np.minimum(
        np.maximum(
            np.round(_BAD_LOSS * bad + np.sqrt(bad) * _BAD_LOSS * thin_z),
            0.0,
        ),
        bad,
    )
    return np.minimum(100.0, lost * (100.0 / packets))


def condition_blocks(
    rng: np.random.Generator,
    profiles: LinkProfileArrays,
    n_intervals: int,
) -> Dict[str, np.ndarray]:
    """Block analogue of :func:`~repro.netsim.trace.generate_condition_arrays`.

    Simulates every session row of ``profiles`` for ``n_intervals``
    five-second intervals at once, returning ``(rows, n_intervals)``
    arrays keyed like the per-session path.  The same four processes run
    in batched form: AR(1) jitter with multiplicative spikes (one
    ``lfilter`` along axis 1), queueing latency co-moving with jitter,
    compound-Poisson Gilbert–Elliott loss (:func:`loss_pct_block`) and
    the clipped multiplicative bandwidth walk.

    Draw order on ``rng`` is fixed (jitter innovations, spike gates,
    spike magnitudes, queueing uniforms, latency noise, the three loss
    draws, bandwidth steps), with every shape a function of
    ``(rows, n_intervals)`` alone — so a block's stream consumption
    never depends on the values drawn, which is what keeps shard plans
    byte-identical.
    """
    return condition_blocks_from_draws(
        [condition_draws(rng, profiles, n_intervals)]
    )


@dataclass(frozen=True)
class ConditionDraws:
    """All randomness for one block of sessions, no model arithmetic.

    Splitting draws from arithmetic lets a bucketed caller (the
    vectorized telemetry engine) consume each call's substream
    independently — the determinism contract — while running the
    filters, cumsums and loss assembly once over the whole bucket
    instead of once per call.  ``condition_blocks_from_draws`` on a
    one-element list reproduces :func:`condition_blocks` exactly.
    """

    profiles: LinkProfileArrays
    n_intervals: int
    eps_z: np.ndarray  # AR(1) innovations, standard normal
    spike_gate: np.ndarray
    spike_mag: np.ndarray
    queue_u: np.ndarray
    noise_z: np.ndarray
    n_runs: np.ndarray  # bad-run counts (already inverted from uniforms)
    u_geom: np.ndarray  # run-length uniforms, (total_runs,)
    thin_z: np.ndarray  # thinning normals
    bw_z: np.ndarray  # bandwidth-walk steps

    def __len__(self) -> int:
        return len(self.profiles)


def condition_draws(
    rng: np.random.Generator,
    profiles: LinkProfileArrays,
    n_intervals: int,
    duration_s: float = 5.0,
) -> ConditionDraws:
    """Stage 1 of :func:`condition_blocks`: consume the rng, store draws.

    Draw order matches the module contract (jitter innovations, spike
    gates, spike magnitudes, queueing uniforms, latency noise, the
    three loss draws, bandwidth steps).  Only the loss run-count
    inversion happens here — it determines how many run-length uniforms
    to draw, which is what makes stream consumption deterministic per
    block.
    """
    if n_intervals < 1:
        raise SimulationError(f"n_intervals must be >= 1, got {n_intervals}")
    shape = (len(profiles), n_intervals)
    eps_z = rng.standard_normal(shape)
    spike_gate = rng.random(shape)
    spike_mag = rng.random(shape)
    queue_u = rng.random(shape)
    noise_z = rng.standard_normal(shape)
    packets = max(1, int(duration_s * PACKETS_PER_SECOND))
    p_bg = _loss_p_bg(profiles.burstiness)
    n_runs = _loss_run_counts(
        rng, profiles.loss_rate, p_bg, packets, n_intervals
    )
    u_geom = rng.random(int(n_runs.sum()))
    thin_z = rng.standard_normal(shape)
    bw_z = rng.standard_normal(shape)
    return ConditionDraws(
        profiles=profiles,
        n_intervals=n_intervals,
        eps_z=eps_z,
        spike_gate=spike_gate,
        spike_mag=spike_mag,
        queue_u=queue_u,
        noise_z=noise_z,
        n_runs=n_runs,
        u_geom=u_geom,
        thin_z=thin_z,
        bw_z=bw_z,
    )


def condition_blocks_from_draws(
    draws: Sequence[ConditionDraws],
    duration_s: float = 5.0,
) -> Dict[str, np.ndarray]:
    """Stage 2 of :func:`condition_blocks`: batched arithmetic.

    Concatenates any number of same-width draw blocks (rows stack in
    list order) and evaluates the four condition processes in single
    array passes.  Elementwise and per-row operations are oblivious to
    which block a row came from, so results are byte-identical to
    per-block evaluation.
    """
    from scipy.signal import lfilter  # function-level: see _loss_run_counts

    if not draws:
        raise SimulationError("need at least one draw block")
    widths = {d.n_intervals for d in draws}
    if len(widths) > 1:
        raise SimulationError(
            f"draw blocks must share n_intervals, got {sorted(widths)}"
        )

    def stack(attr: str) -> np.ndarray:
        if len(draws) == 1:
            return getattr(draws[0], attr)
        return np.vstack([getattr(d, attr) for d in draws])

    def col(attr: str) -> np.ndarray:
        if len(draws) == 1:
            return getattr(draws[0].profiles, attr)[:, None]
        return np.concatenate(
            [getattr(d.profiles, attr) for d in draws]
        )[:, None]

    persistence, spike_prob, spike_factor = 0.7, 0.05, 3.0
    scale = col("jitter_ms")

    innovation_sd = scale * np.sqrt(1 - persistence**2) * 0.4
    jitter, _ = lfilter(
        [1.0], [1.0, -persistence],
        (1 - persistence) * scale + stack("eps_z") * innovation_sd,
        axis=1, zi=persistence * scale,
    )
    jitter = np.maximum(0.05, jitter)
    jitter = np.where(
        stack("spike_gate") < spike_prob,
        jitter * (1 + (spike_factor - 1) * stack("spike_mag")), jitter,
    )
    # Zero-jitter anchors produce a flat zero trace on the scalar path.
    jitter = np.where(scale == 0, 0.0, jitter)

    base = col("base_latency_ms")
    latency = (
        base
        + 1.5 * jitter * stack("queue_u")
        + np.abs(stack("noise_z")) * (0.03 * base + 0.5)
    )

    packets = max(1, int(duration_s * PACKETS_PER_SECOND))
    p_bg = _loss_p_bg(col("burstiness")[:, 0])
    loss_pct = _loss_finish(
        stack("n_runs"),
        np.concatenate([d.u_geom for d in draws])
        if len(draws) > 1 else draws[0].u_geom,
        stack("thin_z"),
        p_bg,
        packets,
    )

    bw = col("bandwidth_mbps")
    walk = bw * np.exp(np.cumsum(0.05 * stack("bw_z"), axis=1))
    bandwidth = np.minimum(np.maximum(walk, 0.3 * bw), 1.5 * bw)

    return {
        "latency_ms": latency,
        "loss_pct": loss_pct,
        "jitter_ms": jitter,
        "bandwidth_mbps": bandwidth,
    }

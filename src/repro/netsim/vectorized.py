"""Array-based fast paths mirroring the scalar mitigation/QoE models.

The telemetry generator simulates hundreds of thousands of participant
sessions, each with hundreds of five-second intervals.  Calling the
scalar :meth:`MitigationStack.apply` / :meth:`QoeModel.score` per interval
would dominate the runtime, so this module re-expresses the same formulas
over numpy arrays.  ``tests/netsim/test_vectorized.py`` pins the two
implementations together element-by-element — if the scalar model changes,
that test fails until this file is updated to match.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netsim.mitigation import MitigationStack
from repro.netsim.qoe import QoeModel


@dataclass(frozen=True)
class EffectiveArrays:
    """Vector analogue of :class:`repro.netsim.mitigation.EffectiveConditions`."""

    delay_ms: np.ndarray
    residual_audio_loss_pct: np.ndarray
    residual_video_loss_pct: np.ndarray
    video_bitrate_share: np.ndarray
    audio_bitrate_share: np.ndarray


@dataclass(frozen=True)
class QualityArrays:
    """Vector analogue of :class:`repro.netsim.qoe.QualityScores`."""

    audio_mos: np.ndarray
    video_mos: np.ndarray
    interactivity: np.ndarray
    overall_mos: np.ndarray


def mitigate_arrays(
    stack: MitigationStack,
    latency_ms: np.ndarray,
    loss_pct: np.ndarray,
    jitter_ms: np.ndarray,
    bandwidth_mbps: np.ndarray,
    burstiness: float,
) -> EffectiveArrays:
    """Vectorised :meth:`MitigationStack.apply` over per-interval arrays."""
    effective_efficiency = stack.fec_efficiency * (1 - stack.burst_penalty * burstiness)
    in_budget = np.minimum(loss_pct, stack.fec_budget_pct)
    over_budget = np.maximum(0.0, loss_pct - stack.fec_budget_pct)
    after_fec = in_budget * (1 - effective_efficiency) + over_budget

    excess_jitter = np.maximum(0.0, jitter_ms - stack.jitter_buffer_ms)
    late_audio_pct = np.minimum(20.0, 0.15 * excess_jitter)
    late_video_pct = np.minimum(40.0, 1.5 * excess_jitter)

    residual_audio = (after_fec + late_audio_pct) * (1 - stack.audio_concealment)
    residual_video = (after_fec + late_video_pct) * (1 - stack.video_concealment)

    video_share = np.minimum(1.0, bandwidth_mbps / stack.video_target_mbps)
    audio_share = np.minimum(1.0, bandwidth_mbps / stack.audio_target_mbps)

    delay = latency_ms + stack.jitter_buffer_ms + np.minimum(
        jitter_ms, stack.jitter_buffer_ms
    )
    return EffectiveArrays(
        delay_ms=delay,
        residual_audio_loss_pct=np.minimum(100.0, residual_audio),
        residual_video_loss_pct=np.minimum(100.0, residual_video),
        video_bitrate_share=video_share,
        audio_bitrate_share=audio_share,
    )


def _r_to_mos_arrays(r: np.ndarray) -> np.ndarray:
    r_clipped = np.clip(r, 0.0, 100.0)
    mos = 1 + 0.035 * r_clipped + 7e-6 * r_clipped * (r_clipped - 60) * (100 - r_clipped)
    mos = np.where(r <= 0, 1.0, mos)
    mos = np.where(r >= 100, 4.5, mos)
    return mos


def qoe_arrays(model: QoeModel, eff: EffectiveArrays) -> QualityArrays:
    """Vectorised :meth:`QoeModel.score` over mitigated condition arrays."""
    # --- audio R-factor ---
    delay = eff.delay_ms
    id_term = 0.024 * delay + np.where(
        delay > model.delay_knee_ms, 0.11 * (delay - model.delay_knee_ms), 0.0
    )
    loss_frac = eff.residual_audio_loss_pct / 100.0
    ie_term = model.loss_impairment_scale * np.log(1 + 15 * loss_frac)
    starvation = 40.0 * (1 - eff.audio_bitrate_share)
    r = model.r_baseline - id_term - ie_term - starvation
    audio = np.clip(_r_to_mos_arrays(r), 1.0, 5.0)

    # --- video ---
    artefact_frac = eff.residual_video_loss_pct / 100.0
    artefact_quality = np.exp(-7.0 * artefact_frac)
    share = np.maximum(1e-3, eff.video_bitrate_share)
    bitrate_quality = np.minimum(1.0, 0.88 + 0.12 * np.log10(1 + 9 * share))
    video = np.clip(1 + 4 * artefact_quality * bitrate_quality, 1.0, 5.0)

    # --- interactivity & overall ---
    interactivity = np.exp(-np.log(2) * delay / model.interactivity_halflife_ms)
    overall = np.clip(
        0.55 * audio + 0.25 * video + 0.20 * (1 + 4 * interactivity), 1.0, 5.0
    )
    return QualityArrays(
        audio_mos=audio,
        video_mos=video,
        interactivity=interactivity,
        overall_mos=overall,
    )

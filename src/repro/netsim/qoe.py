"""Quality-of-experience model: conditions → perceived quality.

Audio quality follows the ITU-T G.107 E-model shape: a transmission
rating ``R`` starts from a clean-channel baseline and is reduced by delay
impairment ``Id`` and equipment/loss impairment ``Ie``, then mapped to a
1–5 MOS.  Video quality is driven by residual artefact rate and achieved
bitrate share.  A separate **interactivity** score captures how hard
turn-taking is at a given mouth-to-ear delay — this is the channel through
which latency suppresses Mic On in Fig. 1 (steep below ~150 ms, flattening
beyond, as the paper observes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.netsim.mitigation import EffectiveConditions


@dataclass(frozen=True)
class QualityScores:
    """Perceived quality of one interval (or one session on average).

    Attributes:
        audio_mos: 1–5 audio quality.
        video_mos: 1–5 video quality.
        interactivity: 0–1; 1 means conversation feels instantaneous.
        overall_mos: 1–5 blend used for rating/drop-off decisions.
    """

    audio_mos: float
    video_mos: float
    interactivity: float
    overall_mos: float

    def __post_init__(self) -> None:
        for name in ("audio_mos", "video_mos", "overall_mos"):
            value = getattr(self, name)
            if not 1.0 <= value <= 5.0:
                raise ConfigError(f"{name} must be in [1, 5], got {value}")
        if not 0.0 <= self.interactivity <= 1.0:
            raise ConfigError(
                f"interactivity must be in [0, 1], got {self.interactivity}"
            )


def _r_to_mos(r: float) -> float:
    """ITU-T G.107 mapping from transmission rating to MOS."""
    if r <= 0:
        return 1.0
    if r >= 100:
        return 4.5
    return 1 + 0.035 * r + 7e-6 * r * (r - 60) * (100 - r)


@dataclass(frozen=True)
class QoeModel:
    """Tunable QoE mapping.

    Attributes:
        r_baseline: clean-channel transmission rating (G.107 default 93.2).
        delay_knee_ms: one-way delay beyond which Id grows steeply.
        loss_impairment_scale: steepness of the Ie loss term.
        interactivity_halflife_ms: delay at which interactivity is 0.5.
    """

    r_baseline: float = 93.2
    delay_knee_ms: float = 177.3
    loss_impairment_scale: float = 30.0
    interactivity_halflife_ms: float = 120.0

    def __post_init__(self) -> None:
        if self.r_baseline <= 0:
            raise ConfigError("r_baseline must be positive")
        if self.delay_knee_ms <= 0 or self.interactivity_halflife_ms <= 0:
            raise ConfigError("delay parameters must be positive")
        if self.loss_impairment_scale < 0:
            raise ConfigError("loss_impairment_scale must be >= 0")

    # --- audio ---------------------------------------------------------
    def audio_r_factor(self, eff: EffectiveConditions) -> float:
        delay = eff.delay_ms
        id_term = 0.024 * delay
        if delay > self.delay_knee_ms:
            id_term += 0.11 * (delay - self.delay_knee_ms)
        loss_frac = eff.residual_audio_loss_pct / 100.0
        ie_term = self.loss_impairment_scale * math.log(1 + 15 * loss_frac)
        # Audio bitrate starvation is rare but catastrophic when it happens.
        starvation = 40.0 * (1 - eff.audio_bitrate_share)
        return self.r_baseline - id_term - ie_term - starvation

    def audio_mos(self, eff: EffectiveConditions) -> float:
        return float(min(5.0, max(1.0, _r_to_mos(self.audio_r_factor(eff)))))

    # --- video ---------------------------------------------------------
    def video_mos(self, eff: EffectiveConditions) -> float:
        """Video MOS from artefact rate and bitrate adequacy.

        Quality saturates with bitrate (log-like), so a 1 Mbps session is
        within a few percent of a 4 Mbps one — the Fig. 1 (right) shape.
        """
        artefact_frac = eff.residual_video_loss_pct / 100.0
        artefact_quality = math.exp(-7.0 * artefact_frac)
        # Log-saturating bitrate utility; share >= 1 means unconstrained.
        share = max(1e-3, eff.video_bitrate_share)
        bitrate_quality = min(1.0, 0.88 + 0.12 * math.log10(1 + 9 * share) / math.log10(10))
        quality = artefact_quality * bitrate_quality
        return float(min(5.0, max(1.0, 1 + 4 * quality)))

    # --- interactivity -------------------------------------------------
    def interactivity(self, eff: EffectiveConditions) -> float:
        """How fluid turn-taking feels: 1 at zero delay, 0.5 at halflife.

        The exponential form gives the "steep then plateau" response the
        paper sees in Mic On: most of the damage is done by ~150 ms.
        """
        return float(math.exp(-math.log(2) * eff.delay_ms / self.interactivity_halflife_ms))

    # --- overall -------------------------------------------------------
    def score(self, eff: EffectiveConditions) -> QualityScores:
        audio = self.audio_mos(eff)
        video = self.video_mos(eff)
        inter = self.interactivity(eff)
        # The call stands or falls on audio; video and interactivity both
        # modulate the overall impression.
        overall = 0.55 * audio + 0.25 * video + 0.20 * (1 + 4 * inter)
        return QualityScores(
            audio_mos=audio,
            video_mos=video,
            interactivity=inter,
            overall_mos=float(min(5.0, max(1.0, overall))),
        )

"""Packet-loss processes.

Two models are provided:

* :class:`BernoulliLoss` — independent per-packet losses; the right model
  for random tail drops on an uncongested path.
* :class:`GilbertElliottLoss` — the classic two-state Markov model in
  which a path alternates between a *good* state (near-zero loss) and a
  *bad* state (heavy loss).  Bursty loss is what makes forward error
  correction partially ineffective, which in turn shapes how well the
  application-layer safeguards of :mod:`repro.netsim.mitigation` hide loss
  from the user — the mechanism behind the paper's observation that loss
  up to 2 % barely moves engagement (Fig. 1, middle-left).

Both expose ``interval_loss_rate`` which returns the realised loss
fraction over one five-second reporting interval; the telemetry client is
modelled as counting lost/total packets per interval, exactly what a real
RTP receiver report provides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

PACKETS_PER_SECOND = 50  # 20 ms audio/video packetisation.


@dataclass
class BernoulliLoss:
    """Independent per-packet loss at a fixed rate."""

    rate: float

    def __post_init__(self) -> None:
        if not 0 <= self.rate <= 1:
            raise ConfigError(f"loss rate must be in [0, 1], got {self.rate}")

    def interval_loss_rate(self, rng: np.random.Generator,
                           duration_s: float = 5.0) -> float:
        """Realised loss fraction over an interval of ``duration_s``."""
        n_packets = max(1, int(duration_s * PACKETS_PER_SECOND))
        lost = rng.binomial(n_packets, self.rate)
        return float(lost) / n_packets

    def burst_fraction(self) -> float:
        """Fraction of losses arriving in bursts (length >= 2).

        For independent losses this is simply the loss rate itself — the
        probability that the packet following a lost one is also lost.
        """
        return self.rate


@dataclass
class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) loss process.

    Attributes:
        rate: target *mean* loss rate; state parameters are derived so the
            stationary loss rate matches it.
        burstiness: in [0, 1); higher values make the bad state stickier
            (longer loss bursts at the same mean rate).
        bad_loss: per-packet loss probability while in the bad state.
    """

    rate: float
    burstiness: float = 0.3
    bad_loss: float = 0.5
    _state_bad: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.rate <= 1:
            raise ConfigError(f"loss rate must be in [0, 1], got {self.rate}")
        if not 0 <= self.burstiness < 1:
            raise ConfigError(f"burstiness must be in [0, 1), got {self.burstiness}")
        if not 0 < self.bad_loss <= 1:
            raise ConfigError(f"bad_loss must be in (0, 1], got {self.bad_loss}")
        if self.rate > self.bad_loss:
            # Cannot reach the target mean if even the bad state loses less.
            raise ConfigError(
                f"mean rate {self.rate} exceeds bad-state loss {self.bad_loss}"
            )

    def _transition_probs(self) -> tuple:
        """(p_good_to_bad, p_bad_to_good) hitting the stationary rate.

        With good-state loss 0 and bad-state loss ``bad_loss``, the
        stationary bad-state occupancy must be ``rate / bad_loss``.  The
        bad→good probability sets burst length: mean burst length is
        ``1 / p_bg``, scaled up by burstiness.
        """
        pi_bad = self.rate / self.bad_loss
        if pi_bad >= 1.0:
            return 1.0, 0.0
        p_bg = (1 - self.burstiness) * 0.5 + 1e-6
        p_gb = p_bg * pi_bad / (1 - pi_bad)
        return min(1.0, p_gb), min(1.0, p_bg)

    def interval_loss_rate(self, rng: np.random.Generator,
                           duration_s: float = 5.0) -> float:
        """Simulate packet-by-packet through the Markov chain.

        State persists across calls, so consecutive intervals of a session
        show realistic loss correlation (a burst can straddle intervals).
        """
        if self.rate == 0:
            return 0.0
        n_packets = max(1, int(duration_s * PACKETS_PER_SECOND))
        p_gb, p_bg = self._transition_probs()
        lost = 0
        bad = self._state_bad
        # Vectorised draw: one uniform per packet for transition, one for loss.
        trans = rng.random(n_packets)
        drops = rng.random(n_packets)
        for i in range(n_packets):
            if bad:
                if drops[i] < self.bad_loss:
                    lost += 1
                if trans[i] < p_bg:
                    bad = False
            else:
                if trans[i] < p_gb:
                    bad = True
        self._state_bad = bad
        return lost / n_packets

    def expected_burst_length(self) -> float:
        """Mean number of packets per bad-state visit."""
        _, p_bg = self._transition_probs()
        if p_bg == 0:
            return float("inf")
        return 1.0 / p_bg

    def interval_loss_rates(
        self,
        rng: np.random.Generator,
        n_intervals: int,
        duration_s: float = 5.0,
    ) -> np.ndarray:
        """Realised loss fraction for ``n_intervals`` consecutive intervals.

        Fast path for session-scale simulation: instead of stepping the
        chain packet-by-packet, alternate geometric good/bad sojourns
        (state run lengths) across the whole session and bin bad-state
        packets into intervals.  Statistically identical to
        :meth:`interval_loss_rate` but O(number of state runs) instead of
        O(number of packets).
        """
        if n_intervals < 1:
            raise ConfigError(f"n_intervals must be >= 1, got {n_intervals}")
        packets_per_interval = max(1, int(duration_s * PACKETS_PER_SECOND))
        total = n_intervals * packets_per_interval
        if self.rate == 0:
            return np.zeros(n_intervals)
        p_gb, p_bg = self._transition_probs()
        if p_gb >= 1.0:  # permanently bad
            lost = rng.binomial(packets_per_interval, self.bad_loss, size=n_intervals)
            return lost / packets_per_interval

        bad_packets = np.zeros(n_intervals, dtype=float)
        pos = 0
        bad = self._state_bad
        while pos < total:
            p_leave = p_bg if bad else p_gb
            if p_leave <= 0:
                run = total - pos
            else:
                run = int(rng.geometric(p_leave))
            run = min(run, total - pos)
            if bad and run > 0:
                # Spread this bad run's packets over the intervals it spans,
                # thinning by the bad-state per-packet loss probability.
                start_iv, end_iv = pos // packets_per_interval, (pos + run - 1) // packets_per_interval
                for iv in range(start_iv, end_iv + 1):
                    lo = max(pos, iv * packets_per_interval)
                    hi = min(pos + run, (iv + 1) * packets_per_interval)
                    bad_packets[iv] += rng.binomial(hi - lo, self.bad_loss)
            pos += run
            bad = not bad
        self._state_bad = bad
        return bad_packets / packets_per_interval

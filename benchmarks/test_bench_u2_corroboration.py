"""U2 — §5 corroboration: implicit signals confirm social reports.

Paper: *"User actions could be used to corroborate the user posts on
social media."*  The 7 Jan '22 outage is injected into the *network
layer* of a call simulation (no behavioural component knows about it) and
simultaneously plays out in the social corpus via the event calendar.
Both monitoring pipelines must independently flag the same day.
"""

import datetime as dt

import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.analysis import outage_keyword_series, sentiment_timeline
from repro.core.usaas import telemetry_signals, watch_metric
from repro.engagement.early_warning import DriftDetector
from repro.social import CorpusConfig, CorpusGenerator
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.meetings import MeetingScheduler

OUTAGE_DAY = dt.date(2022, 1, 7)
SPAN = (dt.date(2021, 12, 1), dt.date(2022, 1, 31))


@pytest.fixture(scope="module")
def implicit_alarms():
    scheduler = MeetingScheduler(span_start=SPAN[0], span_end=SPAN[1])
    dataset = CallDatasetGenerator(
        GeneratorConfig(n_calls=2500, seed=13,
                        outage_days={OUTAGE_DAY: 0.9}),
        scheduler=scheduler,
    ).generate()
    signals = telemetry_signals(dataset, network="starlink")
    return watch_metric(
        signals, "drop_off",
        DriftDetector(direction="rise", warmup_days=21, consecutive_days=1),
    )


@pytest.fixture(scope="module")
def social_spike():
    corpus = CorpusGenerator(CorpusConfig(
        seed=13, span_start=SPAN[0], span_end=SPAN[1],
        author_pool_size=800,
    )).generate()
    timeline = sentiment_timeline(corpus)
    outages = outage_keyword_series(corpus, scores=timeline.scores)
    return outages.top_spike_days(1)[0]


class TestU2:
    def test_bench_u2_cross_validation(self, benchmark, implicit_alarms,
                                       social_spike):
        result = timed(benchmark, lambda: (
            {a.day for a in implicit_alarms}, social_spike[0]
        ))
        implicit_days, social_day = result
        emit(
            "u2_corroboration",
            "U2 — §5 corroboration of a social-reported outage\n"
            f"  implicit drop-off alarms : {sorted(implicit_days)}\n"
            f"  social keyword spike     : {social_day} "
            f"({int(social_spike[1])} occurrences)\n"
            f"  corroborated             : "
            f"{'yes' if social_day in implicit_days else 'NO'}",
        )
        assert social_day == OUTAGE_DAY
        assert OUTAGE_DAY in implicit_days

    def test_implicit_alarm_is_specific(self, benchmark, implicit_alarms):
        """The incident day alarms; quiet days don't flood the monitor."""
        alarms = timed(benchmark, lambda: implicit_alarms)
        assert 1 <= len(alarms) <= 4
        assert all(a.day >= OUTAGE_DAY for a in alarms)

    def test_no_injection_no_alarm(self, benchmark):
        """Control: without the injected incident, no drop-off alarm."""
        def run():
            scheduler = MeetingScheduler(span_start=SPAN[0], span_end=SPAN[1])
            dataset = CallDatasetGenerator(
                GeneratorConfig(n_calls=1500, seed=13),
                scheduler=scheduler,
            ).generate()
            signals = telemetry_signals(dataset, network="starlink")
            return watch_metric(
                signals, "drop_off",
                DriftDetector(direction="rise", warmup_days=21,
                              consecutive_days=1),
            )

        alarms = timed(benchmark, run)
        assert alarms == []

"""F6 — Fig. 6: day-wise outage-keyword occurrences in negative threads.

Paper shapes:
* the two largest spikes land on 7 Jan '22 and 30 Aug '22 (both had
  press coverage);
* numerous shorter peaks correspond to local transient outages that were
  never reported anywhere;
* the 22 Apr '22 unreported outage is clearly present but below the top
  two.

Ablation: drop the paper's negative-sentiment filter and measure the
false-positive inflation ("no outages since I got the dish!" posts).
"""

import datetime as dt

import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.analysis.outage_monitor import outage_keyword_series
from repro.io.tables import format_table

HEADLINE_DAYS = (dt.date(2022, 1, 7), dt.date(2022, 8, 30))
UNREPORTED_DAY = dt.date(2022, 4, 22)


@pytest.fixture(scope="module")
def series(bench_corpus, bench_timeline):
    return outage_keyword_series(bench_corpus, scores=bench_timeline.scores)


class TestFig6:
    def test_bench_fig6_series(self, benchmark, bench_corpus, bench_timeline):
        series = timed(benchmark, lambda: outage_keyword_series(
            bench_corpus, scores=bench_timeline.scores
        ))
        top = series.occurrences.top_peaks(6)
        emit("fig6_outages", format_table(
            ["day", "keyword occurrences", "threads"],
            [[str(d), int(v), int(series.threads[d])] for d, v in top],
            title="Fig. 6 — top outage-keyword days in negative threads "
                  "(paper: 2022-01-07 and 2022-08-30 are the largest)",
        ))

    def test_top_two_spikes(self, benchmark, series):
        spikes = timed(benchmark, lambda: series.top_spike_days(2))
        assert {d for d, _ in spikes} == set(HEADLINE_DAYS)

    def test_unreported_outage_visible(self, benchmark, series):
        values = timed(benchmark, lambda: (
            series.occurrences[UNREPORTED_DAY],
            min(v for _, v in series.top_spike_days(2)),
        ))
        april, top2_floor = values
        assert 0 < april < top2_floor

    def test_transient_peaks_numerous(self, benchmark, series):
        floor_value = min(v for _, v in series.top_spike_days(2))
        transients = timed(benchmark, lambda: series.transient_peak_days(
            spike_threshold=floor_value * 0.3, floor=3.0
        ))
        emit("fig6_transients",
             f"Fig. 6 — transient outage-keyword days (floor<count<30% of "
             f"headline spike): {len(transients)} days across the span")
        assert len(transients) > 50

    def test_ablation_negative_filter(self, benchmark, bench_corpus,
                                      bench_timeline):
        def run():
            filtered = outage_keyword_series(
                bench_corpus, scores=bench_timeline.scores, negative_only=True
            )
            unfiltered = outage_keyword_series(
                bench_corpus, scores=bench_timeline.scores, negative_only=False
            )
            return filtered, unfiltered

        filtered, unfiltered = timed(benchmark, run)
        false_positive_mass = (
            unfiltered.occurrences.values.sum()
            - filtered.occurrences.values.sum()
        )
        inflation = false_positive_mass / filtered.occurrences.values.sum()
        emit(
            "fig6_ablation_filter",
            "Fig. 6 ablation — negative-sentiment filter\n"
            f"  occurrences with filter   : {int(filtered.occurrences.values.sum())}\n"
            f"  occurrences without filter: {int(unfiltered.occurrences.values.sum())}\n"
            f"  false-positive inflation  : {100 * inflation:.1f} %",
        )
        assert inflation > 0.02

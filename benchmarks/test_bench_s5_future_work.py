"""S5 — the §6 future-work directions, implemented and measured.

* confounder adjustment: composition bias in the naive latency curve;
* early warning: engagement vs MOS detection latency;
* per-cohort mitigation tuning gains;
* sentiment-aware launch planning improvement;
* the paper's note that "similar trends hold for P95": engagement trends
  on P95 aggregates match those on means;
* the Pos-normalisation ablation from DESIGN.md §5.
"""

import datetime as dt

import numpy as np
import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.engagement.adjustment import composition_bias_demo
from repro.engagement.binning import engagement_curve
from repro.engagement.early_warning import detection_latency_experiment
from repro.io.tables import format_table
from repro.netsim.link import LinkProfile
from repro.netsim.tuning import MitigationTuner, tuning_gain
from repro.rng import derive
from repro.starlink.planning import LaunchPlanner, plan_outcome


class TestConfounderAdjustment:
    def test_bench_composition_bias(self, benchmark, observational_dataset):
        numbers = timed(benchmark, lambda: composition_bias_demo(
            observational_dataset.participants(), edges=(0, 120, 350)
        ))
        emit("s5_confounder_adjustment", format_table(
            ["quantity", "value %"],
            [[k, v] for k, v in numbers.items()],
            title="S5 — §6 'Are networks to blame always?': Mic On drop "
                  "over latency, raw vs platform-adjusted",
        ))
        # Network effect survives adjustment; some bias is removed.
        assert numbers["adjusted_drop_pct"] > 5
        assert numbers["composition_bias_pct"] > -5


class TestEarlyWarning:
    def test_bench_detection_latency(self, benchmark):
        def run():
            rows = []
            for trial in range(10):
                outcomes = detection_latency_experiment(
                    derive(500 + trial, "bench-ew")
                )
                rows.append((
                    outcomes["engagement"].days_to_detect,
                    outcomes["mos"].days_to_detect,
                    outcomes["engagement"].false_alarm
                    or outcomes["mos"].false_alarm,
                ))
            return rows

        rows = timed(benchmark, run)
        eng_latencies = [r[0] for r in rows if r[0] is not None]
        mos_caught = sum(1 for r in rows if r[1] is not None)
        false_alarms = sum(1 for r in rows if r[2])
        emit(
            "s5_early_warning",
            "S5 — §3.3 'early indication': detection latency over 10 trials\n"
            f"  engagement detector: median {np.median(eng_latencies):.0f} "
            f"day(s) after onset, detected {len(eng_latencies)}/10\n"
            f"  MOS detector       : detected {mos_caught}/10 within the "
            f"horizon (0.1-1% sampling)\n"
            f"  false alarms       : {false_alarms}/10",
        )
        assert len(eng_latencies) == 10
        assert np.median(eng_latencies) <= 3
        assert mos_caught < 10
        assert false_alarms == 0


class TestResourceTuning:
    def test_bench_tuning_gains(self, benchmark):
        cohorts = {
            "jittery_cable": LinkProfile(base_latency_ms=15, loss_rate=0.003,
                                         jitter_ms=14, bandwidth_mbps=3.0,
                                         burstiness=0.4),
            "clean_satellite": LinkProfile(base_latency_ms=120,
                                           loss_rate=0.002, jitter_ms=2,
                                           bandwidth_mbps=2.5,
                                           burstiness=0.3),
            "lossy_dsl": LinkProfile(base_latency_ms=40, loss_rate=0.025,
                                     jitter_ms=5, bandwidth_mbps=1.5,
                                     burstiness=0.6),
        }
        results = timed(benchmark, lambda: tuning_gain(
            cohorts, MitigationTuner(fec_budgets_pct=(1.0, 2.0, 4.0))
        ))
        emit("s5_resource_tuning", format_table(
            ["cohort", "buffer ms", "FEC %", "default QoE", "tuned QoE",
             "gain"],
            [[name, r.stack.jitter_buffer_ms, r.stack.fec_budget_pct,
              r.default_score, r.score, r.gain]
             for name, r in results.items()],
            title="S5 — §6 online resource tuning: per-cohort mitigation",
        ))
        assert results["jittery_cable"].gain > 0.05
        assert all(r.gain >= 0 for r in results.values())
        # Different cohorts genuinely want different settings.
        depths = {r.stack.jitter_buffer_ms for r in results.values()}
        assert len(depths) >= 2


class TestLaunchPlanning:
    def test_bench_planner(self, benchmark):
        candidates = [(2021, 7), (2021, 12), (2022, 2), (2022, 9)]

        def run():
            baseline = plan_outcome({})
            planned = LaunchPlanner().plan(3, candidates)
            return baseline, planned

        baseline, planned = timed(benchmark, run)
        emit("s5_launch_planning", format_table(
            ["plan", "mean satisfaction", "worst month", "extra launches"],
            [
                ["historical", baseline.mean_satisfaction,
                 baseline.min_satisfaction, "0"],
                ["+3 greedy", planned.mean_satisfaction,
                 planned.min_satisfaction, str(planned.extra_launches)],
            ],
            title="S5 — §6 deployment planning: sentiment-aware launch "
                  "allocation",
        ))
        assert planned.mean_satisfaction > baseline.mean_satisfaction


class TestP95Aggregates:
    def test_bench_p95_trends_match_mean_trends(self, benchmark,
                                                observational_dataset):
        """§3.1: "we report results using the mean but similar trends hold
        for P95 values as well"."""
        pool = list(observational_dataset.participants())
        edges = np.linspace(0, 300, 7)

        def run():
            out = {}
            for stat in ("mean", "p95"):
                curve = engagement_curve(
                    pool, "latency_ms", "mic_on_pct", edges,
                    network_stat=stat, min_bin_count=20,
                )
                finite = np.where(~np.isnan(curve.stat))[0]
                out[stat] = (
                    float(curve.stat[finite[0]]),
                    float(curve.stat[finite[-1]]),
                )
            return out

        results = timed(benchmark, run)
        emit("s5_p95_aggregates", format_table(
            ["aggregate", "first bin Mic On", "last bin Mic On"],
            [[stat, first, last] for stat, (first, last) in results.items()],
            title="S5 — mean vs P95 session aggregation (paper: similar "
                  "trends hold)",
        ))
        for stat, (first, last) in results.items():
            assert last < first, f"{stat} trend should be downward"


class TestPosNormalisationAblation:
    def test_bench_pos_vs_raw_counts(self, benchmark, bench_corpus,
                                     bench_timeline, bench_track):
        """DESIGN.md §5: the Pos ratio 'filters out edge cases'; raw
        strong-positive counts confound sentiment with posting volume."""
        from repro.analysis.fulcrum import pos_vs_speed
        from repro.core.stats import pearson
        from repro.core.timeline import MonthlySeries, align_series, month_of

        def run():
            fulcrum = pos_vs_speed(
                bench_corpus, bench_track.median, scores=bench_timeline.scores
            )
            raw_counts: dict = {}
            for post in bench_corpus.speed_shares():
                s = bench_timeline.scores[post.post_id]
                if s.is_strong_positive:
                    month = month_of(post.date)
                    raw_counts[month] = raw_counts.get(month, 0) + 1
            raw_series = MonthlySeries.from_mapping(
                {m: float(v) for m, v in raw_counts.items()},
                start=bench_track.median.start, end=bench_track.median.end,
            )
            _, pos_vals, speed_vals = align_series(
                fulcrum.pos, bench_track.median
            )
            _, raw_vals, speed_vals_raw = align_series(
                raw_series, bench_track.median
            )
            return (
                pearson(pos_vals, speed_vals),
                pearson(raw_vals, speed_vals_raw),
            )

        pos_corr, raw_corr = timed(benchmark, run)
        emit(
            "s5_ablation_pos_normalisation",
            "S5 ablation — Pos normalisation (DESIGN.md §5)\n"
            f"  corr(speed, Pos ratio)           : {pos_corr:+.2f}\n"
            f"  corr(speed, raw strong-pos count): {raw_corr:+.2f}\n"
            "  (the ratio cancels posting-volume growth; raw counts mix "
            "sentiment with subreddit size)",
        )
        assert pos_corr > 0.15

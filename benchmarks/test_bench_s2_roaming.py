"""S2 — §4.1 roaming early detection.

Paper claim: mining popular discussions (weighted by upvotes and comment
counts) surfaces "roaming" / "roaming enabled" (with positive sentiment)
~2 weeks before the CEO's 4 Mar '22 announcement and ~3 months before the
public portability notice.
"""

import datetime as dt

import numpy as np
import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.io.tables import format_table
from repro.nlp.trends import TrendMiner

ANNOUNCEMENT = dt.date(2022, 3, 4)
PUBLIC_NOTICE = dt.date(2022, 5, 3)


@pytest.fixture(scope="module")
def mined_topics(bench_corpus):
    miner = TrendMiner(min_window_weight=120)
    records = [
        (p.date, p.full_text, p.popularity)
        for p in bench_corpus
        if dt.date(2022, 1, 1) <= p.date <= dt.date(2022, 3, 10)
    ]
    return miner.mine(records, terms_of_interest=["roaming", "roaming enabled"])


class TestS2:
    def test_bench_s2_detection(self, benchmark, bench_corpus):
        miner = TrendMiner(min_window_weight=120)
        records = [
            (p.date, p.full_text, p.popularity)
            for p in bench_corpus
            if dt.date(2022, 1, 1) <= p.date <= dt.date(2022, 3, 10)
        ]
        topics = timed(benchmark, lambda: miner.mine(
            records, terms_of_interest=["roaming", "roaming enabled"]
        ))
        rows = [
            [t.term, str(t.first_detected),
             (ANNOUNCEMENT - t.first_detected).days,
             (PUBLIC_NOTICE - t.first_detected).days,
             t.window_weight]
            for t in topics
        ]
        emit("s2_roaming", format_table(
            ["term", "detected", "days before CEO tweet",
             "days before public notice", "popularity weight"],
            rows,
            title="S2 — roaming early detection (paper: ~2 weeks before "
                  "the tweet, ~3 months before the notice)",
        ))
        assert topics, "roaming must be detected"

    def test_detected_before_announcement(self, benchmark, mined_topics):
        detected = timed(
            benchmark, lambda: min(t.first_detected for t in mined_topics)
        )
        lead_days = (ANNOUNCEMENT - detected).days
        assert 7 <= lead_days <= 25  # "almost ~2 weeks before"

    def test_detected_months_before_public_notice(self, benchmark,
                                                  mined_topics):
        detected = timed(
            benchmark, lambda: min(t.first_detected for t in mined_topics)
        )
        lead_days = (PUBLIC_NOTICE - detected).days
        assert lead_days >= 60  # "~3 months before"

    def test_roaming_discussions_positive(self, benchmark, bench_corpus,
                                          bench_timeline):
        """The early roaming threads carry positive sentiment."""
        early = [
            p for p in bench_corpus
            if p.topic == "roaming" and p.date < ANNOUNCEMENT
        ]
        assert early
        polarity = timed(benchmark, lambda: float(np.mean([
            bench_timeline.scores[p.post_id].polarity for p in early
        ])))
        assert polarity > 0.1

    def test_popularity_weighting_detects_earlier(self, benchmark,
                                                  bench_corpus, mined_topics):
        """Ablation: ignore popularity (weight 1 per post) and detection
        comes later — the viral early threads are what give the topic
        critical mass while raw post counts are still small."""
        miner = TrendMiner(min_window_weight=120)
        records_flat = [
            (p.date, p.full_text, 1.0)
            for p in bench_corpus
            if dt.date(2022, 1, 1) <= p.date <= dt.date(2022, 3, 10)
        ]
        flat = timed(benchmark, lambda: miner.mine(
            records_flat, terms_of_interest=["roaming", "roaming enabled"]
        ))
        weighted_dates = {t.term: t.first_detected for t in mined_topics}
        flat_dates = {t.term: t.first_detected for t in flat}
        emit("s2_ablation_popularity", format_table(
            ["term", "weighted detection", "unweighted detection"],
            [[term, str(weighted_dates.get(term, "-")),
              str(flat_dates.get(term, "(not detected)"))]
             for term in ("roaming", "roaming enabled")],
            title="S2 ablation — popularity weighting vs raw post counts",
        ))
        for term, weighted_day in weighted_dates.items():
            flat_day = flat_dates.get(term)
            assert flat_day is None or weighted_day <= flat_day
        # At least one term is detected strictly earlier with weighting.
        assert any(
            term not in flat_dates or weighted_dates[term] < flat_dates[term]
            for term in weighted_dates
        )

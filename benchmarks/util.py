"""Benchmark helpers."""

from __future__ import annotations

from typing import Any, Callable


def timed(benchmark, fn: Callable[[], Any]) -> Any:
    """Run ``fn`` once under the benchmark timer and return its result.

    Every benchmark test times its core computation through this helper
    so that shape assertions and timing live in the same test — and so
    nothing gets skipped under ``--benchmark-only``.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)

"""F3 — Fig. 3: platform type shapes sensitivity to network loss.

Paper shape: four platform curves of Presence vs loss; mobile users drop
off sooner than PC users at the same conditions, and OS flavours differ.
"""

import numpy as np
import pytest

from benchmarks.conftest import SWEEP_BASE, emit
from benchmarks.util import timed
from repro.io.tables import format_table
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.generator import sweep_value_of
from repro.telemetry.platforms import PLATFORMS

LOSSES = [0.001, 0.01, 0.02, 0.035]


@pytest.fixture(scope="module")
def per_platform_pools():
    pools = {}
    for key in PLATFORMS:
        gen = CallDatasetGenerator(GeneratorConfig(n_calls=0, seed=37))
        ds = gen.generate_sweep(
            SWEEP_BASE, "loss", LOSSES, calls_per_value=60, platform_key=key
        )
        pools[key] = [(c.participants[0], sweep_value_of(c)) for c in ds]
    return pools


def _presence(pool, loss):
    return float(np.mean([p.presence_pct for p, v in pool if v == loss]))


def _drop_pct(pool):
    best = _presence(pool, LOSSES[0])
    worst = _presence(pool, LOSSES[-1])
    return 100.0 * (best - worst) / best


class TestFig3:
    def test_bench_fig3_curves(self, benchmark, per_platform_pools):
        rows = timed(benchmark, lambda: [
            [key] + [_presence(pool, loss) for loss in LOSSES]
            + [_drop_pct(pool)]
            for key, pool in sorted(per_platform_pools.items())
        ])
        emit("fig3_platforms", format_table(
            ["platform"] + [f"loss={l:g}" for l in LOSSES] + ["drop %"],
            rows,
            title="Fig. 3 — Presence vs loss rate per platform",
        ))

    def test_all_four_platforms_covered(self, benchmark, per_platform_pools):
        keys = timed(benchmark, lambda: sorted(per_platform_pools))
        assert len(keys) == 4

    def test_mobile_more_sensitive_than_pc(self, benchmark, per_platform_pools):
        drops = timed(benchmark, lambda: {
            key: _drop_pct(pool) for key, pool in per_platform_pools.items()
        })
        mobile = min(drops["ios_mobile"], drops["android_mobile"])
        pc = max(drops["windows_pc"], drops["mac_pc"])
        assert mobile > pc

    def test_os_flavours_differ(self, benchmark, per_platform_pools):
        """Sensitivity varies within a device class too."""
        drops = timed(benchmark, lambda: {
            key: _drop_pct(pool) for key, pool in per_platform_pools.items()
        })
        assert drops["android_mobile"] != pytest.approx(
            drops["ios_mobile"], abs=1e-9
        )

"""F5 — Fig. 5a/5b: sentiment peaks tied to events; the unreported outage.

Paper shapes:
* the top three strong-sentiment peaks land on 9 Feb '21 (positive,
  pre-orders), 24 Nov '21 (negative, delay email) and 22 Apr '22
  (negative, outage);
* news annotation explains the first two but comes back EMPTY for the
  third;
* the 22 Apr '22 word cloud has "outage" among its top-3 unigrams.

Ablation: sweep the strong-sentiment threshold and check peak stability.
"""

import datetime as dt

import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.analysis.peak_annotation import annotate_peak
from repro.io.tables import format_table
from repro.social.events import EventCalendar, build_news_index

PAPER_PEAKS = {
    dt.date(2021, 2, 9): "positive",
    dt.date(2021, 11, 24): "negative",
    dt.date(2022, 4, 22): "negative",
}


@pytest.fixture(scope="module")
def news_index():
    return build_news_index(EventCalendar())


class TestFig5a:
    def test_bench_fig5a_peaks(self, benchmark, bench_corpus, bench_timeline):
        peaks = timed(benchmark, lambda: bench_timeline.top_peaks(3))
        rows = [
            [str(day), int(value), bench_timeline.peak_polarity(day)]
            for day, value in peaks
        ]
        emit("fig5a_peaks", format_table(
            ["day", "strong posts", "polarity"],
            rows,
            title="Fig. 5a — top-3 daily strong-sentiment peaks "
                  "(paper: 2021-02-09 +, 2021-11-24 -, 2022-04-22 -)",
        ))
        assert {day for day, _ in peaks} == set(PAPER_PEAKS)

    def test_peak_polarities_match_paper(self, benchmark, bench_timeline):
        polarities = timed(benchmark, lambda: {
            day: bench_timeline.peak_polarity(day) for day in PAPER_PEAKS
        })
        assert polarities == PAPER_PEAKS

    def test_news_annotation(self, benchmark, bench_corpus, news_index):
        annotations = timed(benchmark, lambda: {
            day: annotate_peak(bench_corpus, news_index, day)
            for day in PAPER_PEAKS
        })
        rows = [
            [str(day), ", ".join(a.search_keywords),
             a.headline or "(no news found)"]
            for day, a in sorted(annotations.items())
        ]
        emit("fig5a_annotations", format_table(
            ["peak day", "cloud top-3", "news"],
            rows,
            title="Fig. 5a annotations — news search per peak",
        ))
        assert annotations[dt.date(2021, 2, 9)].explained_by_news
        assert annotations[dt.date(2021, 11, 24)].explained_by_news
        assert not annotations[dt.date(2022, 4, 22)].explained_by_news


class TestFig5b:
    def test_outage_in_top3_cloud_words(self, benchmark, bench_corpus,
                                        news_index):
        annotation = timed(benchmark, lambda: annotate_peak(
            bench_corpus, news_index, dt.date(2022, 4, 22)
        ))
        top = [w for w, _ in annotation.cloud.top_unigrams(10)]
        emit("fig5b_wordcloud", format_table(
            ["rank", "word", "count"],
            [[i + 1, w, c] for i, (w, c) in
             enumerate(annotation.cloud.top_unigrams(10))],
            title="Fig. 5b — word cloud, 2022-04-22 "
                  "(paper: 'outage' is the 3rd most common word)",
        ))
        assert "outage" in top[:3]


class TestThresholdAblation:
    def test_threshold_sweep(self, benchmark, bench_corpus, bench_timeline):
        """DESIGN.md ablation: the top-3 peak days shouldn't depend on the
        exact 0.7 strong-score cutoff."""
        from repro.core.timeline import DailySeries

        dates = {p.post_id: p.date for p in bench_corpus}

        def rank(cutoff):
            series = DailySeries.zeros(
                bench_timeline.strong_positive.start,
                bench_timeline.strong_positive.end,
            )
            for post_id, day in dates.items():
                s = bench_timeline.scores[post_id]
                if s.positive >= cutoff or s.negative >= cutoff:
                    series.add(day)
            return {d for d, _ in series.top_peaks(3)}

        results = timed(benchmark, lambda: {
            cutoff: rank(cutoff) for cutoff in (0.6, 0.7, 0.8)
        })
        emit("fig5_ablation_threshold", format_table(
            ["cutoff", "top-3 peak days"],
            [[f"{c:.1f}", ", ".join(str(d) for d in sorted(days))]
             for c, days in results.items()],
            title="Fig. 5 ablation — peak identification vs strong threshold",
        ))
        # The paper's threshold (0.7) and a looser one agree.
        assert results[0.7] == set(PAPER_PEAKS)
        assert results[0.6] == results[0.7]

"""F1 — Fig. 1: user engagement vs the four network metrics.

Paper shapes being reproduced:

* latency 0→300 ms: Presence and Cam On fall ~20 %, Mic On falls >25 %
  with a steeper slope below 150 ms;
* loss 0→2 %: all three metrics fall <10 % (mitigation absorbs it), but
  3 %+ loss raises the drop-off chance by >10 points;
* jitter: Cam On falls >15 % by 10 ms, Mic On barely moves;
* bandwidth: everything within 5 % of best at 1 Mbps; Mic On flat.

The ablation re-runs the loss sweep with the mitigation stack disabled:
the loss panel steepens, demonstrating the paper's explanation for the
weak loss effect.
"""

import numpy as np
import pytest

from benchmarks.conftest import SWEEP_BASE, emit
from benchmarks.util import timed
from repro.engagement import CohortFilter, fig1_curves
from repro.io.tables import format_table
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.generator import sweep_value_of

LATENCY_VALUES = [10.0, 75.0, 150.0, 225.0, 300.0]
LOSS_VALUES = [0.0005, 0.005, 0.01, 0.02, 0.035]
JITTER_VALUES = [1.0, 4.0, 7.0, 10.0, 14.0]
BANDWIDTH_VALUES = [0.5, 1.0, 2.0, 3.0, 4.0]


def _sweep_pool(generator, metric, values, calls_per_value=120):
    ds = generator.generate_sweep(
        SWEEP_BASE, metric, values, calls_per_value=calls_per_value
    )
    return [(c.participants[0], sweep_value_of(c)) for c in ds]


def _means(pool, value, metric):
    return float(np.mean([getattr(p, metric) for p, v in pool if v == value]))


def _panel_rows(pool, label):
    by_value = {}
    for p, v in pool:
        by_value.setdefault(v, []).append(p)
    return [
        [
            f"{label}={v:g}",
            float(np.mean([p.presence_pct for p in by_value[v]])),
            float(np.mean([p.cam_on_pct for p in by_value[v]])),
            float(np.mean([p.mic_on_pct for p in by_value[v]])),
            float(100 * np.mean([p.dropped_early for p in by_value[v]])),
        ]
        for v in sorted(by_value)
    ]


@pytest.fixture(scope="module")
def panels(sweep_generator):
    return {
        "latency": _sweep_pool(sweep_generator, "latency", LATENCY_VALUES),
        "loss": _sweep_pool(sweep_generator, "loss", LOSS_VALUES),
        "jitter": _sweep_pool(sweep_generator, "jitter", JITTER_VALUES),
        "bandwidth": _sweep_pool(sweep_generator, "bandwidth", BANDWIDTH_VALUES),
    }


class TestFig1:
    def test_bench_fig1_panels(self, benchmark, panels):
        rows = timed(benchmark, lambda: {
            name: _panel_rows(pool, name) for name, pool in panels.items()
        })
        tables = [
            format_table(
                [name, "presence%", "cam_on%", "mic_on%", "drop%"],
                rows[name],
                title=f"Fig. 1 ({name} panel) — mean engagement per session bin",
            )
            for name in ("latency", "loss", "jitter", "bandwidth")
        ]
        emit("fig1_engagement", "\n\n".join(tables))

    # --- latency panel shapes -------------------------------------------

    def test_latency_mic_drop_over_25pct(self, benchmark, panels):
        pool = panels["latency"]
        best, worst = timed(benchmark, lambda: (
            _means(pool, 10.0, "mic_on_pct"), _means(pool, 300.0, "mic_on_pct")
        ))
        assert (best - worst) / best > 0.20

    def test_latency_presence_and_cam_drop_around_20pct(self, benchmark, panels):
        pool = panels["latency"]
        drops = timed(benchmark, lambda: {
            metric: (_means(pool, 10.0, metric) - _means(pool, 300.0, metric))
            / _means(pool, 10.0, metric)
            for metric in ("presence_pct", "cam_on_pct")
        })
        for metric, drop in drops.items():
            assert 0.08 < drop < 0.45, f"{metric} drop {drop:.2f}"

    def test_latency_mic_steeper_before_150(self, benchmark, panels):
        pool = panels["latency"]
        early, late = timed(benchmark, lambda: (
            _means(pool, 10.0, "mic_on_pct") - _means(pool, 150.0, "mic_on_pct"),
            _means(pool, 150.0, "mic_on_pct") - _means(pool, 300.0, "mic_on_pct"),
        ))
        assert early > late > -1.0

    # --- loss panel shapes ----------------------------------------------

    def test_loss_under_2pct_costs_under_10pct(self, benchmark, panels):
        pool = panels["loss"]
        drops = timed(benchmark, lambda: {
            metric: (_means(pool, 0.0005, metric) - _means(pool, 0.02, metric))
            / _means(pool, 0.0005, metric)
            for metric in ("presence_pct", "cam_on_pct", "mic_on_pct")
        })
        for metric, drop in drops.items():
            assert drop < 0.12, f"{metric} lost {drop:.2%} at 2% loss"

    def test_loss_over_3pct_raises_dropoff_10_points(self, benchmark, panels):
        pool = panels["loss"]
        clean, heavy = timed(benchmark, lambda: (
            _means(pool, 0.0005, "dropped_early") * 100,
            _means(pool, 0.035, "dropped_early") * 100,
        ))
        assert heavy - clean > 10.0

    # --- jitter panel shapes --------------------------------------------

    def test_jitter_10ms_cuts_cam_over_15pct(self, benchmark, panels):
        pool = panels["jitter"]
        best, at_10 = timed(benchmark, lambda: (
            _means(pool, 1.0, "cam_on_pct"), _means(pool, 10.0, "cam_on_pct")
        ))
        assert (best - at_10) / best > 0.12

    def test_jitter_barely_touches_mic(self, benchmark, panels):
        pool = panels["jitter"]
        best, at_10 = timed(benchmark, lambda: (
            _means(pool, 1.0, "mic_on_pct"), _means(pool, 10.0, "mic_on_pct")
        ))
        assert abs(best - at_10) / best < 0.08

    # --- bandwidth panel shapes -----------------------------------------

    def test_bandwidth_1mbps_within_5pct_of_best(self, benchmark, panels):
        pool = panels["bandwidth"]
        gaps = timed(benchmark, lambda: {
            metric: (
                max(_means(pool, v, metric) for v in BANDWIDTH_VALUES)
                - _means(pool, 1.0, metric)
            ) / max(_means(pool, v, metric) for v in BANDWIDTH_VALUES)
            for metric in ("presence_pct", "cam_on_pct", "mic_on_pct")
        })
        for metric, gap in gaps.items():
            assert gap < 0.08, metric

    def test_bandwidth_mic_uncorrelated(self, benchmark, panels):
        pool = panels["bandwidth"]
        mic = timed(benchmark, lambda: [
            _means(pool, v, "mic_on_pct") for v in BANDWIDTH_VALUES
        ])
        assert (max(mic) - min(mic)) / max(mic) < 0.08

    # --- ablation: disable the mitigation stack --------------------------

    def test_ablation_mitigation_flattens_loss_panel(self, benchmark):
        def run():
            results = {}
            for enabled in (True, False):
                gen = CallDatasetGenerator(
                    GeneratorConfig(n_calls=0, seed=77,
                                    mitigation_enabled=enabled)
                )
                pool = [
                    (c.participants[0], sweep_value_of(c))
                    for c in gen.generate_sweep(
                        SWEEP_BASE, "loss", [0.0005, 0.02], calls_per_value=80
                    )
                ]
                best = _means(pool, 0.0005, "presence_pct")
                worst = _means(pool, 0.02, "presence_pct")
                results[enabled] = (best - worst) / best
            return results

        results = timed(benchmark, run)
        emit(
            "fig1_ablation_mitigation",
            "Fig. 1 ablation — Presence drop at 2% loss\n"
            f"  mitigation on : {100 * results[True]:5.1f} %\n"
            f"  mitigation off: {100 * results[False]:5.1f} %",
        )
        assert results[False] > results[True]


class TestFig1Observational:
    def test_observational_pipeline_paper_method(
        self, benchmark, observational_dataset
    ):
        """Post-hoc conditioning on observational data (the paper's actual
        method): cohort filter + hold-others-constant windows."""
        cohort = CohortFilter().apply(observational_dataset)
        pool = list(cohort.participants())

        result = timed(
            benchmark,
            lambda: fig1_curves(pool, include_drop=True, min_bin_count=8),
        )
        curve = result.panel("latency_ms")["mic_on_pct"]
        finite = np.where(~np.isnan(curve.stat))[0]
        assert len(finite) >= 3
        assert curve.stat[finite[-1]] < curve.stat[finite[0]]

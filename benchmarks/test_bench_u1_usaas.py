"""U1 — §5 USaaS end-to-end: "how do Starlink users perceive Teams?"

The paper's worked example: USaaS filters online user actions and MOS on
MS Teams pertaining to Starlink, plus offline social feedback on the
same, and correlates them.  The benchmark wires two synthetic deployments
(a degraded "starlink" cohort and a clean "fiber" cohort) plus the Reddit
corpus into the service and checks the report distinguishes them.
"""

import datetime as dt

import pytest

from benchmarks.conftest import BENCH_SEED, emit
from benchmarks.util import timed
from repro.core.usaas import (
    UsaasQuery,
    UsaasService,
    social_signals,
    telemetry_signals,
)
from repro.netsim.link import LinkProfile
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.generator import focal_participants


@pytest.fixture(scope="module")
def service(bench_corpus, bench_timeline):
    gen = CallDatasetGenerator(
        GeneratorConfig(n_calls=0, seed=BENCH_SEED, mos_sample_rate=0.2)
    )
    starlink_profile = LinkProfile(
        base_latency_ms=45, loss_rate=0.012, jitter_ms=10.0,
        bandwidth_mbps=2.8, burstiness=0.6,
    )
    fiber_profile = LinkProfile(
        base_latency_ms=12, loss_rate=0.0004, jitter_ms=1.0,
        bandwidth_mbps=4.0, burstiness=0.1,
    )
    starlink_calls = gen.generate_sweep(
        starlink_profile, "latency", [45.0], calls_per_value=120,
        focal_only=False,
    )
    fiber_calls = gen.generate_sweep(
        fiber_profile, "latency", [12.0], calls_per_value=120,
        focal_only=False,
    )
    svc = UsaasService()
    svc.register_source(
        "teams-starlink",
        lambda: telemetry_signals(starlink_calls, network="starlink"),
    )
    svc.register_source(
        "teams-fiber",
        lambda: telemetry_signals(fiber_calls, network="fiber"),
    )
    svc.register_source(
        "reddit",
        lambda: social_signals(bench_corpus, scores=bench_timeline.scores),
    )
    return svc


class TestU1:
    def test_bench_u1_report(self, benchmark, service):
        report = timed(benchmark, lambda: service.answer(
            UsaasQuery(network="starlink", service="teams")
        ))
        emit("u1_usaas", report.summary + (
            f"\n  implicit signals: {report.n_implicit}"
            f"\n  explicit signals: {report.n_explicit}"
        ))
        assert report.insights
        assert report.n_implicit > 0 and report.n_explicit > 0

    def test_starlink_worse_than_fiber_on_teams(self, benchmark, service):
        reports = timed(benchmark, lambda: {
            net: service.answer(UsaasQuery(network=net, service="teams"))
            for net in ("starlink", "fiber")
        })

        def presence_level(report):
            for insight in report.insights:
                if insight.kind == "level" and insight.statement.startswith(
                    "presence"
                ):
                    return insight.evidence_dict()["mean"]
            raise AssertionError("no presence level insight")

        assert presence_level(reports["starlink"]) < presence_level(
            reports["fiber"]
        )

    def test_outage_anomaly_surfaces(self, benchmark, service):
        report = timed(benchmark, lambda: service.answer(
            UsaasQuery(network="starlink")
        ))
        anomalies = [i for i in report.insights if i.kind == "anomaly"]
        assert anomalies
        assert any("2022" in i.statement for i in anomalies)

    def test_network_comparison(self, benchmark, service):
        """The generalised worked example: starlink vs fiber, by metric."""
        comparison = timed(benchmark, lambda: service.compare(
            "starlink", "fiber", service="teams"
        ))
        emit("u1_comparison", comparison.summary())
        worst = comparison.worst_gap()
        assert worst.effect_size < 0  # starlink trails the fiber control
        assert len(comparison.metrics) == 3

    def test_privacy_floor_respected(self, benchmark, service):
        from repro.errors import PrivacyError

        def run():
            try:
                service.answer(
                    UsaasQuery(network="starlink", min_users=10**9)
                )
            except PrivacyError:
                return True
            return False

        assert timed(benchmark, run)

"""S6 — §6 long-term conditioning as a *dynamic*, end to end.

"long-term conditioning (exposure to network conditions could set
expectations)" — staged as a two-phase natural experiment:

1. **Exposure**: a persistent user population lives through thousands of
   calls on their (heterogeneous) home networks; conditioning evolves
   from experienced quality alone.
2. **Probe**: every user is then subjected to the *same* degraded
   conditions, and their reactions are compared by network history.

The paper's prediction: users whose history was pristine (high evolved
expectations) react more strongly than users hardened by months of bad
calls — and the effect stays smaller than the platform effect.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.io.tables import format_table
from repro.netsim.mitigation import MitigationStack
from repro.netsim.qoe import QoeModel
from repro.netsim.vectorized import mitigate_arrays, qoe_arrays
from repro.rng import derive
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.behavior import BehaviorModel


@pytest.fixture(scope="module")
def evolved_population():
    generator = CallDatasetGenerator(GeneratorConfig(
        n_calls=1200, seed=47, persistent_users=True, population_size=600,
    ))
    generator.generate()
    return generator.population


def _probe_mic_on(user, n_trials=30):
    """Mean Mic On for one user under fixed degraded conditions."""
    stack, qoe = MitigationStack(), QoeModel()
    n = 240
    eff = mitigate_arrays(
        stack,
        np.full(n, 260.0), np.full(n, 0.5),
        np.full(n, 6.0), np.full(n, 3.0),
        0.3,
    )
    quality = qoe_arrays(qoe, eff)
    model = BehaviorModel()
    outcomes = []
    for trial in range(n_trials):
        rng = derive(900 + trial, "s6-probe", user.user_id)
        outcomes.append(model.simulate_session(
            rng, quality, eff, user.platform, 5, user.conditioning
        ).mic_on_frac)
    return float(np.mean(outcomes))


class TestS6:
    def test_bench_s6_natural_experiment(self, benchmark, evolved_population):
        def run():
            users = [u for u in evolved_population if u.n_sessions >= 3]
            qualities = np.array([u.mean_experienced_quality for u in users])
            low_cut, high_cut = np.percentile(qualities, [15, 85])
            hardened = [u for u, q in zip(users, qualities) if q <= low_cut
                        and not u.platform.is_mobile][:50]
            pampered = [u for u, q in zip(users, qualities) if q >= high_cut
                        and not u.platform.is_mobile][:50]
            return (
                float(np.mean([_probe_mic_on(u) for u in hardened])),
                float(np.mean([_probe_mic_on(u) for u in pampered])),
                float(np.mean([u.conditioning for u in hardened])),
                float(np.mean([u.conditioning for u in pampered])),
                len(hardened), len(pampered),
            )

        (hardened_mic, pampered_mic,
         hardened_cond, pampered_cond, n_h, n_p) = timed(benchmark, run)
        emit("s6_conditioning_dynamics", format_table(
            ["cohort (by network history)", "n", "evolved conditioning",
             "Mic On under probe"],
            [
                ["hardened (bad-network past)", n_h, hardened_cond,
                 100 * hardened_mic],
                ["pampered (good-network past)", n_p, pampered_cond,
                 100 * pampered_mic],
            ],
            title="S6 — exposure sets expectations; expectations set "
                  "reactions (same probe conditions for both cohorts)",
        ))
        assert pampered_cond > hardened_cond + 0.05
        assert hardened_mic > pampered_mic  # hardened users react less

    def test_effect_weaker_than_platform(self, benchmark, evolved_population):
        """§6 ordering: conditioning is real but weaker than platform."""
        from repro.telemetry.platforms import PLATFORMS

        def run():
            users = [u for u in evolved_population if u.n_sessions >= 3
                     and not u.platform.is_mobile][:40]
            base = float(np.mean([_probe_mic_on(u) for u in users]))
            # The same users probed as if they joined from Android.
            android = PLATFORMS["android_mobile"]
            originals = [u.platform for u in users]
            for u in users:
                u.platform = android
            swapped = float(np.mean([_probe_mic_on(u) for u in users]))
            for u, platform in zip(users, originals):
                u.platform = platform
            return base, swapped

        base, swapped = timed(benchmark, run)
        platform_effect = abs(base - swapped)
        assert platform_effect > 0.02  # the platform lever is visible

"""F7 — Fig. 7: OCR'd downlink speeds, launches, users, and Pos.

Paper shapes:
* ~1750 screenshots shared across providers; monthly medians are stable
  under 95 %/90 % subsampling;
* speeds rise Jan–Sep '21 (14 launches onto a small base) and decline
  almost steadily Sep '21 – Dec '22 (37 launches vs 90 K → 1 M+ users);
* the Jun–Aug '21 launch gap (+21 K users) shows as a dip;
* Pos broadly follows speed, EXCEPT: Q4 '21 beats spring '21 on speed but
  loses badly on Pos, and Mar–Dec '22 speeds fall while Pos recovers.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.analysis.fulcrum import pos_vs_speed
from repro.io.tables import format_table
from repro.starlink.launches import LAUNCH_CATALOG
from repro.starlink.subscribers import SubscriberModel


@pytest.fixture(scope="module")
def fulcrum(bench_corpus, bench_track, bench_timeline):
    return pos_vs_speed(
        bench_corpus, bench_track.median, scores=bench_timeline.scores
    )


class TestFig7Speeds:
    def test_bench_fig7_series(self, benchmark, bench_track, fulcrum):
        subs = SubscriberModel.reported().monthly()

        def build_rows():
            rows = []
            for month, speed in bench_track.median.items():
                if np.isnan(speed):
                    continue
                pos = fulcrum.pos[month]
                rows.append([
                    f"{month[0]}-{month[1]:02d}",
                    speed,
                    bench_track.subsampled[0.95][month],
                    bench_track.subsampled[0.90][month],
                    "-" if np.isnan(pos) else f"{pos:.2f}",
                    LAUNCH_CATALOG.launches_in(month),
                    subs[month],
                ])
            return rows

        rows = timed(benchmark, build_rows)
        emit("fig7_speeds", format_table(
            ["month", "median dl", "95% sub", "90% sub", "Pos",
             "launches", "users"],
            rows,
            title=(
                "Fig. 7 — monthly median downlink (OCR'd), stability "
                f"subsamples, Pos, launches, users "
                f"({bench_track.n_extracted}/{bench_track.n_shared} "
                f"screenshots extracted)"
            ),
        ))

    def test_report_volume_near_1750(self, benchmark, bench_track):
        n = timed(benchmark, lambda: bench_track.n_shared)
        assert n == pytest.approx(1750, rel=0.2)

    def test_rise_then_decline(self, benchmark, bench_track):
        trends = timed(benchmark, lambda: (
            bench_track.median.slice((2021, 1), (2021, 9)).trend(),
            bench_track.median.slice((2021, 9), (2022, 12)).trend(),
        ))
        assert trends[0] > 0, "speeds should rise Jan-Sep '21"
        assert trends[1] < 0, "speeds should decline Sep '21 - Dec '22"

    def test_subsample_stability(self, benchmark, bench_track):
        deviation = timed(benchmark, bench_track.max_subsample_deviation)
        emit("fig7_stability",
             f"Fig. 7 — max relative deviation of 95%/90% subsample "
             f"medians: {100 * deviation:.1f} % (paper: 'closely follow')")
        assert deviation < 0.15

    def test_provider_agreement(self, benchmark, bench_track):
        """Pooling screenshots 'across test providers' is sound."""
        agreement = timed(benchmark, bench_track.provider_agreement)
        emit("fig7_providers",
             f"Fig. 7 — worst per-provider deviation from the pooled "
             f"monthly median: {100 * agreement:.1f} % across "
             f"{sorted(bench_track.by_provider)}")
        assert agreement < 0.40


class TestFig7Fulcrum:
    def test_pos_broadly_follows_speed(self, benchmark, fulcrum):
        correlation = timed(benchmark, fulcrum.correlation)
        assert correlation > 0.15

    def test_exception_q421_vs_spring21(self, benchmark, fulcrum):
        numbers = timed(benchmark, fulcrum.exception_dec21_vs_apr21)
        emit("fig7_exception", format_table(
            ["window", "median dl", "Pos"],
            [
                ["spring '21 (Mar-May)", numbers["speed_apr21"],
                 numbers["pos_apr21"]],
                ["Q4 '21 (Oct-Dec)", numbers["speed_dec21"],
                 numbers["pos_dec21"]],
            ],
            title="Fig. 7 'wheel of time' #1 — higher speed, lower Pos "
                  "(conditioning from the Sep '21 era)",
        ))
        assert numbers["speed_dec21"] > numbers["speed_apr21"]
        assert numbers["pos_dec21"] < numbers["pos_apr21"] - 0.05

    def test_inversion_2022(self, benchmark, fulcrum):
        trends = timed(benchmark, fulcrum.inversion_2022)
        emit(
            "fig7_inversion",
            "Fig. 7 'wheel of time' #2 — Mar-Dec '22 trends\n"
            f"  speed: {trends['speed_trend']:+.3f} Mbps/month (falling)\n"
            f"  Pos  : {trends['pos_trend']:+.4f} /month (recovering)",
        )
        assert trends["speed_trend"] < 0
        assert trends["pos_trend"] > 0

    def test_ablation_cohort_conditioning(self, benchmark):
        """DESIGN.md ablation: replace the adoption-weighted (cohort)
        conditioning with a single shared expectation track.  The 2022
        Pos recovery should weaken substantially — new adopters, whose
        bars were set on arrival, are what pull sentiment back up while
        speeds keep falling."""
        from repro.analysis.fulcrum import pos_vs_speed
        from repro.analysis.sentiment_timeline import sentiment_timeline
        from repro.analysis.speed_tracker import track_speeds
        from repro.social import CorpusConfig, CorpusGenerator

        def run():
            trends = {}
            for mode in ("cohort", "single"):
                corpus = CorpusGenerator(CorpusConfig(
                    seed=7, author_pool_size=1200, conditioning_mode=mode,
                )).generate()
                timeline = sentiment_timeline(corpus)
                track = track_speeds(corpus)
                fulcrum = pos_vs_speed(
                    corpus, track.median, scores=timeline.scores
                )
                trends[mode] = fulcrum.inversion_2022()["pos_trend"]
            return trends

        trends = timed(benchmark, run)
        emit(
            "fig7_ablation_conditioning",
            "Fig. 7 ablation — cohort vs single-track conditioning\n"
            f"  Pos trend Mar-Dec '22, cohort model: "
            f"{trends['cohort']:+.4f}/month\n"
            f"  Pos trend Mar-Dec '22, single track: "
            f"{trends['single']:+.4f}/month\n"
            "  (adoption-weighted expectations are what produce the "
            "paper's 2022 sentiment recovery)",
        )
        assert trends["cohort"] > trends["single"] + 0.005

    def test_jun_aug21_dip_annotation(self, benchmark, bench_track):
        """+21 K users, zero launches → the dip the paper annotates."""
        growth = SubscriberModel.reported().growth((2021, 6), (2021, 8))
        launches = LAUNCH_CATALOG.launches_between((2021, 6), (2021, 8))
        values = timed(benchmark, lambda: (
            bench_track.median[(2021, 6)], bench_track.median[(2021, 8)]
        ))
        emit(
            "fig7_dip",
            "Fig. 7 dip — Jun-Aug '21\n"
            f"  new users: {growth} (paper: ~21K), launches: {launches}\n"
            f"  median dl: {values[0]:.1f} -> {values[1]:.1f} Mbps",
        )
        assert launches == 0
        assert growth == pytest.approx(21_000, abs=2_000)

"""F4 — Fig. 4: user engagement correlates with explicit MOS.

Paper shape: MOS rises with normalized engagement for all three metrics;
Presence shows the strongest correlation.
"""

import numpy as np
import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.engagement.mos_link import mos_by_engagement
from repro.io.tables import format_table


class TestFig4:
    def test_bench_fig4_curves(self, benchmark, observational_dataset):
        result = timed(benchmark, lambda: mos_by_engagement(
            observational_dataset.participants()
        ))
        rows = []
        for name, curve in result.curves.items():
            for center, mos, count in curve.as_rows():
                if count >= 5 and not np.isnan(mos):
                    rows.append([name, center, mos, count])
        table = format_table(
            ["engagement metric", "normalized %", "MOS", "n"],
            rows,
            title=(
                "Fig. 4 — MOS vs normalized engagement "
                f"(n_rated={result.n_rated}); spearman: "
                + ", ".join(
                    f"{k}={v:.2f}" for k, v in result.correlations.items()
                )
            ),
        )
        emit("fig4_mos", table)

    def test_all_metrics_positively_correlated(self, benchmark,
                                               observational_dataset):
        result = timed(benchmark, lambda: mos_by_engagement(
            observational_dataset.participants()
        ))
        for name, r in result.correlations.items():
            assert r > 0.05, f"{name} correlation {r:.2f}"

    def test_presence_strongest(self, benchmark, observational_dataset):
        result = timed(benchmark, lambda: mos_by_engagement(
            observational_dataset.participants()
        ))
        assert result.strongest_metric() == "presence_pct"

    def test_mos_rises_along_presence_deciles(self, benchmark,
                                              observational_dataset):
        result = timed(benchmark, lambda: mos_by_engagement(
            observational_dataset.participants()
        ))
        curve = result.curves["presence_pct"]
        finite = curve.stat[~np.isnan(curve.stat)]
        assert len(finite) >= 3
        assert finite[-1] > finite[0]

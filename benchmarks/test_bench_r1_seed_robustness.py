"""R1 — seed robustness: the reproduced shapes are not seed artefacts.

Every headline shape is re-checked on corpora/datasets generated from
seeds the calibration never saw.  A reproduction whose findings flip
with the random seed would be curve-fitting, not reproduction.
"""

import datetime as dt

import numpy as np
import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.analysis import pos_vs_speed, sentiment_timeline, track_speeds
from repro.io.tables import format_table
from repro.social import CorpusConfig, CorpusGenerator

FRESH_SEEDS = (101, 202)
PAPER_PEAKS = {
    dt.date(2021, 2, 9),
    dt.date(2021, 11, 24),
    dt.date(2022, 4, 22),
}


@pytest.fixture(scope="module")
def fresh_runs():
    runs = {}
    for seed in FRESH_SEEDS:
        corpus = CorpusGenerator(
            CorpusConfig(seed=seed, author_pool_size=1500)
        ).generate()
        timeline = sentiment_timeline(corpus)
        track = track_speeds(corpus, seed=seed)
        fulcrum = pos_vs_speed(corpus, track.median, scores=timeline.scores)
        runs[seed] = (corpus, timeline, track, fulcrum)
    return runs


class TestSeedRobustness:
    def test_bench_r1_summary(self, benchmark, fresh_runs):
        def build_rows():
            rows = []
            for seed, (corpus, timeline, track, fulcrum) in fresh_runs.items():
                peaks = {d for d, _ in timeline.top_peaks(3)}
                exc = fulcrum.exception_dec21_vs_apr21()
                inv = fulcrum.inversion_2022()
                rows.append([
                    seed,
                    "yes" if peaks == PAPER_PEAKS else "NO",
                    track.median.slice((2021, 1), (2021, 9)).trend(),
                    track.median.slice((2021, 9), (2022, 12)).trend(),
                    exc["pos_apr21"] - exc["pos_dec21"],
                    inv["pos_trend"],
                ])
            return rows

        rows = timed(benchmark, build_rows)
        emit("r1_seed_robustness", format_table(
            ["seed", "peaks match", "rise '21", "fall '21-22",
             "Pos gap (spr vs Q4 '21)", "Pos trend '22"],
            rows,
            title="R1 — headline shapes across unseen seeds",
        ))

    def test_peaks_stable(self, benchmark, fresh_runs):
        peak_sets = timed(benchmark, lambda: {
            seed: {d for d, _ in timeline.top_peaks(3)}
            for seed, (_, timeline, _, _) in fresh_runs.items()
        })
        for seed, peaks in peak_sets.items():
            assert peaks == PAPER_PEAKS, f"seed {seed}: {peaks}"

    def test_speed_shape_stable(self, benchmark, fresh_runs):
        trends = timed(benchmark, lambda: {
            seed: (
                track.median.slice((2021, 1), (2021, 9)).trend(),
                track.median.slice((2021, 9), (2022, 12)).trend(),
            )
            for seed, (_, _, track, _) in fresh_runs.items()
        })
        for seed, (rise, fall) in trends.items():
            assert rise > 0, f"seed {seed}"
            assert fall < 0, f"seed {seed}"

    def test_fulcrum_stable(self, benchmark, fresh_runs):
        results = timed(benchmark, lambda: {
            seed: (
                fulcrum.exception_dec21_vs_apr21(),
                fulcrum.inversion_2022(),
            )
            for seed, (_, _, _, fulcrum) in fresh_runs.items()
        })
        for seed, (exc, inv) in results.items():
            assert exc["speed_dec21"] > exc["speed_apr21"], f"seed {seed}"
            assert exc["pos_dec21"] < exc["pos_apr21"] - 0.05, f"seed {seed}"
            assert inv["speed_trend"] < 0, f"seed {seed}"
            assert inv["pos_trend"] > 0, f"seed {seed}"

    def test_volume_calibration_stable(self, benchmark, fresh_runs):
        stats = timed(benchmark, lambda: {
            seed: corpus.weekly_stats()["posts_per_week"]
            for seed, (corpus, _, _, _) in fresh_runs.items()
        })
        for seed, posts_per_week in stats.items():
            assert posts_per_week == pytest.approx(372, rel=0.2), f"seed {seed}"

"""F2 — Fig. 2: compounding impact of latency × loss on Presence.

Paper shape: Presence dips by as much as ~50 % for the worst
(latency, loss) combinations relative to the best combination, and the
joint effect exceeds either individual effect.
"""

import itertools

import numpy as np
import pytest

from benchmarks.conftest import SWEEP_BASE, emit
from benchmarks.util import timed
from repro.engagement.compound import compound_presence_grid
from repro.io.tables import format_table
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.generator import sweep_value_of

LATENCIES = [15.0, 150.0, 290.0]
LOSSES = [0.001, 0.015, 0.035]


@pytest.fixture(scope="module")
def joint_pool():
    """Focal participants across the joint (latency, loss) grid."""
    from dataclasses import replace

    gen = CallDatasetGenerator(GeneratorConfig(n_calls=0, seed=31))
    pool = []
    for lat, loss in itertools.product(LATENCIES, LOSSES):
        base = replace(SWEEP_BASE, base_latency_ms=lat)
        ds = gen.generate_sweep(base, "loss", [loss], calls_per_value=70)
        for call in ds:
            pool.append(call.participants[0])
    return pool


class TestFig2:
    def test_bench_fig2_grid(self, benchmark, joint_pool):
        grid = timed(benchmark, lambda: compound_presence_grid(
            joint_pool,
            latency_edges=(0, 80, 220, 350),
            loss_edges=(0.0, 0.8, 2.5, 5.0),
            min_cell_count=10,
        ))
        relative = grid.relative()
        rows = []
        for i in range(grid.shape[0]):
            rows.append(
                [f"lat {grid.latency_edges[i]:.0f}-{grid.latency_edges[i+1]:.0f}ms"]
                + [
                    float(relative[i, j]) if not np.isnan(relative[i, j]) else -1.0
                    for j in range(grid.shape[1])
                ]
            )
        headers = ["cell"] + [
            f"loss {grid.loss_edges[j]:.1f}-{grid.loss_edges[j+1]:.1f}%"
            for j in range(grid.shape[1])
        ]
        emit("fig2_compound", format_table(
            headers, rows,
            title="Fig. 2 — Presence as % of best (latency x loss grid); "
                  f"max dip = {grid.max_dip_pct():.1f} % (paper: ~50 %)",
        ))
        assert grid.max_dip_pct() > 30.0

    def test_joint_worse_than_marginals(self, benchmark, joint_pool):
        grid = timed(benchmark, lambda: compound_presence_grid(
            joint_pool,
            latency_edges=(0, 80, 350),
            loss_edges=(0.0, 0.8, 5.0),
            min_cell_count=10,
        ))
        best = grid.stat[0, 0]
        lat_only = grid.stat[1, 0]
        loss_only = grid.stat[0, 1]
        joint = grid.stat[1, 1]
        assert joint < lat_only
        assert joint < loss_only
        # Compounding: the joint dip exceeds the larger single dip.
        assert (best - joint) > max(best - lat_only, best - loss_only) * 1.1

"""S3 — §5's MOS predictor ("omitted for brevity" in the paper).

The USaaS pitch: implicit engagement signals are available for *every*
session, so predicting MOS from engagement + network conditions extends
the sparse explicit metric to full coverage.  The benchmark quantifies
how much predictive power each feature family carries.
"""

import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.engagement.predictor import (
    ALL_FEATURES,
    ENGAGEMENT_FEATURES,
    NETWORK_FEATURES,
    MosPredictor,
    train_test_evaluate,
)
from repro.io.tables import format_table

FEATURE_SETS = {
    "network only": NETWORK_FEATURES,
    "engagement only": ENGAGEMENT_FEATURES,
    "network + engagement": ALL_FEATURES,
}


class TestS3:
    def test_bench_s3_feature_families(self, benchmark, observational_dataset):
        def run():
            return {
                name: train_test_evaluate(
                    observational_dataset.participants(),
                    features=features, seed=7,
                )
                for name, features in FEATURE_SETS.items()
            }

        reports = timed(benchmark, run)
        rows = [
            [name, r.mae, r.rmse, r.correlation, r.n_train, r.n_test]
            for name, r in reports.items()
        ]
        emit("s3_mos_predictor", format_table(
            ["feature set", "MAE", "RMSE", "corr", "n_train", "n_test"],
            rows,
            title="S3 — MOS prediction from engagement + network (§5)",
        ))
        assert reports["network + engagement"].correlation > 0.3

    def test_engagement_adds_signal_over_network(self, benchmark,
                                                 observational_dataset):
        reports = timed(benchmark, lambda: {
            name: train_test_evaluate(
                observational_dataset.participants(), features=f, seed=7
            )
            for name, f in FEATURE_SETS.items()
        })
        assert (
            reports["network + engagement"].correlation
            >= reports["network only"].correlation - 0.02
        )

    def test_feature_importances_sensible(self, benchmark,
                                          observational_dataset):
        rated = observational_dataset.rated_participants()
        model = timed(benchmark, lambda: MosPredictor().fit(rated))
        weights = model.weights()
        emit("s3_feature_weights", format_table(
            ["feature", "standardised weight"],
            sorted(weights.items(), key=lambda kv: -abs(kv[1])),
            title="S3 — predictor feature weights",
        ))
        # Presence (the strongest MOS correlate, Fig. 4) carries weight.
        assert weights["presence_pct"] > 0

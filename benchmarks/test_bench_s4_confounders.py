"""S4 — §6 confounders: platform, meeting size, long-term conditioning.

Paper claims: platform has a visible effect (Fig. 3); meeting size and
long-term conditioning have *relatively weaker* effects on user actions.
Also benchmarks the DESIGN.md ablation of the Presence baseline (median
vs max participant duration) — the paper argues median is robust to
stragglers.
"""

import numpy as np
import pytest

from benchmarks.conftest import SWEEP_BASE, emit
from benchmarks.util import timed
from repro.io.tables import format_table
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.generator import sweep_value_of


@pytest.fixture(scope="module")
def degraded_pool(sweep_generator):
    """Focal sessions on one degraded profile: all variance left is
    confounders (platform / meeting size / conditioning) plus noise."""
    ds = sweep_generator.generate_sweep(
        SWEEP_BASE, "latency", [250.0], calls_per_value=500
    )
    return [c.participants[0] for c in ds], {
        c.participants[0].user_id: c.size for c in ds
    }


@pytest.fixture(scope="module")
def degraded_single_platform_pool(sweep_generator):
    """Same, but platform pinned — isolates the (weak) conditioning
    effect from the (strong) platform effect."""
    ds = sweep_generator.generate_sweep(
        SWEEP_BASE, "latency", [250.0], calls_per_value=900,
        platform_key="windows_pc",
    )
    return [c.participants[0] for c in ds]


def _effect(values_by_group):
    """Spread of group means relative to the overall mean (%, 0-100)."""
    means = [np.mean(v) for v in values_by_group if len(v) >= 20]
    overall = np.mean([x for v in values_by_group for x in v])
    if overall == 0 or len(means) < 2:
        return 0.0
    return 100.0 * (max(means) - min(means)) / overall


class TestS4Confounders:
    def test_bench_s4_effect_sizes(self, benchmark, degraded_pool):
        pool, sizes = degraded_pool

        def run():
            by_platform = {}
            for p in pool:
                by_platform.setdefault(p.platform, []).append(p.mic_on_pct)
            platform_effect = _effect(list(by_platform.values()))

            small = [p.mic_on_pct for p in pool if sizes[p.user_id] <= 4]
            large = [p.mic_on_pct for p in pool if sizes[p.user_id] >= 8]
            size_effect = _effect([small, large])

            hardened = [p.mic_on_pct for p in pool if p.conditioning < 0.4]
            sensitive = [p.mic_on_pct for p in pool if p.conditioning > 0.8]
            conditioning_effect = _effect([hardened, sensitive])
            return platform_effect, size_effect, conditioning_effect

        platform_effect, size_effect, conditioning_effect = timed(benchmark, run)
        emit("s4_confounders", format_table(
            ["confounder", "Mic On effect size %"],
            [
                ["platform", platform_effect],
                ["meeting size (<=4 vs >=8)", size_effect],
                ["conditioning (hardened vs sensitive)", conditioning_effect],
            ],
            title="S4 — confounder effect sizes under degraded latency "
                  "(paper: platform strong; size & conditioning weaker)",
        ))
        assert platform_effect > 0
        assert conditioning_effect < platform_effect

    def test_conditioning_direction(self, benchmark,
                                    degraded_single_platform_pool):
        """Hardened (low-expectation) users mute less under degradation.

        The effect is deliberately small (§6 calls it weak), so it is
        measured on a platform-pinned pool — mixing platforms buries a
        ~2-point conditioning effect under 10-point platform baselines."""
        pool = degraded_single_platform_pool
        means = timed(benchmark, lambda: (
            np.mean([p.mic_on_pct for p in pool if p.conditioning < 0.45]),
            np.mean([p.mic_on_pct for p in pool if p.conditioning > 0.85]),
        ))
        hardened, sensitive = means
        assert hardened > sensitive


class TestS4PresenceBaseline:
    def test_ablation_median_vs_max_baseline(self, benchmark,
                                             observational_dataset):
        """The paper's median-duration baseline is robust to stragglers;
        a max-duration baseline deflates everyone's Presence whenever one
        participant lingers after the meeting."""
        def run():
            median_based = []
            max_based = []
            for call in observational_dataset:
                durations = np.array(
                    [p.session_duration_s for p in call.participants]
                )
                if len(durations) < 3:
                    continue
                med, mx = np.median(durations), durations.max()
                median_based.extend(np.minimum(100, 100 * durations / med))
                max_based.extend(np.minimum(100, 100 * durations / mx))
            return float(np.mean(median_based)), float(np.mean(max_based))

        med_mean, max_mean = timed(benchmark, run)
        emit(
            "s4_ablation_presence_baseline",
            "S4 ablation — Presence baseline choice\n"
            f"  median-duration baseline: mean presence {med_mean:5.1f}\n"
            f"  max-duration baseline   : mean presence {max_mean:5.1f}\n"
            "  (max baseline deflates everyone when one straggler lingers)",
        )
        assert max_mean < med_mean

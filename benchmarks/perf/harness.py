"""Perf timing suite: cold/warm generation, throughput, parallel speedup.

The suite measures the three levers this repo pulls for scale:

* **cold vs warm** — full simulation against a content-addressed
  cache hit for both data factories;
* **vectorized generation** — the block engines
  (:mod:`repro.telemetry.vectorized`, :mod:`repro.social.vectorized`)
  against the record-at-a-time factories, on the same serial config.
  Each engine is timed immediately after its record cold run (same
  load window), with prior phases' survivors frozen out of the GC
  generations and best-of-two on the sub-second vec side (see
  ``_timed_vec``).  Row counts are asserted equal (daily corpus
  volumes and call widths are draw-identical across engines) before
  the speedup is recorded; the regression gate enforces a 5x floor on
  both speedups at full scale;
* **sentiment throughput** — per-text scoring against the batch
  (memoised) path, in posts/sec over a generated corpus;
* **parallel speedup** — serial against ``workers=N`` sharded
  generation (byte-identical output, so the comparison is honest).
  When the min-work heuristic collapses a run to one shard the
  executor reports ``auto-serial`` and the speedup is 1.0 by
  definition — it ran the identical serial code path;
* **analysis phase** — the columnar read paths
  (:mod:`repro.perf.columnar`) against the record-at-a-time reference
  implementations: column-block build cost, the single-pass
  :func:`~repro.engagement.curve_matrix` against per-curve
  :func:`~repro.engagement.engagement_curve` loops, bulk signal
  export, and the shared-sentiment-block timeline reuse.  Each
  speedup is only recorded after asserting the outputs are equal;
* **serving phase** — a deterministic overload soak
  (:mod:`repro.serving.soak`) at 5x capacity on a ``ManualClock``:
  shed rate and p50/p99 *admitted* latency are simulated-clock
  quantities derived purely from the seed, so they are byte-stable
  across hosts and any drift is a real behaviour change, not noise.
  The wall-clock cost of running the soak is recorded separately;
* **cluster phase** — the same discipline against a 3-replica
  :class:`~repro.serving.cluster.UsaasCluster` with one replica
  crashing mid-spike: the recorded shed rate and p50/p99 admitted
  latency are measured *under replica loss* (failover, ring
  rebalance, queue loss), again purely seed-derived and guarded by
  the regression gate;
* **streaming phase** — the watermark/checkpoint ingestion pipeline
  (:mod:`repro.streaming`) under seeded arrival chaos: wall-clock
  throughput in deliveries/sec, the *simulated-time* latency from an
  injected degradation to its experience change point (seed-derived,
  byte-stable, regression-guarded), and the incremental
  sliding-window operator against a stateless consumer that recomputes
  :func:`~repro.streaming.batch_window_aggregates` from the full
  prefix at every slide boundary — outputs asserted equal before the
  speedup is recorded;
* **prediction phase** — the columnar MOS predictor
  (:mod:`repro.prediction`) against the record-at-a-time
  :class:`~repro.engagement.predictor.MosPredictor` reference on a
  rating-rich replay of the call workload: training cost, batched
  inference speedup and rows/sec (weights and predictions asserted
  byte-identical first; the gate enforces a 20x speedup and 100k
  rows/sec floor at full scale), MAE/bias against the simulator's
  experienced-QoE ground truth (asserted no worse than the E-model
  prior), and an over-capacity coalesced ``predict_mos`` soak on a
  ``ManualClock`` whose p99 latency is seed-derived, byte-stable and
  regression-guarded;
* **integrity phase** — the trust-weighted robust aggregation path
  (:mod:`repro.integrity`) on a seeded fraud-contaminated replay: the
  naive columnar mean against the full score-raters -> weight ->
  trimmed-mean pipeline (overhead ratio and rows/sec, floored by the
  gate at full scale), plus the *simulated-time* latency from the
  start of a constant-value flood to the online trust gate's first
  quarantine (seed-derived, byte-stable, regression-guarded).

Results append to a machine-readable trajectory file
(``BENCH_perf.json`` at the repo root) so subsequent PRs can show
deltas; ``tools/check_bench_regression.py`` compares the last two
entries and fails on a >30 % cold-path regression.

Run standalone::

    PYTHONPATH=src python -m benchmarks.perf.harness --out BENCH_perf.json
    PYTHONPATH=src python -m benchmarks.perf.harness --scale smoke --out /tmp/b.json
"""

from __future__ import annotations

import argparse
import datetime as dt
import gc
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parents[2]
DEFAULT_TRAJECTORY = REPO_ROOT / "BENCH_perf.json"
TRAJECTORY_SCHEMA = 1


@dataclass(frozen=True)
class PerfScale:
    """Workload sizes for one harness run."""

    name: str
    n_calls: int
    corpus_start: dt.date
    corpus_end: dt.date
    author_pool_size: int
    workers: int
    seed: int = 20231128
    soak_duration_s: float = 4.0

    @classmethod
    def full(cls) -> "PerfScale":
        """The committed-benchmark scale (minutes, not seconds)."""
        return cls(
            name="full",
            n_calls=300,
            corpus_start=dt.date(2022, 1, 1),
            corpus_end=dt.date(2022, 12, 31),
            author_pool_size=1500,
            workers=2,
            soak_duration_s=20.0,
        )

    @classmethod
    def smoke(cls) -> "PerfScale":
        """A seconds-scale run for CI smoke tests."""
        return cls(
            name="smoke",
            n_calls=12,
            corpus_start=dt.date(2022, 3, 1),
            corpus_end=dt.date(2022, 3, 21),
            author_pool_size=120,
            workers=2,
            soak_duration_s=4.0,
        )


def _timed(fn: Callable[[], Any]) -> Dict[str, Any]:
    start = time.perf_counter()
    value = fn()
    return {"seconds": time.perf_counter() - start, "value": value}


def _timed_vec(fn: Callable[[], Any]) -> Dict[str, Any]:
    """Time a vectorized engine fairly against its record counterpart.

    The record cold run executes on whatever heap the suite has built
    up so far; a collect + freeze moves those survivors out of the
    collector's generations so the timed region is not billed for
    full-GC passes over *earlier phases'* objects (with the full-scale
    corpus alive, those passes otherwise triple the measured time).
    The engine runs twice and the best time is kept: the vec side is
    sub-second, so the repeat is cheap insurance against scheduler
    noise that the multi-second record run naturally averages over.
    """
    gc.collect()
    gc.freeze()
    try:
        first = _timed(fn)
        second = _timed(fn)
    finally:
        gc.unfreeze()
    best = first if first["seconds"] <= second["seconds"] else second
    return best


def run_perf_suite(
    scale: PerfScale,
    cache_root: Path,
) -> Dict[str, Any]:
    """Run every measurement once and return the results dict.

    ``cache_root`` should be empty (or absent) so the first generation
    is genuinely cold; the warm numbers then measure a real cache hit.
    """
    from repro.nlp.sentiment import SentimentAnalyzer
    from repro.perf import ArtifactCache
    from repro.social import CorpusConfig, CorpusGenerator
    from repro.telemetry import CallDatasetGenerator, GeneratorConfig

    cache = ArtifactCache(cache_root)
    results: Dict[str, Any] = {}

    # --- call dataset: cold (serial), parallel, warm --------------------
    calls_config = GeneratorConfig(n_calls=scale.n_calls, seed=scale.seed)
    cold = _timed(lambda: CallDatasetGenerator(calls_config).generate())
    calls_dataset = cold["value"]
    results["calls_cold_s"] = cold["seconds"]
    results["calls_n"] = len(calls_dataset)

    # --- vectorized calls: block engine vs the record path ---------------
    # Timed back-to-back with the cold run (same load window, similar
    # heap) so the speedup compares like with like.  Import first so
    # module import cost is not billed (the engines defer scipy to the
    # first simulate call, so warm it explicitly too).
    import scipy.signal  # noqa: F401
    import scipy.special  # noqa: F401

    import repro.telemetry.vectorized  # noqa: F401

    vec_calls = _timed_vec(
        lambda: CallDatasetGenerator(calls_config).generate_columns()
    )
    calls_cols = vec_calls["value"]
    if len(calls_cols) != calls_dataset.n_participants:
        raise AssertionError(
            f"vectorized calls produced {len(calls_cols)} rows; record "
            f"path produced {calls_dataset.n_participants} participants"
        )
    results["calls_vec_s"] = vec_calls["seconds"]
    results["calls_vec_rows"] = len(calls_cols)
    results["calls_vec_speedup"] = results["calls_cold_s"] / max(
        1e-9, vec_calls["seconds"]
    )
    # Free the block: later phases' timings predate the vec phase and
    # must not inherit its heap.
    del calls_cols, vec_calls

    par_config = GeneratorConfig(
        n_calls=scale.n_calls, seed=scale.seed, workers=scale.workers
    )
    par_gen = CallDatasetGenerator(par_config)
    par = _timed(par_gen.generate)
    results["calls_parallel_s"] = par["seconds"]
    results["calls_parallel_workers"] = scale.workers
    results["calls_parallel_mode"] = (
        par_gen.last_execution.mode if par_gen.last_execution else "serial"
    )
    results["calls_parallel_speedup"] = cold["seconds"] / max(
        1e-9, par["seconds"]
    )

    prime = _timed(
        lambda: CallDatasetGenerator(calls_config).generate(cache=cache)
    )
    results["calls_prime_s"] = prime["seconds"]  # miss: build + persist
    warm = _timed(
        lambda: CallDatasetGenerator(calls_config).generate(cache=cache)
    )
    results["calls_warm_s"] = warm["seconds"]
    results["calls_warm_speedup"] = cold["seconds"] / max(1e-9, warm["seconds"])

    # --- corpus: cold (serial), parallel, warm --------------------------
    corpus_config = CorpusConfig(
        seed=scale.seed,
        span_start=scale.corpus_start,
        span_end=scale.corpus_end,
        author_pool_size=scale.author_pool_size,
    )
    cold = _timed(lambda: CorpusGenerator(corpus_config).generate())
    corpus = cold["value"]
    results["corpus_cold_s"] = cold["seconds"]
    results["corpus_n_posts"] = len(corpus)

    # --- vectorized corpus: block engine vs the record path --------------
    import repro.social.vectorized  # noqa: F401

    vec_corpus = _timed_vec(
        lambda: CorpusGenerator(corpus_config).generate_columns()
    )
    corpus_cols = vec_corpus["value"]
    if len(corpus_cols) != len(corpus):
        # Daily post counts are draw-identical between the two engines,
        # so the totals must agree exactly.
        raise AssertionError(
            f"vectorized corpus produced {len(corpus_cols)} rows; record "
            f"path produced {len(corpus)} posts"
        )
    results["corpus_vec_s"] = vec_corpus["seconds"]
    results["corpus_vec_rows"] = len(corpus_cols)
    results["corpus_vec_speedup"] = results["corpus_cold_s"] / max(
        1e-9, vec_corpus["seconds"]
    )
    del corpus_cols, vec_corpus  # see the calls phase note

    par_corpus_config = CorpusConfig(
        seed=scale.seed,
        span_start=scale.corpus_start,
        span_end=scale.corpus_end,
        author_pool_size=scale.author_pool_size,
        workers=scale.workers,
    )
    par_corpus_gen = CorpusGenerator(par_corpus_config)
    par = _timed(par_corpus_gen.generate)
    results["corpus_parallel_s"] = par["seconds"]
    corpus_mode = (
        par_corpus_gen.last_execution.mode
        if par_corpus_gen.last_execution
        else "serial"
    )
    results["corpus_parallel_mode"] = corpus_mode
    if corpus_mode == "auto-serial":
        # The min-work heuristic decided the span is too small to shard
        # and ran the identical serial code path; the honest speedup is
        # 1.0 by definition (raw seconds stay recorded above).
        results["corpus_parallel_speedup"] = 1.0
    else:
        results["corpus_parallel_speedup"] = cold["seconds"] / max(
            1e-9, par["seconds"]
        )

    prime = _timed(lambda: CorpusGenerator(corpus_config).generate(cache=cache))
    results["corpus_prime_s"] = prime["seconds"]
    warm = _timed(lambda: CorpusGenerator(corpus_config).generate(cache=cache))
    results["corpus_warm_s"] = warm["seconds"]
    results["corpus_warm_speedup"] = cold["seconds"] / max(
        1e-9, warm["seconds"]
    )

    # --- sentiment throughput: per-text vs batch ------------------------
    texts = [post.full_text for post in corpus]
    analyzer = SentimentAnalyzer()
    per_text = _timed(lambda: [analyzer.score(t) for t in texts])
    batch = _timed(lambda: analyzer.score_many(texts))
    if per_text["value"] != batch["value"]:
        raise AssertionError("batch sentiment diverged from per-text scoring")
    results["sentiment_n_texts"] = len(texts)
    results["sentiment_per_text_s"] = per_text["seconds"]
    results["sentiment_batch_s"] = batch["seconds"]
    results["sentiment_per_text_pps"] = len(texts) / max(
        1e-9, per_text["seconds"]
    )
    results["sentiment_batch_pps"] = len(texts) / max(1e-9, batch["seconds"])
    results["sentiment_batch_speedup"] = per_text["seconds"] / max(
        1e-9, batch["seconds"]
    )

    # --- analysis phase: columnar read paths vs record paths ------------
    from repro.analysis.sentiment_timeline import sentiment_timeline
    from repro.core.usaas import telemetry_signals, telemetry_signals_records
    from repro.engagement import (
        DEFAULT_EDGES,
        control_windows_except,
        curve_matrix,
        engagement_curve,
    )
    from repro.perf.columnar import participant_columns
    from repro.telemetry.schema import ENGAGEMENT_METRICS

    build = _timed(lambda: participant_columns(calls_dataset))
    cols = build["value"]
    results["analysis_columns_build_s"] = build["seconds"]
    results["analysis_participants_n"] = len(cols)

    participants = [p for call in calls_dataset for p in call.participants]
    windows = {m: control_windows_except(m) for m in DEFAULT_EDGES}

    def record_curves() -> Dict[str, Dict[str, Any]]:
        return {
            nm: {
                em: engagement_curve(
                    participants, nm, em, DEFAULT_EDGES[nm],
                    control_windows=windows[nm], min_bin_count=5,
                )
                for em in ENGAGEMENT_METRICS
            }
            for nm in DEFAULT_EDGES
        }

    record = _timed(record_curves)
    results["analysis_curves_record_s"] = record["seconds"]
    matrix = _timed(lambda: curve_matrix(
        cols, dict(DEFAULT_EDGES),
        engagement_metrics=list(ENGAGEMENT_METRICS),
        control_windows=windows, min_bin_count=5,
    ))
    results["analysis_curve_matrix_s"] = matrix["seconds"]
    for nm in DEFAULT_EDGES:
        for em in ENGAGEMENT_METRICS:
            a = record["value"][nm][em]
            b = matrix["value"][nm][em]
            if (a.stat.tobytes() != b.stat.tobytes()
                    or a.counts.tobytes() != b.counts.tobytes()):
                raise AssertionError(
                    f"curve_matrix diverged from engagement_curve "
                    f"for {nm}/{em}"
                )
    results["analysis_curve_matrix_speedup"] = record["seconds"] / max(
        1e-9, matrix["seconds"]
    )

    rec_sig = _timed(
        lambda: telemetry_signals_records(calls_dataset, network="starlink")
    )
    col_sig = _timed(
        lambda: telemetry_signals(calls_dataset, network="starlink")
    )
    if list(rec_sig["value"]) != list(col_sig["value"]):
        raise AssertionError("columnar signal export diverged from records")
    results["analysis_signals_n"] = len(col_sig["value"])
    results["analysis_signals_record_s"] = rec_sig["seconds"]
    results["analysis_signals_columnar_s"] = col_sig["seconds"]
    results["analysis_signals_speedup"] = rec_sig["seconds"] / max(
        1e-9, col_sig["seconds"]
    )

    timeline_cold = _timed(lambda: sentiment_timeline(corpus))
    timeline_warm = _timed(lambda: sentiment_timeline(corpus))
    results["analysis_timeline_cold_s"] = timeline_cold["seconds"]
    results["analysis_timeline_warm_s"] = timeline_warm["seconds"]
    results["analysis_timeline_reuse_speedup"] = timeline_cold[
        "seconds"
    ] / max(1e-9, timeline_warm["seconds"])

    # --- serving phase: deterministic overload soak ---------------------
    from repro.core.usaas import UsaasQuery
    from repro.resilience import FaultPlan, ManualClock
    from repro.resilience.faults import LoadSpikeSpec
    from repro.serving import UsaasServer, run_soak
    from repro.serving.soak import (
        estimated_service_time_s,
        synthetic_soak_service,
    )

    slow_s = 0.05

    def soak_once():
        clock = ManualClock()
        plan = FaultPlan(seed=scale.seed, clock=clock)
        service = synthetic_soak_service(plan, slow_s=slow_s)
        rate = 5.0 / estimated_service_time_s(slow_s)
        arrivals = plan.load_spikes("perf-soak", LoadSpikeSpec(
            rate_per_s=rate,
            duration_s=scale.soak_duration_s,
            priority_mix=(
                ("interactive", 0.6), ("batch", 0.3), ("monitoring", 0.1),
            ),
            deadline_s=1.0,
        ))
        server = UsaasServer(service, max_pending=8, shed_policy="priority")
        query = UsaasQuery(network="starlink", service="teams")
        return run_soak(server, arrivals, query_for=lambda arrival: query)

    soak = _timed(soak_once)
    report = soak["value"]
    if not report.accounted:
        raise AssertionError(
            "soak accounting violated: submitted != sum of terminal states"
        )
    if not report.drain.clean:
        raise AssertionError(
            f"soak drain left work behind: {report.drain.summary()}"
        )
    results["serving_soak_wall_s"] = soak["seconds"]
    results["serving_arrivals_n"] = report.arrivals
    results["serving_served"] = report.served
    results["serving_served_degraded"] = report.served_degraded
    results["serving_shed"] = report.shed
    results["serving_deadline_exceeded"] = report.deadline_exceeded
    results["serving_shed_rate"] = report.shed_rate
    # Simulated-clock latency of *admitted* queries: purely seed-derived,
    # so these two are guarded by the regression gate — any drift is a
    # behaviour change in admission/deadline/shedding, never host noise.
    results["serving_p50_admitted_s"] = report.metrics.p50_latency_s()
    results["serving_p99_admitted_s"] = report.metrics.p99_latency_s()
    results["serving_simulated_s"] = report.final_clock_s
    results["serving_arrivals_per_wall_s"] = report.arrivals / max(
        1e-9, soak["seconds"]
    )

    # --- cluster phase: failover soak under replica loss ----------------
    from repro.resilience import ReplicaFaultSpec
    from repro.serving import run_cluster_soak, synthetic_cluster

    n_replicas = 3

    def cluster_soak_once():
        cluster, cluster_plan = synthetic_cluster(
            seed=scale.seed, n_replicas=n_replicas, slow_s=slow_s,
        )
        rate = 5.0 * n_replicas / estimated_service_time_s(slow_s)
        arrivals = cluster_plan.cluster_load_spikes(
            "perf-cluster-soak",
            LoadSpikeSpec(
                rate_per_s=rate,
                duration_s=scale.soak_duration_s,
                priority_mix=(
                    ("interactive", 0.6), ("batch", 0.3),
                    ("monitoring", 0.1),
                ),
                deadline_s=1.0,
            ),
            tenant_mix=(("alpha", 2.0), ("beta", 1.0)),
        )
        # One replica crashes mid-spike and recovers for the tail, so
        # the recorded p99 is the *failover* p99, not the healthy one.
        events = cluster_plan.replica_faults(
            "perf-cluster-soak",
            ReplicaFaultSpec(
                replica="r1", kind="crash",
                at_s=scale.soak_duration_s * 0.375,
                down_s=scale.soak_duration_s * 0.25,
            ),
        )
        query = UsaasQuery(network="starlink", service="teams")
        return run_cluster_soak(
            cluster, arrivals, events, query_for=lambda arrival: query
        )

    cluster_soak = _timed(cluster_soak_once)
    cluster_report = cluster_soak["value"]
    if not cluster_report.accounted:
        raise AssertionError(
            "cluster soak accounting violated: the cluster-wide ledger "
            "did not close exactly once per query"
        )
    if cluster_report.drain["leftover"]:
        raise AssertionError(
            f"cluster drain left {cluster_report.drain['leftover']} "
            f"queries behind"
        )
    results["cluster_soak_wall_s"] = cluster_soak["seconds"]
    results["cluster_replicas_n"] = n_replicas
    results["cluster_arrivals_n"] = cluster_report.arrivals
    results["cluster_served"] = cluster_report.served
    results["cluster_served_degraded"] = cluster_report.served_degraded
    results["cluster_shed"] = cluster_report.shed
    results["cluster_failed"] = cluster_report.failed
    results["cluster_rebalances"] = cluster_report.metrics.rebalances
    # Seed-derived simulated-clock quantities under replica loss; all
    # three are guarded by the regression gate, so drift means routing /
    # failover / quota behaviour changed, never host noise.
    results["cluster_shed_rate"] = cluster_report.shed_rate
    results["cluster_p50_admitted_s"] = cluster_report.metrics.p50_admitted_s()
    results["cluster_p99_admitted_s"] = cluster_report.metrics.p99_admitted_s()
    results["cluster_simulated_s"] = cluster_report.final_router_clock_s
    results["cluster_arrivals_per_wall_s"] = cluster_report.arrivals / max(
        1e-9, cluster_soak["seconds"]
    )

    # --- streaming phase: ingestion pipeline under arrival chaos --------
    from repro.streaming import (
        SlidingWindowAggregate,
        batch_window_aggregates,
        run_stream_soak,
        synthetic_stream,
    )

    # Floor the span at 300 simulated seconds: shorter streams carry no
    # default degradations, and the detection-latency metric needs one.
    stream_duration_s = max(300.0, scale.soak_duration_s * 15.0)
    stream_rate = 8.0

    stream_soak = _timed(lambda: run_stream_soak(
        seed=scale.seed,
        duration_s=stream_duration_s,
        rate_per_s=stream_rate,
    ))
    stream_report = stream_soak["value"]
    if not stream_report.ledger_closed:
        raise AssertionError(
            "stream soak accounting violated: the exactly-once ledger "
            "did not close"
        )
    if stream_report.blind_rate > 0:
        raise AssertionError(
            f"stream soak detector blind: "
            f"{stream_report.detected}/{len(stream_report.degradations)} "
            f"injected degradations detected"
        )
    results["streaming_soak_wall_s"] = stream_soak["seconds"]
    results["streaming_deliveries_n"] = stream_report.n_deliveries
    results["streaming_records_per_wall_s"] = (
        stream_report.n_deliveries / max(1e-9, stream_soak["seconds"])
    )
    # Simulated-time detection latency: degradation onset to the first
    # in-horizon experience change point.  Purely seed-derived (the
    # soak's blind-rate gate above guarantees every degradation has
    # one), so the regression gate treats it like the serving/cluster
    # percentiles: any drift is a detector behaviour change.
    lags = []
    for spec in stream_report.degradations:
        lags.append(min(
            cp.at_s - spec.at_s
            for cp in stream_report.change_points
            if cp.role == "experience"
            and spec.at_s <= cp.at_s <= spec.at_s + spec.detect_within_s
        ))
    results["streaming_detect_latency_s"] = sum(lags) / len(lags)

    # Incremental sliding window vs a stateless consumer recomputing
    # every complete window from the full prefix at each slide boundary.
    stream_records = synthetic_stream(
        seed=scale.seed,
        duration_s=stream_duration_s,
        rate_per_s=stream_rate,
    )
    window_s, slide_s = 60.0, 10.0
    final_s = stream_records[-1].event_time_s

    def incremental_once():
        op = SlidingWindowAggregate(window_s=window_s, slide_s=slide_s)
        out = op.process(stream_records, final_s)
        out += op.flush(final_s)
        return {(e.metric, e.at_s): (e.value, e.count) for e in out}

    def naive_once():
        out = {}
        boundary = slide_s
        i = 0
        while boundary <= final_s:
            while (
                i < len(stream_records)
                and stream_records[i].event_time_s <= boundary
            ):
                i += 1
            if i:
                out.update(batch_window_aggregates(
                    stream_records[:i], window_s=window_s, slide_s=slide_s,
                ))
            boundary += slide_s
        return out

    incremental = _timed(incremental_once)
    naive = _timed(naive_once)
    oracle = batch_window_aggregates(
        stream_records, window_s=window_s, slide_s=slide_s
    )
    if incremental["value"] != oracle or naive["value"] != oracle:
        raise AssertionError(
            "incremental window aggregation diverged from the batch "
            "recompute oracle"
        )
    results["streaming_windows_n"] = len(oracle)
    results["streaming_incremental_s"] = incremental["seconds"]
    results["streaming_naive_recompute_s"] = naive["seconds"]
    results["streaming_incremental_speedup"] = naive["seconds"] / max(
        1e-9, incremental["seconds"]
    )

    # --- prediction phase: columnar MOS training/inference/serving ------
    import dataclasses

    import numpy as np

    from repro.engagement.predictor import MosPredictor
    from repro.perf.columnar import ParticipantColumns
    from repro.prediction import (
        CoalescerConfig,
        ColumnarMosPredictor,
        emodel_prior_mos,
        evaluate_ground_truth,
        run_prediction_soak,
        synthetic_prediction_server,
    )
    from repro.resilience.faults import Arrival
    from repro.rng import derive
    from repro.telemetry.vectorized import VectorizedCallEngine

    # A rating-rich replay of the call workload: training needs far more
    # rated sessions than the paper's ~0.5 % prompt rate yields.
    rated_config = dataclasses.replace(calls_config, mos_sample_rate=0.5)
    rated_dataset = CallDatasetGenerator(rated_config).generate()
    rated_parts = list(rated_dataset.participants())
    rated_cols = ParticipantColumns.from_dataset(rated_dataset)

    record_model = MosPredictor().fit(rated_parts)
    train = _timed_vec(
        lambda: ColumnarMosPredictor().fit_columns(rated_cols)
    )
    columnar_model = train["value"]
    if any(
        np.float64(record_model.weights()[f]).tobytes()
        != np.float64(columnar_model.weights()[f]).tobytes()
        for f in record_model.weights()
    ):
        raise AssertionError(
            "columnar fit diverged from the record reference weights"
        )
    results["prediction_train_s"] = train["seconds"]
    results["prediction_train_rows"] = len(rated_cols)

    record_infer = _timed(lambda: record_model.predict(rated_parts))
    batch_infer = _timed_vec(
        lambda: columnar_model.predict_columns(rated_cols)
    )
    if record_infer["value"].tobytes() != batch_infer["value"].tobytes():
        raise AssertionError(
            "columnar predictions diverged from the record reference"
        )
    results["prediction_record_infer_s"] = record_infer["seconds"]
    results["prediction_batch_infer_s"] = batch_infer["seconds"]
    results["prediction_batch_speedup"] = record_infer["seconds"] / max(
        1e-9, batch_infer["seconds"]
    )
    results["prediction_rows_per_s"] = len(rated_cols) / max(
        1e-9, batch_infer["seconds"]
    )

    # Accuracy against the simulator's experienced QoE: the rating-
    # trained model must beat the network-only E-model prior, which
    # cannot see user-experience factors like early drops.
    truth_cols, truth = VectorizedCallEngine(
        rated_config
    ).generate_with_ground_truth()
    truth_model = ColumnarMosPredictor().fit_columns(truth_cols)
    report_model = evaluate_ground_truth(
        truth_model.predict_columns(truth_cols), truth, truth_cols.platform
    )
    report_prior = evaluate_ground_truth(
        emodel_prior_mos(truth_cols), truth, truth_cols.platform
    )
    # Smoke scale trains on a few dozen ratings — too few for the
    # model to beat the prior reliably, so the accuracy bar (like the
    # speedup floors) binds only at full scale.
    if scale.name == "full" and report_model.mae > report_prior.mae:
        raise AssertionError(
            f"trained predictor MAE {report_model.mae:.4f} worse than "
            f"the E-model prior's {report_prior.mae:.4f}"
        )
    results["prediction_mae"] = report_model.mae
    results["prediction_bias"] = report_model.bias
    results["prediction_prior_mae"] = report_prior.mae

    # Over-capacity coalesced serving soak on a ManualClock: arrivals,
    # costs and the coalescer all run on simulated time, so the p99 is
    # seed-derived and byte-stable — it joins the regression gate.
    coalescer = CoalescerConfig(max_batch=16, max_delay_s=0.01)

    def prediction_soak_once():
        server, _, engine = synthetic_prediction_server(
            truth_cols, truth_model, seed=scale.seed,
            coalescer=coalescer, max_pending=16,
        )
        batch_cost = engine.cost_model.batch_cost_s(
            coalescer.max_batch * len(truth_cols)
        )
        # 1.5x the one-batch-per-service-time capacity, with a deadline
        # of ten batch costs: enough for coalesced groups to survive
        # the 16-deep queue, tight enough that overload still degrades
        # (E-model fallback) and sheds the rest.
        rate = 1.5 * coalescer.max_batch / batch_cost
        n_queries = max(60, int(50 * scale.soak_duration_s))
        rng = derive(scale.seed, "prediction", "perf-soak")
        at_s = np.cumsum(rng.exponential(1.0 / rate, n_queries))
        arrivals = [
            Arrival(
                at_s=float(t),
                priority="interactive" if i % 8 == 0 else "batch",
                deadline_s=10.0 * batch_cost,
            )
            for i, t in enumerate(at_s)
        ]
        return run_prediction_soak(server, arrivals), batch_cost

    soak_timing = _timed(prediction_soak_once)
    prediction_report, batch_cost = soak_timing["value"]
    if not prediction_report.accounted:
        raise AssertionError(
            "prediction soak accounting violated: submitted != sum of "
            "terminal states"
        )
    if prediction_report.deadline_exceeded:
        raise AssertionError(
            f"{prediction_report.deadline_exceeded} prediction(s) were "
            f"answered past their deadline instead of degrading"
        )
    if prediction_report.max_overrun_s > batch_cost:
        raise AssertionError(
            f"prediction answered {prediction_report.max_overrun_s:.4f}s "
            f"over budget (> one batch cost {batch_cost:.4f}s)"
        )
    results["prediction_soak_wall_s"] = soak_timing["seconds"]
    results["prediction_soak_submitted"] = prediction_report.submitted
    results["prediction_soak_served"] = prediction_report.served
    results["prediction_soak_degraded"] = prediction_report.served_degraded
    results["prediction_soak_shed"] = prediction_report.shed
    results["prediction_soak_mean_coalesced"] = (
        prediction_report.mean_coalesced
    )
    results["prediction_soak_p99_coalesced_s"] = (
        prediction_report.p99_latency_s
    )
    results["prediction_soak_max_overrun_s"] = (
        prediction_report.max_overrun_s
    )

    # --- integrity phase: trust scoring + robust aggregation ------------
    from repro.integrity import (
        OnlineTrustGate,
        rated_weights_columns,
        robust_mos_columns,
        score_raters,
    )
    from repro.resilience.faults import DataFaultSpec, FaultPlan
    from repro.streaming.records import StreamRecord

    # Contaminate the rating-rich replay with a seeded fraud campaign,
    # then time the naive mean against the full trust-weighted robust
    # path (score raters -> weight rated rows -> trimmed mean).  The
    # overhead ratio is the price of integrity on every aggregate.
    injector = FaultPlan(scale.seed).data_faults(
        "perf-integrity", DataFaultSpec(fraud_fraction=0.1, fraud_rating=1)
    )
    tainted = injector.contaminate_calls(rated_dataset)
    tainted_cols = ParticipantColumns.from_dataset(tainted.dataset)

    naive_agg = _timed_vec(
        lambda: robust_mos_columns(tainted_cols, statistic="mean")
    )

    def robust_once() -> float:
        scores = score_raters(tainted.dataset)
        weights = rated_weights_columns(tainted_cols, scores)
        return robust_mos_columns(
            tainted_cols, statistic="trimmed_mean", weights=weights
        )

    robust_agg = _timed_vec(robust_once)
    results["integrity_naive_agg_s"] = naive_agg["seconds"]
    results["integrity_robust_agg_s"] = robust_agg["seconds"]
    results["integrity_agg_overhead"] = robust_agg["seconds"] / max(
        1e-9, naive_agg["seconds"]
    )
    results["integrity_rows_per_s"] = len(tainted_cols) / max(
        1e-9, robust_agg["seconds"]
    )

    # Contamination-detection latency on the *simulated* clock: feed the
    # online gate organic traffic, then a constant-value flood from one
    # key, and report how much event time passes before the first
    # quarantine.  Seed-derived, so byte-stable across hosts — any
    # movement is a gate behaviour change, not noise.
    def detect_once() -> float:
        gate = OnlineTrustGate()
        rng = derive(scale.seed, "integrity", "perf-detect")
        attack_at = 300.0
        t = 0.0
        while t < attack_at:
            t += float(rng.exponential(0.5))
            gate.observe(StreamRecord(
                event_time_s=t,
                source="app",
                metric="rtt_ms",
                value=round(float(rng.normal(50.0, 5.0)), 3),
                key=f"user-{int(rng.integers(0, 40))}",
            ))
        t = attack_at
        while t <= attack_at + 600.0:
            quarantined = gate.observe(StreamRecord(
                event_time_s=t,
                source="bot",
                metric="rtt_ms",
                value=999.0,
                key="flood",
            ))
            if quarantined:
                return t - attack_at
            t += 0.05
        raise AssertionError("trust gate never quarantined the flood")

    results["integrity_detect_latency_s"] = detect_once()

    results["cache_stats"] = cache.stats().summary()
    return results


def make_entry(scale: PerfScale, results: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap raw results in trajectory metadata."""
    return {
        "timestamp_unix": time.time(),
        "timestamp": dt.datetime.now(dt.timezone.utc).isoformat(),
        "scale": scale.name,
        "python": platform.python_version(),
        "workload": {
            "n_calls": scale.n_calls,
            "corpus_start": scale.corpus_start.isoformat(),
            "corpus_end": scale.corpus_end.isoformat(),
            "author_pool_size": scale.author_pool_size,
            "workers": scale.workers,
            "seed": scale.seed,
            "soak_duration_s": scale.soak_duration_s,
        },
        "results": results,
    }


def read_trajectory(path: Path) -> Dict[str, Any]:
    """Load a trajectory file, tolerating absence (fresh repo)."""
    if not Path(path).exists():
        return {"schema": TRAJECTORY_SCHEMA, "runs": []}
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "runs" not in data:
        raise ValueError(f"{path}: not a BENCH_perf trajectory file")
    return data


def append_trajectory(path: Path, entry: Dict[str, Any]) -> Dict[str, Any]:
    """Append one run to the trajectory file (atomically) and return it."""
    from repro.io.jsonl import atomic_writer

    data = read_trajectory(path)
    data["schema"] = TRAJECTORY_SCHEMA
    data["runs"].append(entry)
    with atomic_writer(path) as f:
        f.write(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def format_results(results: Dict[str, Any]) -> str:
    lines = ["perf suite results:"]
    for key in sorted(results):
        value = results[key]
        if isinstance(value, float):
            lines.append(f"  {key:28s} {value:10.4f}")
        else:
            lines.append(f"  {key:28s} {value}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.perf.harness",
        description="Measure cold/warm generation, sentiment throughput "
                    "and parallel speedup; append to the BENCH trajectory.",
    )
    parser.add_argument("--scale", choices=("full", "smoke"), default="full")
    parser.add_argument("--out", default=str(DEFAULT_TRAJECTORY),
                        help="trajectory JSON to append to")
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: a fresh temp dir, "
                             "so cold numbers are honest)")
    args = parser.parse_args(argv)

    scale = PerfScale.full() if args.scale == "full" else PerfScale.smoke()
    if args.cache_dir is None:
        import tempfile

        cache_root = Path(tempfile.mkdtemp(prefix="repro-perf-"))
    else:
        cache_root = Path(args.cache_dir)
    results = run_perf_suite(scale, cache_root)
    print(format_results(results))
    append_trajectory(Path(args.out), make_entry(scale, results))
    print(f"\nappended run to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Performance benchmark harness (cold/warm generation, throughput)."""

"""Perf benchmark suite (opt-in: ``-m perf``).

Runs the full-scale harness, appends to the repo-root trajectory file
and asserts the PR's headline performance contracts:

* a warm (cache-hit) load is at least 5x faster than cold generation;
* the batch sentiment path beats per-text scoring;
* parallel output is not just fast but *correct* (byte-identity is
  covered by tier-1 tests; here we only require it ran);
* the vectorized block engines beat the record-path factories: >= 10x
  on the call dataset, >= 5x on the corpus (same serial configs, row
  counts asserted equal inside the harness);
* the single-pass ``curve_matrix`` beats the per-curve loop by >= 5x;
* the bulk columnar signal export beats the record loop;
* parallel corpus generation is never *slower* than serial — on hosts
  where sharding cannot pay, the min-work heuristic must fall back to
  the serial path (``auto-serial``, speedup 1.0 by definition);
* the serving soak holds its overload contract: a sustained
  5x-capacity spike sheds most load, still serves admitted queries
  inside their deadline, and accounts for every arrival exactly once;
* the cluster soak holds the same contract *under replica loss*: one
  replica crashes mid-spike, the router fails over and rebalances, and
  admitted-latency percentiles stay bounded while the cluster-wide
  ledger closes exactly once per query.

Excluded from tier-1 by default — select with::

    PYTHONPATH=src python -m pytest benchmarks/perf -m perf -q
"""

from __future__ import annotations

import pytest

from benchmarks.perf.harness import (
    DEFAULT_TRAJECTORY,
    PerfScale,
    append_trajectory,
    format_results,
    make_entry,
    run_perf_suite,
)

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def perf_results(tmp_path_factory):
    scale = PerfScale.full()
    cache_root = tmp_path_factory.mktemp("perf-cache")
    results = run_perf_suite(scale, cache_root)
    append_trajectory(DEFAULT_TRAJECTORY, make_entry(scale, results))
    print("\n" + format_results(results))
    return results


class TestPerfContracts:
    def test_warm_calls_at_least_5x_cold(self, perf_results):
        assert perf_results["calls_warm_speedup"] >= 5.0

    def test_warm_corpus_at_least_5x_cold(self, perf_results):
        assert perf_results["corpus_warm_speedup"] >= 5.0

    def test_batch_sentiment_beats_per_text(self, perf_results):
        assert perf_results["sentiment_batch_speedup"] > 1.0

    def test_throughput_reported(self, perf_results):
        assert perf_results["sentiment_batch_pps"] > 0
        assert perf_results["calls_n"] > 0
        assert perf_results["corpus_n_posts"] > 0

    def test_curve_matrix_at_least_5x_per_curve_loop(self, perf_results):
        assert perf_results["analysis_curve_matrix_speedup"] >= 5.0

    def test_columnar_signals_beat_record_loop(self, perf_results):
        assert perf_results["analysis_signals_speedup"] > 1.0

    def test_vectorized_calls_at_least_10x_record(self, perf_results):
        # The PR 7 headline: the block engine replaces ~30 small RNG
        # calls per participant with a handful of array draws per
        # width bucket.  10x leaves ~30% headroom under the measured
        # ~14x, so host noise cannot trip it.
        assert perf_results["calls_vec_speedup"] >= 10.0
        # Row-count equality vs the record dataset is asserted inside
        # the harness before the speedup is recorded.
        assert perf_results["calls_vec_rows"] > 0

    def test_vectorized_corpus_at_least_5x_record(self, perf_results):
        assert perf_results["corpus_vec_speedup"] >= 5.0
        assert perf_results["corpus_vec_rows"] == (
            perf_results["corpus_n_posts"]
        )

    def test_corpus_parallel_never_slower(self, perf_results):
        assert perf_results["corpus_parallel_speedup"] >= 1.0
        assert perf_results["corpus_parallel_mode"] in (
            "pool", "in-process", "auto-serial"
        )

    def test_serving_soak_sheds_under_overload(self, perf_results):
        # At 5x capacity with a bounded queue, most arrivals must shed
        # but the server keeps serving at full throughput.
        assert perf_results["serving_shed_rate"] > 0.5
        assert perf_results["serving_served"] > 0

    def test_serving_admitted_latency_bounded(self, perf_results):
        # Admitted queries finish within ~deadline (1s) + one attempt.
        assert perf_results["serving_p99_admitted_s"] <= 1.2
        assert perf_results["serving_p50_admitted_s"] > 0

    def test_serving_soak_is_simulated(self, perf_results):
        # 20 simulated seconds of overload should cost well under that
        # in wall time — the whole point of the ManualClock soak.
        assert perf_results["serving_simulated_s"] >= (
            perf_results["serving_soak_wall_s"]
        )

    def test_cluster_soak_sheds_but_serves_through_replica_loss(
        self, perf_results
    ):
        # 5x cluster capacity with a mid-spike crash: most load sheds,
        # queued work on the dead replica fails terminally, yet the
        # cluster keeps serving and the ring rebalances out and back.
        assert perf_results["cluster_shed_rate"] > 0.5
        assert perf_results["cluster_served"] > 0
        assert perf_results["cluster_failed"] > 0
        assert perf_results["cluster_rebalances"] >= 2

    def test_cluster_admitted_latency_bounded_under_failover(
        self, perf_results
    ):
        # Failover must not let admitted queries blow their budget:
        # ~deadline (1s) + one attempt, same bound as the single server.
        assert perf_results["cluster_p99_admitted_s"] <= 1.2
        assert perf_results["cluster_p50_admitted_s"] > 0

    def test_cluster_soak_is_simulated(self, perf_results):
        assert perf_results["cluster_simulated_s"] >= (
            perf_results["cluster_soak_wall_s"]
        )

"""Shared benchmark workloads.

Every figure benchmark draws from the same session-scoped artefacts so
the expensive simulations run once.  Each benchmark writes its
paper-vs-measured table to ``benchmarks/output/<id>.txt`` (and prints it,
visible with ``pytest -s``).
"""

from __future__ import annotations

import datetime as dt
from pathlib import Path

import pytest

from repro.analysis import sentiment_timeline, track_speeds
from repro.netsim.link import LinkProfile
from repro.social import CorpusConfig, CorpusGenerator
from repro.telemetry import CallDatasetGenerator, GeneratorConfig

BENCH_SEED = 20231128
OUTPUT_DIR = Path(__file__).parent / "output"
# Benchmark fixtures are served through the content-addressed artifact
# cache: the first session pays the simulation cost, later sessions load
# warm JSONL (generation is deterministic in the config, so this is
# exact, not approximate).  Wipe with:
#   python -m repro.cli cache invalidate --cache-dir benchmarks/.cache
CACHE_DIR = Path(__file__).parent / ".cache"


@pytest.fixture(scope="session")
def bench_cache():
    from repro.perf import ArtifactCache

    return ArtifactCache(CACHE_DIR)

SWEEP_BASE = LinkProfile(
    base_latency_ms=20, loss_rate=0.001, jitter_ms=2.0, bandwidth_mbps=3.5
)


def emit(name: str, text: str) -> None:
    """Print a reproduction table and persist it under benchmarks/output."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")


@pytest.fixture(scope="session")
def observational_dataset(bench_cache):
    """Cohort-style call dataset with oversampled ratings (Figs. 1, 2, 4)."""
    config = GeneratorConfig(
        n_calls=2500, seed=BENCH_SEED, mos_sample_rate=0.2, decorrelate=0.65
    )
    return CallDatasetGenerator(config).generate(cache=bench_cache)


@pytest.fixture(scope="session")
def sweep_generator():
    return CallDatasetGenerator(GeneratorConfig(n_calls=0, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_corpus(bench_cache):
    """The full two-year r/Starlink corpus (Figs. 5–7, S1, S2)."""
    return CorpusGenerator(CorpusConfig(seed=BENCH_SEED)).generate(
        cache=bench_cache
    )


@pytest.fixture(scope="session")
def bench_timeline(bench_corpus):
    return sentiment_timeline(bench_corpus)


@pytest.fixture(scope="session")
def bench_track(bench_corpus):
    return track_speeds(bench_corpus)

"""S1 — §4.1/§4.2 corpus volume statistics.

Paper numbers: 372 posts/week, 8190 upvotes/week, 5702 comments/week on
r/Starlink (average over the span), and ~1750 shared speed-test reports
between Jan '21 and Dec '22.
"""

import pytest

from benchmarks.conftest import emit
from benchmarks.util import timed
from repro.io.tables import format_table

PAPER = {
    "posts_per_week": 372.0,
    "upvotes_per_week": 8190.0,
    "comments_per_week": 5702.0,
}


class TestS1:
    def test_bench_s1_weekly_stats(self, benchmark, bench_corpus):
        stats = timed(benchmark, bench_corpus.weekly_stats)
        rows = [
            [name, PAPER[name], stats[name],
             100 * (stats[name] - PAPER[name]) / PAPER[name]]
            for name in PAPER
        ]
        rows.append([
            "speed-test reports (total)", 1750.0,
            float(len(bench_corpus.speed_shares())),
            100 * (len(bench_corpus.speed_shares()) - 1750) / 1750,
        ])
        emit("s1_corpus_stats", format_table(
            ["statistic", "paper", "measured", "delta %"],
            rows,
            title="S1 — corpus volume calibration (paper §4.1/§4.2)",
        ))
        assert stats["posts_per_week"] == pytest.approx(372, rel=0.15)
        assert stats["upvotes_per_week"] == pytest.approx(8190, rel=0.5)
        assert stats["comments_per_week"] == pytest.approx(5702, rel=0.5)
        assert len(bench_corpus.speed_shares()) == pytest.approx(1750, rel=0.2)

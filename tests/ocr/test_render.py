"""Tests for screenshot rendering."""

import pytest

from repro.errors import ExtractionError
from repro.ocr.render import PlacedToken, Screenshot, render_screenshot
from repro.social.schema import PROVIDERS, SpeedTestShare


def share(provider="ookla", dl=112.4, ul=14.2, lat=38):
    return SpeedTestShare(provider=provider, download_mbps=dl,
                          upload_mbps=ul, latency_ms=lat)


class TestPlacedToken:
    def test_rejects_empty_text(self):
        with pytest.raises(ExtractionError):
            PlacedToken(text="", x=0, y=0)

    def test_rejects_negative_position(self):
        with pytest.raises(ExtractionError):
            PlacedToken(text="x", x=-1, y=0)


class TestRenderScreenshot:
    @pytest.mark.parametrize("provider", PROVIDERS)
    def test_all_providers_render(self, provider):
        shot = render_screenshot(share(provider=provider))
        assert len(shot.tokens) > 5
        joined = " ".join(t.text for t in shot.tokens)
        assert "112.4" in joined or "112.4Mbps" in joined

    def test_integer_values_formatted_without_decimal(self):
        shot = render_screenshot(share(dl=100.0))
        joined = " ".join(t.text for t in shot.tokens)
        assert "100" in joined and "100.0" not in joined

    def test_provider_logos_distinct(self):
        logos = {}
        for provider in PROVIDERS:
            shot = render_screenshot(share(provider=provider))
            logos[provider] = shot.tokens[0].text
        assert len(set(logos.values())) == len(PROVIDERS)

    def test_reading_order_top_to_bottom(self):
        shot = render_screenshot(share())
        ys = [t.y for t in shot.reading_order()]
        assert ys == sorted(ys) or all(
            ys[i] // 8 <= ys[i + 1] // 8 for i in range(len(ys) - 1)
        )

    def test_text_lines_debuggable(self):
        lines = render_screenshot(share()).text_lines()
        assert any("DOWNLOAD" in line for line in lines)

    def test_fast_headline_is_biggest_token(self):
        shot = render_screenshot(share(provider="fast"))
        biggest = max(shot.tokens, key=lambda t: t.size)
        assert biggest.text == "112.4"

"""Tests for the OCR noise model."""

import pytest

from repro.errors import ConfigError
from repro.ocr.noise import CONFUSIONS, NoiseModel
from repro.ocr.render import render_screenshot
from repro.rng import derive
from repro.social.schema import SpeedTestShare


def shot():
    return render_screenshot(
        SpeedTestShare(provider="ookla", download_mbps=105.5,
                       upload_mbps=12.1, latency_ms=38)
    )


class TestNoiseModel:
    def test_clean_is_identity(self, fresh_rng):
        original = shot()
        noisy = NoiseModel.clean().apply(fresh_rng, original)
        assert [t.text for t in noisy.tokens] == [t.text for t in original.tokens]

    def test_harsh_corrupts_something(self):
        rng = derive(61, "noise")
        original = shot()
        noisy = NoiseModel.harsh().apply(rng, original)
        assert [t.text for t in noisy.tokens] != [t.text for t in original.tokens]

    def test_confusions_are_visually_plausible(self):
        for a, b in CONFUSIONS.items():
            assert a != b
            # Confusions must be (at least one-way) reversible pairs.
            assert b in CONFUSIONS or b.upper() in CONFUSIONS or b.lower() in CONFUSIONS

    def test_token_loss_removes_tokens(self):
        rng = derive(62, "noise")
        model = NoiseModel(confusion_rate=0, dropout_rate=0, token_loss_rate=0.5)
        noisy = model.apply(rng, shot())
        assert len(noisy.tokens) < len(shot().tokens)

    def test_positions_preserved(self, fresh_rng):
        model = NoiseModel(confusion_rate=0.5, dropout_rate=0, token_loss_rate=0)
        original = shot()
        noisy = model.apply(fresh_rng, original)
        for a, b in zip(original.tokens, noisy.tokens):
            assert (a.x, a.y, a.size) == (b.x, b.y, b.size)

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigError):
            NoiseModel(confusion_rate=2.0)
        with pytest.raises(ConfigError):
            NoiseModel(small_font_penalty=0.5)

    def test_deterministic_given_stream(self):
        a = NoiseModel.harsh().apply(derive(63, "n"), shot())
        b = NoiseModel.harsh().apply(derive(63, "n"), shot())
        assert [t.text for t in a.tokens] == [t.text for t in b.tokens]

"""Tests for the OCR extraction engine."""

import numpy as np
import pytest

from repro.errors import ExtractionError
from repro.ocr.engine import OcrEngine, _repair_number
from repro.ocr.noise import NoiseModel
from repro.ocr.render import PlacedToken, Screenshot, render_screenshot
from repro.rng import derive
from repro.social.reports import sample_speed_test
from repro.social.schema import PROVIDERS, SpeedTestShare


def share(provider="ookla", dl=112.4, ul=14.2, lat=38):
    return SpeedTestShare(provider=provider, download_mbps=dl,
                          upload_mbps=ul, latency_ms=lat)


class TestRepairNumber:
    @pytest.mark.parametrize("text,value", [
        ("112", 112.0),
        ("112.4", 112.4),
        ("1l2", 112.0),      # l -> 1
        ("1O5", 105.0),      # O -> 0
        ("9B", 98.0),        # B -> 8
        ("12,5", 12.5),      # comma -> point
    ])
    def test_repairs(self, text, value):
        assert _repair_number(text) == value

    @pytest.mark.parametrize("text", ["Mbps", "DOWNLOAD", "", "1.2.3"])
    def test_unrepairable(self, text):
        assert _repair_number(text) is None


class TestCleanExtraction:
    @pytest.mark.parametrize("provider", PROVIDERS)
    def test_exact_on_clean_screenshots(self, provider):
        engine = OcrEngine()
        truth = share(provider=provider)
        report = engine.extract(render_screenshot(truth))
        assert report.provider == provider
        assert report.download_mbps == pytest.approx(truth.download_mbps)
        assert report.upload_mbps == pytest.approx(truth.upload_mbps)
        assert report.latency_ms == pytest.approx(truth.latency_ms)
        assert report.confidence > 0.8

    def test_empty_screenshot_raises(self):
        with pytest.raises(ExtractionError):
            OcrEngine().extract(Screenshot(width=100, height=100, tokens=()))

    def test_no_numbers_raises(self):
        shot = Screenshot(
            width=100, height=100,
            tokens=(PlacedToken("DOWNLOAD", 0, 0), PlacedToken("Mbps", 50, 0)),
        )
        with pytest.raises(ExtractionError):
            OcrEngine().extract(shot)


class TestNoisyExtraction:
    def test_default_noise_mostly_recoverable(self):
        rng = derive(71, "ocr")
        engine, noise = OcrEngine(), NoiseModel()
        recovered = exact = 0
        n = 300
        for _ in range(n):
            truth = sample_speed_test(rng, 70.0)
            noisy = noise.apply(rng, render_screenshot(truth))
            try:
                report = engine.extract(noisy)
            except ExtractionError:
                continue
            recovered += 1
            if report.download_mbps == pytest.approx(truth.download_mbps):
                exact += 1
        assert recovered / n > 0.8
        assert exact / recovered > 0.8

    def test_harsh_noise_degrades_but_does_not_crash(self):
        rng = derive(72, "ocr")
        engine, noise = OcrEngine(), NoiseModel.harsh()
        outcomes = []
        for _ in range(150):
            truth = sample_speed_test(rng, 70.0)
            noisy = noise.apply(rng, render_screenshot(truth))
            try:
                outcomes.append(engine.extract(noisy))
            except ExtractionError:
                outcomes.append(None)
        success = sum(1 for o in outcomes if o is not None)
        assert 0 < success < 150  # some succeed, some legitimately fail

    def test_confidence_lower_with_repairs(self):
        engine = OcrEngine()
        clean_report = engine.extract(render_screenshot(share()))
        corrupted = Screenshot(
            width=360, height=220,
            tokens=tuple(
                PlacedToken(
                    t.text.replace("1", "l"), t.x, t.y, t.size
                )
                for t in render_screenshot(share()).tokens
            ),
        )
        noisy_report = engine.extract(corrupted)
        assert noisy_report.confidence <= clean_report.confidence

    def test_missing_upload_reported_as_none(self):
        base = render_screenshot(share())
        tokens = tuple(
            t for t in base.tokens if t.text not in ("UPLOAD", "14.2")
        )
        report = OcrEngine().extract(
            Screenshot(width=360, height=220, tokens=tokens)
        )
        assert report.download_mbps is not None
        assert report.upload_mbps is None
        assert not report.is_complete

    def test_fast_headline_fallback(self):
        """Fast's download has no label; the big-font fallback finds it."""
        truth = share(provider="fast", dl=95.0)
        base = render_screenshot(truth)
        report = OcrEngine().extract(base)
        assert report.download_mbps == pytest.approx(95.0)

    def test_implausible_values_rejected(self):
        """A 5000 Mbps 'download' must not be taken at face value."""
        tokens = (
            PlacedToken("SPEEDTEST", 120, 20, size=18),
            PlacedToken("DOWNLOAD", 40, 130), PlacedToken("Mbps", 130, 130),
            PlacedToken("5000", 50, 160, size=28),
        )
        with pytest.raises(ExtractionError):
            OcrEngine().extract(Screenshot(width=360, height=220, tokens=tokens))

"""Tests for the cross-signal correlator."""

import datetime as dt

import numpy as np
import pytest

from repro.core.signals import ExplicitSignal, ImplicitSignal, SignalSeries
from repro.core.usaas.correlator import correlate_series
from repro.errors import AnalysisError

START = dt.datetime(2022, 1, 1, 12)


def daily_series(values, metric, explicit=False, start=START):
    ctor = ExplicitSignal if explicit else ImplicitSignal
    return SignalSeries(
        ctor(start + dt.timedelta(days=i), "net", metric, float(v))
        for i, v in enumerate(values)
    )


class TestCorrelateSeries:
    def test_perfect_correlation(self):
        xs = list(range(30))
        a = daily_series(xs, "presence")
        b = daily_series([2 * x for x in xs], "sentiment", explicit=True)
        finding = correlate_series(a, b, "presence", "sentiment")
        assert finding.correlation == pytest.approx(1.0)
        assert finding.best_lag_days == 0
        assert finding.strength == "strong"

    def test_lag_detected(self):
        rng = np.random.default_rng(4)
        xs = rng.normal(size=40)
        a = daily_series(xs, "presence")
        # Explicit feedback shifted 2 days later.
        b = daily_series(xs, "sentiment", explicit=True,
                         start=START + dt.timedelta(days=2))
        finding = correlate_series(a, b, "presence", "sentiment",
                                   max_lag_days=3)
        assert finding.best_lag_days == 2
        assert finding.correlation == pytest.approx(1.0)

    def test_anticorrelation(self):
        xs = list(range(30))
        a = daily_series(xs, "presence")
        b = daily_series([-x for x in xs], "sentiment", explicit=True)
        finding = correlate_series(a, b, "presence", "sentiment")
        assert finding.correlation == pytest.approx(-1.0)

    def test_insufficient_overlap_raises(self):
        a = daily_series([1, 2, 3], "presence")
        b = daily_series([1, 2, 3], "sentiment", explicit=True)
        with pytest.raises(AnalysisError):
            correlate_series(a, b, "presence", "sentiment",
                             min_overlap_days=10)

    def test_missing_metric_raises(self):
        a = daily_series([1, 2], "presence")
        with pytest.raises(AnalysisError):
            correlate_series(a, a, "presence", "nonexistent")

    def test_strength_labels(self):
        xs = list(range(30))
        a = daily_series(xs, "presence")
        rng = np.random.default_rng(5)
        noisy = [x + rng.normal(0, 30) for x in xs]
        b = daily_series(noisy, "sentiment", explicit=True)
        finding = correlate_series(a, b, "presence", "sentiment")
        assert finding.strength in ("negligible", "weak", "moderate", "strong")

    def test_rejects_negative_lag_window(self):
        a = daily_series([1] * 20, "presence")
        with pytest.raises(AnalysisError):
            correlate_series(a, a, "presence", "presence", max_lag_days=-1)

"""Tests for the social-bias corrector."""

import datetime as dt

import pytest

from repro.core.signals import ExplicitSignal, SignalSeries
from repro.core.usaas.bias import BiasCorrector
from repro.errors import ConfigError

TS = dt.datetime(2022, 1, 1, 12)


def signal(user="a", hour=12, weight=1.0, value=0.5):
    return ExplicitSignal(
        TS.replace(hour=hour), "net", "sentiment_polarity", value,
        weight=weight, user=user,
    )


class TestBiasCorrector:
    def test_author_daily_cap(self):
        series = SignalSeries([signal(hour=h) for h in range(10)])
        corrected = BiasCorrector(per_author_daily_cap=3,
                                  weight_cap_quantile=1.0).apply(series)
        assert len(corrected) == 3

    def test_cap_is_per_author(self):
        series = SignalSeries(
            [signal(user="a", hour=h) for h in range(5)]
            + [signal(user="b", hour=h) for h in range(5)]
        )
        corrected = BiasCorrector(per_author_daily_cap=2,
                                  weight_cap_quantile=1.0).apply(series)
        assert len(corrected) == 4

    def test_cap_zero_disables(self):
        series = SignalSeries([signal(hour=h) for h in range(5)])
        corrected = BiasCorrector(per_author_daily_cap=0,
                                  weight_cap_quantile=1.0).apply(series)
        assert len(corrected) == 5

    def test_weight_winsorised(self):
        series = SignalSeries(
            [signal(user=f"u{i}", weight=1.0) for i in range(19)]
            + [signal(user="viral", weight=10_000.0)]
        )
        corrected = BiasCorrector(per_author_daily_cap=0,
                                  weight_cap_quantile=0.9).apply(series)
        max_weight = max(s.weight for s in corrected)
        assert max_weight < 10_000.0

    def test_viral_thread_influence_bounded(self):
        """A single viral negative thread shouldn't flip the mean."""
        series = SignalSeries(
            [signal(user=f"u{i}", value=0.5, weight=2.0) for i in range(20)]
            + [signal(user="viral", value=-1.0, weight=5_000.0)]
        )
        raw_mean = series.weighted_mean()
        corrected = BiasCorrector().apply(series)
        assert corrected.weighted_mean() > raw_mean

    def test_values_untouched(self):
        series = SignalSeries([signal(value=0.42, weight=100.0)])
        corrected = BiasCorrector().apply(series)
        assert list(corrected)[0].value == 0.42

    def test_empty_series(self):
        assert len(BiasCorrector().apply(SignalSeries())) == 0

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            BiasCorrector(per_author_daily_cap=-1)
        with pytest.raises(ConfigError):
            BiasCorrector(weight_cap_quantile=0.0)

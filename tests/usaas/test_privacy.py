"""Tests for PII scrubbing and aggregation floors."""

import datetime as dt

import pytest

from repro.core.signals import ImplicitSignal, SignalSeries
from repro.core.usaas.privacy import PrivacyGuard, is_scrubbed, scrub_author
from repro.errors import PrivacyError

TS = dt.datetime(2022, 1, 1, 12)


def series_with_users(n):
    return SignalSeries(
        ImplicitSignal(TS, "net", "m", 1.0, user=scrub_author(f"user{i}"))
        for i in range(n)
    )


class TestScrubAuthor:
    def test_deterministic(self):
        assert scrub_author("alice") == scrub_author("alice")

    def test_distinct_users_distinct_hashes(self):
        assert scrub_author("alice") != scrub_author("bob")

    def test_not_reversible_looking(self):
        scrubbed = scrub_author("alice")
        assert "alice" not in scrubbed
        assert is_scrubbed(scrubbed)

    def test_rejects_empty(self):
        with pytest.raises(PrivacyError):
            scrub_author("")


class TestPrivacyGuard:
    def test_floor_enforced(self):
        guard = PrivacyGuard(min_users=10)
        with pytest.raises(PrivacyError):
            guard.check(series_with_users(9))
        guard.check(series_with_users(10))  # exactly at the floor is fine

    def test_distinct_users_counted_not_signals(self):
        guard = PrivacyGuard(min_users=2)
        one_user_many_signals = SignalSeries(
            ImplicitSignal(TS, "net", "m", float(i), user=scrub_author("a"))
            for i in range(50)
        )
        with pytest.raises(PrivacyError):
            guard.check(one_user_many_signals)

    def test_assert_scrubbed_catches_raw_ids(self):
        guard = PrivacyGuard()
        raw = SignalSeries([ImplicitSignal(TS, "net", "m", 1.0, user="alice")])
        with pytest.raises(PrivacyError):
            guard.assert_scrubbed(raw)

    def test_assert_scrubbed_passes_clean(self):
        PrivacyGuard().assert_scrubbed(series_with_users(3))

    def test_rejects_bad_floor(self):
        with pytest.raises(PrivacyError):
            PrivacyGuard(min_users=0)

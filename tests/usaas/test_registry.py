"""Tests for the signal-source registry."""

import datetime as dt

import pytest

from repro.core.signals import ImplicitSignal, SignalSeries
from repro.core.usaas.registry import SignalSourceRegistry
from repro.errors import QueryError

TS = dt.datetime(2022, 1, 1)


def make_source(counter):
    def source():
        counter["calls"] += 1
        return SignalSeries([ImplicitSignal(TS, "net", "m", 1.0)])
    return source


class TestRegistry:
    def test_register_and_fetch(self):
        registry = SignalSourceRegistry()
        counter = {"calls": 0}
        registry.register("teams", make_source(counter))
        assert "teams" in registry
        assert len(registry.series("teams")) == 1

    def test_lazy_and_cached(self):
        registry = SignalSourceRegistry()
        counter = {"calls": 0}
        registry.register("teams", make_source(counter))
        assert counter["calls"] == 0  # lazy
        registry.series("teams")
        registry.series("teams")
        assert counter["calls"] == 1  # cached

    def test_duplicate_name_rejected(self):
        registry = SignalSourceRegistry()
        registry.register("x", lambda: SignalSeries())
        with pytest.raises(QueryError):
            registry.register("x", lambda: SignalSeries())

    def test_unknown_source_rejected(self):
        with pytest.raises(QueryError):
            SignalSourceRegistry().series("ghost")

    def test_unregister(self):
        registry = SignalSourceRegistry()
        registry.register("x", lambda: SignalSeries())
        registry.unregister("x")
        assert "x" not in registry
        with pytest.raises(QueryError):
            registry.unregister("x")

    def test_non_callable_rejected(self):
        with pytest.raises(QueryError):
            SignalSourceRegistry().register("x", SignalSeries())

    def test_all_series_sorted(self):
        registry = SignalSourceRegistry()
        registry.register("b", lambda: SignalSeries())
        registry.register("a", lambda: SignalSeries())
        names = [name for name, _ in registry.all_series()]
        assert names == ["a", "b"]

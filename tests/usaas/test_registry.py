"""Tests for the signal-source registry."""

import datetime as dt

import pytest

from repro.core.signals import ImplicitSignal, SignalSeries
from repro.core.usaas.registry import SignalSourceRegistry
from repro.errors import QueryError

TS = dt.datetime(2022, 1, 1)


def make_source(counter):
    def source():
        counter["calls"] += 1
        return SignalSeries([ImplicitSignal(TS, "net", "m", 1.0)])
    return source


class TestRegistry:
    def test_register_and_fetch(self):
        registry = SignalSourceRegistry()
        counter = {"calls": 0}
        registry.register("teams", make_source(counter))
        assert "teams" in registry
        assert len(registry.series("teams")) == 1

    def test_lazy_and_cached(self):
        registry = SignalSourceRegistry()
        counter = {"calls": 0}
        registry.register("teams", make_source(counter))
        assert counter["calls"] == 0  # lazy
        registry.series("teams")
        registry.series("teams")
        assert counter["calls"] == 1  # cached

    def test_duplicate_name_rejected(self):
        registry = SignalSourceRegistry()
        registry.register("x", lambda: SignalSeries())
        with pytest.raises(QueryError):
            registry.register("x", lambda: SignalSeries())

    def test_unknown_source_rejected(self):
        with pytest.raises(QueryError):
            SignalSourceRegistry().series("ghost")

    def test_unregister(self):
        registry = SignalSourceRegistry()
        registry.register("x", lambda: SignalSeries())
        registry.unregister("x")
        assert "x" not in registry
        with pytest.raises(QueryError):
            registry.unregister("x")

    def test_non_callable_rejected(self):
        with pytest.raises(QueryError):
            SignalSourceRegistry().register("x", SignalSeries())

    def test_all_series_sorted(self):
        registry = SignalSourceRegistry()
        registry.register("b", lambda: SignalSeries())
        registry.register("a", lambda: SignalSeries())
        names = [name for name, _ in registry.all_series()]
        assert names == ["a", "b"]


class TestCacheCoherence:
    def _flaky_source(self, fail_first):
        state = {"calls": 0}

        def source():
            state["calls"] += 1
            if state["calls"] <= fail_first:
                raise QueryError("source down")
            return SignalSeries(
                [ImplicitSignal(TS, "net", "m", float(state["calls"]))]
            )

        return source, state

    def test_raising_source_never_populates_cache(self):
        registry = SignalSourceRegistry()
        source, state = self._flaky_source(fail_first=1)
        registry.register("flaky", source)
        with pytest.raises(QueryError):
            registry.series("flaky")
        assert not registry.cached("flaky")
        assert registry.last_good("flaky") is None
        # The next call re-runs the source and caches the good result.
        assert len(registry.series("flaky")) == 1
        assert registry.cached("flaky")

    def test_wrong_type_never_populates_cache(self):
        from repro.errors import SchemaError

        registry = SignalSourceRegistry()
        registry.register("wrong", lambda: [1, 2, 3])
        with pytest.raises(SchemaError):
            registry.series("wrong")
        assert not registry.cached("wrong")

    def test_invalidate_forces_refetch_but_keeps_last_good(self):
        registry = SignalSourceRegistry()
        counter = {"calls": 0}
        registry.register("teams", make_source(counter))
        first = registry.series("teams")
        registry.invalidate("teams")
        assert not registry.cached("teams")
        assert registry.last_good("teams") is first
        registry.series("teams")
        assert counter["calls"] == 2

    def test_invalidate_unknown_rejected(self):
        with pytest.raises(QueryError):
            SignalSourceRegistry().invalidate("ghost")

    def test_refresh_one_source(self):
        registry = SignalSourceRegistry()
        counter = {"calls": 0}
        registry.register("teams", make_source(counter))
        registry.series("teams")
        registry.refresh("teams")
        assert counter["calls"] == 2
        assert registry.cached("teams")

    def test_refresh_all_sources(self):
        registry = SignalSourceRegistry()
        a, b = {"calls": 0}, {"calls": 0}
        registry.register("a", make_source(a))
        registry.register("b", make_source(b))
        registry.refresh()
        assert a["calls"] == 1 and b["calls"] == 1

    def test_failed_refresh_keeps_last_good_available(self):
        registry = SignalSourceRegistry()
        source, state = self._flaky_source(fail_first=0)
        registry.register("flap", source)
        good = registry.series("flap")
        state["calls"] = -10  # make the next calls fail again
        def broken():
            raise QueryError("down again")
        registry._sources["flap"] = broken
        with pytest.raises(QueryError):
            registry.refresh("flap")
        assert not registry.cached("flap")
        assert registry.last_good("flap") is good

    def test_unregister_clears_last_good(self):
        registry = SignalSourceRegistry()
        registry.register("x", lambda: SignalSeries())
        registry.series("x")
        registry.unregister("x")
        assert registry.last_good("x") is None

"""Tests for insights and the summariser."""

import pytest

from repro.core.usaas.insights import Insight, confidence_from
from repro.core.usaas.summarize import summarize_insights
from repro.errors import AnalysisError


def insight(statement="presence tracks sentiment", confidence=0.7,
            kind="correlation"):
    return Insight(kind=kind, statement=statement, confidence=confidence,
                   evidence=(("r", 0.6),))


class TestInsight:
    def test_valid(self):
        i = insight()
        assert i.evidence_dict() == {"r": 0.6}

    def test_rejects_unknown_kind(self):
        with pytest.raises(AnalysisError):
            insight(kind="vibes")

    def test_rejects_bad_confidence(self):
        with pytest.raises(AnalysisError):
            insight(confidence=1.5)

    def test_rejects_empty_statement(self):
        with pytest.raises(AnalysisError):
            insight(statement="")


class TestConfidenceFrom:
    def test_grows_with_samples(self):
        assert confidence_from(1000, 0.5) > confidence_from(10, 0.5)

    def test_grows_with_effect(self):
        assert confidence_from(100, 0.9) > confidence_from(100, 0.1)

    def test_bounded(self):
        assert confidence_from(10**9, 1.0) <= 0.95
        assert confidence_from(0, 0.0) >= 0.2

    def test_rejects_negative_samples(self):
        with pytest.raises(AnalysisError):
            confidence_from(-1, 0.5)


class TestSummarize:
    def test_empty_insights(self):
        text = summarize_insights([], "starlink")
        assert "no findings" in text

    def test_ranked_by_confidence(self):
        insights = [
            insight("weak finding", 0.3),
            insight("strong finding", 0.9),
        ]
        text = summarize_insights(insights, "starlink")
        assert text.index("strong finding") < text.index("weak finding")

    def test_max_items_and_withheld_note(self):
        insights = [insight(f"finding {i}", 0.5) for i in range(8)]
        text = summarize_insights(insights, "starlink", max_items=3)
        assert "+5 lower-confidence" in text
        assert text.count("finding") == 3 + 1  # 3 shown + the note word...

    def test_confidence_words(self):
        text = summarize_insights([insight(confidence=0.9)], "x")
        assert "high-confidence" in text
        text = summarize_insights([insight(confidence=0.3)], "x")
        assert "preliminary" in text

    def test_rejects_bad_max_items(self):
        with pytest.raises(AnalysisError):
            summarize_insights([insight()], "x", max_items=0)

"""UsaasQuery construction-time validation.

Regression coverage for the tz-aware vs tz-naive crash: comparing an
aware ``end`` against a naive ``start`` used to raise ``TypeError``
("can't compare offset-naive and offset-aware datetimes") out of
``__post_init__`` — a stakeholder typo became an unhandled crash
instead of a typed :class:`~repro.errors.QueryError`.
"""

import datetime as dt

import pytest

from repro.core.usaas import UsaasQuery
from repro.errors import QueryError

NAIVE = dt.datetime(2022, 4, 1, 12, 0)
AWARE = dt.datetime(2022, 4, 2, 12, 0, tzinfo=dt.timezone.utc)


class TestTimezoneMixing:
    def test_naive_start_aware_end_is_a_query_error(self):
        with pytest.raises(QueryError, match="tz-aware and a tz-naive"):
            UsaasQuery(network="starlink", start=NAIVE, end=AWARE)

    def test_aware_start_naive_end_is_a_query_error(self):
        with pytest.raises(QueryError, match="tz-aware and a tz-naive"):
            UsaasQuery(
                network="starlink",
                start=NAIVE.replace(tzinfo=dt.timezone.utc),
                end=NAIVE + dt.timedelta(days=1),
            )

    def test_never_raises_typeerror(self):
        # The regression: TypeError escaped __post_init__.
        try:
            UsaasQuery(network="starlink", start=NAIVE, end=AWARE)
        except QueryError:
            pass

    def test_both_naive_is_fine(self):
        query = UsaasQuery(
            network="starlink", start=NAIVE, end=NAIVE + dt.timedelta(days=1)
        )
        assert query.start < query.end

    def test_both_aware_is_fine(self):
        other_tz = dt.timezone(dt.timedelta(hours=5))
        query = UsaasQuery(
            network="starlink",
            start=AWARE.astimezone(other_tz),
            end=AWARE + dt.timedelta(days=1),
        )
        assert query.end > query.start

    def test_one_sided_ranges_skip_the_check(self):
        UsaasQuery(network="starlink", start=NAIVE)
        UsaasQuery(network="starlink", end=AWARE)


class TestOrderValidation:
    def test_end_before_start_rejected(self):
        with pytest.raises(QueryError, match="end precedes start"):
            UsaasQuery(
                network="starlink",
                start=NAIVE, end=NAIVE - dt.timedelta(days=1),
            )

    def test_aware_end_before_aware_start_rejected(self):
        with pytest.raises(QueryError, match="end precedes start"):
            UsaasQuery(
                network="starlink",
                start=AWARE, end=AWARE - dt.timedelta(days=1),
            )

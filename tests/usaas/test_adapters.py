"""Tests for the telemetry/social → signal adapters."""

import pytest

from repro.core.signals import SignalKind
from repro.core.usaas.adapters import social_signals, telemetry_signals
from repro.core.usaas.privacy import PrivacyGuard
from repro.errors import QueryError


class TestTelemetrySignals:
    def test_exports_all_sessions(self, small_dataset):
        series = telemetry_signals(small_dataset, network="starlink")
        n_sessions = small_dataset.n_participants
        implicit = series.filter(kind=SignalKind.IMPLICIT)
        # presence + cam_on + mic_on + drop_off per session.
        assert len(implicit) == 4 * n_sessions

    def test_ratings_exported_as_explicit(self, small_dataset):
        series = telemetry_signals(small_dataset, network="starlink")
        ratings = series.filter(kind=SignalKind.EXPLICIT, metric="rating")
        assert len(ratings) == len(small_dataset.rated_participants())

    def test_user_ids_scrubbed(self, small_dataset):
        series = telemetry_signals(small_dataset, network="starlink")
        PrivacyGuard().assert_scrubbed(series)

    def test_network_attribution_function(self, small_dataset):
        series = telemetry_signals(
            small_dataset, network="",
            network_of=lambda p: "mobile" if "mobile" in p.platform else "fixed",
        )
        assert len(series.filter(network="mobile")) > 0
        assert len(series.filter(network="fixed")) > 0

    def test_requires_some_attribution(self, small_dataset):
        with pytest.raises(QueryError):
            telemetry_signals(small_dataset, network="")

    def test_platform_attr_carried(self, small_dataset):
        series = telemetry_signals(small_dataset, network="n")
        signal = next(iter(series))
        assert signal.attr("platform") is not None


class TestSocialSignals:
    def test_one_sentiment_signal_per_post(self, small_corpus):
        series = social_signals(small_corpus)
        sentiment = series.filter(metric="sentiment_polarity")
        assert len(sentiment) == len(small_corpus)

    def test_popularity_weights(self, small_corpus):
        series = social_signals(small_corpus)
        weights = [s.weight for s in series.filter(metric="sentiment_polarity")]
        assert max(weights) > min(weights)
        assert min(weights) >= 1.0

    def test_speed_shares_exported(self, small_corpus):
        series = social_signals(small_corpus)
        speeds = series.filter(metric="reported_downlink_mbps")
        assert len(speeds) == len(small_corpus.speed_shares())

    def test_polarity_bounded(self, small_corpus):
        series = social_signals(small_corpus)
        assert all(
            -1 <= s.value <= 1
            for s in series.filter(metric="sentiment_polarity")
        )

    def test_authors_scrubbed(self, small_corpus):
        PrivacyGuard().assert_scrubbed(social_signals(small_corpus))

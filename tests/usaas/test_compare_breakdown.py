"""Tests for USaaS breakdown queries and A-vs-B comparison."""

import pytest

from repro.core.usaas import (
    UsaasQuery,
    UsaasService,
    telemetry_signals,
)
from repro.errors import AnalysisError, PrivacyError, QueryError
from repro.netsim.link import LinkProfile
from repro.telemetry import CallDatasetGenerator, GeneratorConfig


@pytest.fixture(scope="module")
def two_network_service():
    gen = CallDatasetGenerator(GeneratorConfig(n_calls=0, seed=17))
    degraded = LinkProfile(base_latency_ms=260, loss_rate=0.02,
                           jitter_ms=10, bandwidth_mbps=1.5, burstiness=0.5)
    clean = LinkProfile(base_latency_ms=12, loss_rate=0.0004,
                        jitter_ms=1, bandwidth_mbps=4.0, burstiness=0.1)
    bad_calls = gen.generate_sweep(degraded, "latency", [260.0],
                                   calls_per_value=60, focal_only=False)
    good_calls = gen.generate_sweep(clean, "latency", [12.0],
                                    calls_per_value=60, focal_only=False)
    service = UsaasService()
    service.register_source(
        "bad", lambda: telemetry_signals(bad_calls, network="degraded-isp")
    )
    service.register_source(
        "good", lambda: telemetry_signals(good_calls, network="clean-isp")
    )
    return service


class TestBreakdown:
    def test_breakdown_adds_per_group_levels(self, two_network_service):
        report = two_network_service.answer(UsaasQuery(
            network="degraded-isp", service="teams", breakdown="platform",
        ))
        breakdown_levels = [
            i for i in report.insights
            if i.kind == "level" and "platform=" in i.statement
        ]
        assert len(breakdown_levels) >= 2
        platforms = {i.statement.split("platform=")[1].split()[0]
                     for i in breakdown_levels}
        assert "windows_pc" in platforms

    def test_no_breakdown_no_group_levels(self, two_network_service):
        report = two_network_service.answer(UsaasQuery(
            network="degraded-isp", service="teams",
        ))
        assert not any("platform=" in i.statement for i in report.insights)

    def test_small_groups_suppressed(self, two_network_service):
        """The privacy-minded size floor hides thin groups."""
        report = two_network_service.answer(UsaasQuery(
            network="degraded-isp", service="teams", breakdown="user",
        ))
        # Every 'user' group has exactly 1 session — all suppressed.
        assert not any("user=" in i.statement for i in report.insights)


class TestCompare:
    def test_degraded_network_trails_everywhere(self, two_network_service):
        comparison = two_network_service.compare(
            "degraded-isp", "clean-isp", service="teams"
        )
        assert len(comparison.metrics) == 3
        for metric in comparison.metrics:
            assert metric.mean_a < metric.mean_b, metric.metric
            assert metric.effect_size < 0

    def test_worst_gap_identified(self, two_network_service):
        comparison = two_network_service.compare(
            "degraded-isp", "clean-isp", service="teams"
        )
        worst = comparison.worst_gap()
        assert worst.effect_size == min(
            m.effect_size for m in comparison.metrics
        )

    def test_summary_readable(self, two_network_service):
        comparison = two_network_service.compare(
            "degraded-isp", "clean-isp", service="teams"
        )
        text = comparison.summary()
        assert "degraded-isp vs clean-isp" in text
        assert "behind" in text

    def test_magnitude_labels(self, two_network_service):
        comparison = two_network_service.compare(
            "degraded-isp", "clean-isp", service="teams"
        )
        assert all(
            m.magnitude in ("negligible", "small", "medium", "large")
            for m in comparison.metrics
        )

    def test_rejects_same_network(self, two_network_service):
        with pytest.raises(QueryError):
            two_network_service.compare("clean-isp", "clean-isp")

    def test_unknown_network_hits_privacy_floor(self, two_network_service):
        with pytest.raises(PrivacyError):
            two_network_service.compare("clean-isp", "no-such-isp")

    def test_symmetric_effect_sizes(self, two_network_service):
        ab = two_network_service.compare("degraded-isp", "clean-isp",
                                         service="teams")
        ba = two_network_service.compare("clean-isp", "degraded-isp",
                                         service="teams")
        for m_ab, m_ba in zip(ab.metrics, ba.metrics):
            assert m_ab.effect_size == pytest.approx(-m_ba.effect_size)

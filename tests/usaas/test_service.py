"""Tests for the USaaS facade."""

import datetime as dt

import pytest

from repro.core.usaas import (
    UsaasQuery,
    UsaasService,
    social_signals,
    telemetry_signals,
)
from repro.core.usaas.privacy import PrivacyGuard
from repro.errors import PrivacyError, QueryError


@pytest.fixture(scope="module")
def service(small_dataset, small_corpus):
    svc = UsaasService()
    svc.register_source(
        "teams", lambda: telemetry_signals(small_dataset, network="starlink")
    )
    svc.register_source("reddit", lambda: social_signals(small_corpus))
    return svc


class TestUsaasQuery:
    def test_requires_network(self):
        with pytest.raises(QueryError):
            UsaasQuery(network="")

    def test_requires_metrics(self):
        with pytest.raises(QueryError):
            UsaasQuery(network="x", implicit_metrics=(), explicit_metrics=())

    def test_rejects_reversed_range(self):
        with pytest.raises(QueryError):
            UsaasQuery(
                network="x",
                start=dt.datetime(2022, 2, 1),
                end=dt.datetime(2022, 1, 1),
            )


class TestUsaasService:
    def test_answer_produces_report(self, service):
        report = service.answer(UsaasQuery(network="starlink", service="teams"))
        assert report.n_implicit > 0
        assert report.n_explicit > 0
        assert report.insights
        assert "USaaS digest" in report.summary

    def test_level_insights_per_metric(self, service):
        report = service.answer(UsaasQuery(network="starlink", service="teams"))
        levels = [i for i in report.insights if i.kind == "level"]
        covered = {i.statement.split()[0] for i in levels}
        assert {"presence", "cam_on", "mic_on"} <= covered

    def test_anomaly_flags_outage_day(self, service):
        """The 22 Apr '22 sentiment crater must surface as an anomaly."""
        report = service.answer(UsaasQuery(network="starlink"))
        anomalies = [i for i in report.insights if i.kind == "anomaly"]
        assert anomalies
        assert any("2022-04-22" in i.statement for i in anomalies)

    def test_unknown_network_hits_privacy_floor(self, service):
        with pytest.raises(PrivacyError):
            service.answer(UsaasQuery(network="carrier-pigeon"))

    def test_no_sources_rejected(self):
        svc = UsaasService()
        with pytest.raises(QueryError):
            svc.answer(UsaasQuery(network="x"))

    def test_min_users_override(self, service):
        with pytest.raises(PrivacyError):
            service.answer(
                UsaasQuery(network="starlink", min_users=10**9)
            )

    def test_time_range_filter(self, service, small_corpus):
        start = dt.datetime(2022, 4, 1)
        end = dt.datetime(2022, 4, 30)
        report = service.answer(
            UsaasQuery(network="starlink", start=start, end=end)
        )
        full = service.answer(UsaasQuery(network="starlink"))
        assert report.n_explicit < full.n_explicit

"""Tests for continuous USaaS monitoring."""

import datetime as dt

import numpy as np
import pytest

from repro.core.signals import ImplicitSignal, SignalSeries
from repro.core.usaas.monitoring import watch_metric
from repro.engagement.early_warning import DriftDetector
from repro.errors import AnalysisError
from repro.rng import derive

START = dt.datetime(2022, 1, 1, 12)


def series_with_regression(rng, n_days=40, onset=25, per_day=150,
                           mean=75.0, drop=10.0):
    signals = []
    for day in range(n_days):
        value_mean = mean - (drop if day >= onset else 0.0)
        for v in rng.normal(value_mean, 12.0, size=per_day):
            signals.append(ImplicitSignal(
                START + dt.timedelta(days=day), "starlink", "presence",
                float(np.clip(v, 0, 100)),
            ))
    return SignalSeries(signals)


class TestWatchMetric:
    def test_alarm_shortly_after_onset(self):
        series = series_with_regression(derive(61, "mon"))
        alarms = watch_metric(series, "presence")
        assert alarms
        first = alarms[0]
        onset_date = (START + dt.timedelta(days=25)).date()
        assert onset_date <= first.day <= onset_date + dt.timedelta(days=3)
        assert first.z_score < -2
        assert first.n_signals == 150

    def test_no_alarm_on_stable_series(self):
        series = series_with_regression(derive(62, "mon"), drop=0.0)
        assert watch_metric(series, "presence") == []

    def test_rearm_produces_multiple_episodes(self):
        rng = derive(63, "mon")
        signals = []
        for day in range(60):
            degraded = 20 <= day < 25 or 45 <= day < 50
            mean = 60.0 if degraded else 75.0
            for v in rng.normal(mean, 10.0, size=150):
                signals.append(ImplicitSignal(
                    START + dt.timedelta(days=day), "n", "presence",
                    float(np.clip(v, 0, 100)),
                ))
        alarms = watch_metric(SignalSeries(signals), "presence", rearm=True)
        episode_days = {a.day for a in alarms}
        assert any(d.day >= 21 and d.month == 1 for d in episode_days)
        assert len(alarms) >= 2

    def test_no_rearm_single_alarm(self):
        series = series_with_regression(derive(64, "mon"))
        alarms = watch_metric(series, "presence", rearm=False)
        assert len(alarms) == 1

    def test_unknown_metric_raises(self):
        series = series_with_regression(derive(65, "mon"))
        with pytest.raises(AnalysisError):
            watch_metric(series, "smiles")

    def test_custom_detector_direction(self):
        rng = derive(66, "mon")
        series = series_with_regression(rng, drop=-15.0)  # a rise
        rises = watch_metric(
            series, "presence", DriftDetector(direction="rise")
        )
        assert rises


class TestKfoldPredictor:
    def test_kfold_runs(self, small_dataset):
        from repro.engagement.predictor import kfold_evaluate

        report = kfold_evaluate(small_dataset.participants(), k=4)
        assert report.n_test == len(small_dataset.rated_participants())
        assert -1 <= report.correlation <= 1
        assert report.mae > 0

    def test_kfold_deterministic(self, small_dataset):
        from repro.engagement.predictor import kfold_evaluate

        a = kfold_evaluate(small_dataset.participants(), seed=3)
        b = kfold_evaluate(small_dataset.participants(), seed=3)
        assert a.mae == b.mae

    def test_kfold_rejects_small_k(self, small_dataset):
        from repro.engagement.predictor import kfold_evaluate
        from repro.errors import AnalysisError

        with pytest.raises(AnalysisError):
            kfold_evaluate(small_dataset.participants(), k=1)

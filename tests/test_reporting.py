"""Tests for the study-report generator."""

import pytest

from repro.errors import AnalysisError
from repro.reporting import full_report, starlink_report, teams_report


class TestTeamsReport:
    def test_contains_all_sections(self, small_dataset):
        text = teams_report(small_dataset)
        assert "Implicit user signals" in text
        assert "Fig. 1" in text
        assert "Fig. 2" in text
        assert "Fig. 4" in text
        assert "spearman" in text

    def test_rejects_empty(self):
        from repro.telemetry.store import CallDataset

        with pytest.raises(AnalysisError):
            teams_report(CallDataset())


class TestStarlinkReport:
    def test_contains_all_sections(self, small_corpus):
        text = starlink_report(small_corpus, n_peaks=2)
        assert "Explicit user signals" in text
        assert "sentiment peaks" in text
        assert "Outage-keyword monitor" in text
        assert "downlink speeds" in text

    def test_rejects_empty(self):
        from repro.social.corpus import CorpusConfig, RedditCorpus

        with pytest.raises(AnalysisError):
            starlink_report(RedditCorpus([], CorpusConfig()))


class TestFullReport:
    def test_both_halves_plus_digest(self, small_dataset, small_corpus):
        text = full_report(dataset=small_dataset, corpus=small_corpus)
        assert "Implicit user signals" in text
        assert "Explicit user signals" in text
        assert "USaaS digest" in text

    def test_corpus_only(self, small_corpus):
        text = full_report(corpus=small_corpus)
        assert "Implicit user signals" not in text
        assert "USaaS digest" in text

    def test_requires_some_input(self):
        with pytest.raises(AnalysisError):
            full_report()

"""Cross-module property-based tests (hypothesis).

Each class pins an invariant that must hold for *all* inputs in the
stated domain — the kind of guarantee unit tests with fixed values can't
give.
"""

import datetime as dt
import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.stats import bin_statistic
from repro.core.timeline import DailySeries
from repro.netsim.mitigation import EffectiveConditions, MitigationStack
from repro.netsim.qoe import QoeModel
from repro.netsim.trace import ConditionSample
from repro.nlp.keywords import OUTAGE_KEYWORDS
from repro.nlp.sentiment import SentimentAnalyzer
from repro.ocr.engine import OcrEngine
from repro.ocr.render import render_screenshot
from repro.social.schema import PROVIDERS, SpeedTestShare

_sample = st.builds(
    ConditionSample,
    t_s=st.just(0.0),
    latency_ms=st.floats(min_value=0, max_value=500),
    loss_pct=st.floats(min_value=0, max_value=50),
    jitter_ms=st.floats(min_value=0, max_value=40),
    bandwidth_mbps=st.floats(min_value=0.1, max_value=10),
)


class TestMitigationProperties:
    @given(_sample)
    @settings(max_examples=100, deadline=None)
    def test_mitigation_never_worse_than_raw_loss(self, sample):
        """With zero jitter contribution, residual audio loss can never
        exceed the raw loss the network delivered."""
        assume(sample.jitter_ms <= MitigationStack().jitter_buffer_ms)
        eff = MitigationStack().apply(sample, burstiness=0.5)
        assert eff.residual_audio_loss_pct <= sample.loss_pct + 1e-9

    @given(_sample, st.floats(min_value=0, max_value=1))
    @settings(max_examples=100, deadline=None)
    def test_outputs_always_in_domain(self, sample, burstiness):
        eff = MitigationStack().apply(sample, burstiness=burstiness)
        assert 0 <= eff.residual_audio_loss_pct <= 100
        assert 0 <= eff.residual_video_loss_pct <= 100
        assert 0 <= eff.video_bitrate_share <= 1
        assert 0 <= eff.audio_bitrate_share <= 1
        assert eff.delay_ms >= sample.latency_ms

    @given(
        st.floats(min_value=0, max_value=20),
        st.floats(min_value=0, max_value=20),
    )
    @settings(max_examples=80, deadline=None)
    def test_more_loss_never_less_residual(self, loss_a, loss_b):
        low, high = sorted([loss_a, loss_b])
        stack = MitigationStack()
        eff_low = stack.apply(
            ConditionSample(t_s=0, latency_ms=20, loss_pct=low,
                            jitter_ms=2, bandwidth_mbps=3), 0.3)
        eff_high = stack.apply(
            ConditionSample(t_s=0, latency_ms=20, loss_pct=high,
                            jitter_ms=2, bandwidth_mbps=3), 0.3)
        assert eff_high.residual_audio_loss_pct >= (
            eff_low.residual_audio_loss_pct - 1e-9
        )


class TestQoeProperties:
    @given(
        st.floats(min_value=0, max_value=600),
        st.floats(min_value=0, max_value=600),
    )
    @settings(max_examples=80, deadline=None)
    def test_more_delay_never_better(self, delay_a, delay_b):
        low, high = sorted([delay_a, delay_b])
        model = QoeModel()

        def eff(delay):
            return EffectiveConditions(
                delay_ms=delay, residual_audio_loss_pct=0,
                residual_video_loss_pct=0, video_bitrate_share=1,
                audio_bitrate_share=1,
            )

        assert model.audio_mos(eff(high)) <= model.audio_mos(eff(low)) + 1e-9
        assert model.interactivity(eff(high)) <= (
            model.interactivity(eff(low)) + 1e-9
        )

    @given(_sample, st.floats(min_value=0, max_value=1))
    @settings(max_examples=80, deadline=None)
    def test_scores_always_valid(self, sample, burstiness):
        eff = MitigationStack().apply(sample, burstiness=burstiness)
        scores = QoeModel().score(eff)
        assert 1 <= scores.audio_mos <= 5
        assert 1 <= scores.video_mos <= 5
        assert 0 <= scores.interactivity <= 1
        assert 1 <= scores.overall_mos <= 5


class TestStatsProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10),
                st.floats(min_value=-50, max_value=50),
            ),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_bin_means_bounded_by_inputs(self, pairs):
        keys = [p[0] for p in pairs]
        values = [p[1] for p in pairs]
        curve = bin_statistic(keys, values, np.linspace(0, 10, 5))
        finite = curve.stat[~np.isnan(curve.stat)]
        if len(finite):
            assert finite.min() >= min(values) - 1e-9
            assert finite.max() <= max(values) + 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=10),
                st.floats(min_value=-50, max_value=50),
            ),
            min_size=1, max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_total_count_conserved(self, pairs):
        keys = [p[0] for p in pairs]
        values = [p[1] for p in pairs]
        curve = bin_statistic(keys, values, np.linspace(0, 10, 5))
        assert curve.counts.sum() == len(pairs)  # all keys in [0, 10]


class TestTimelineProperties:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=90),
            st.floats(min_value=0, max_value=1000),
            max_size=40,
        ),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_top_peaks_sorted_and_separated(self, day_values, k):
        start = dt.date(2022, 1, 1)
        series = DailySeries.zeros(start, start + dt.timedelta(days=90))
        for offset, value in day_values.items():
            series[start + dt.timedelta(days=offset)] = value
        peaks = series.top_peaks(k, min_separation_days=7)
        values = [v for _, v in peaks]
        assert values == sorted(values, reverse=True)
        days = [d for d, _ in peaks]
        for i, a in enumerate(days):
            for b in days[i + 1:]:
                assert abs((a - b).days) >= 7


class TestSentimentProperties:
    @given(st.text(alphabet=st.characters(whitelist_categories=("L", "Zs")),
                   max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_repeating_text_preserves_polarity_sign(self, text):
        analyzer = SentimentAnalyzer()
        single = analyzer.score(text)
        double = analyzer.score(text + ". " + text)
        if single.polarity > 0.05:
            assert double.polarity > 0
        elif single.polarity < -0.05:
            assert double.polarity < 0

    @given(st.text(max_size=150))
    @settings(max_examples=60, deadline=None)
    def test_keyword_counts_superadditive_under_concat(self, text):
        one = OUTAGE_KEYWORDS.count_matches(text)
        two = OUTAGE_KEYWORDS.count_matches(text + "\n" + text)
        assert two >= one


class TestOcrProperties:
    @given(
        st.sampled_from(PROVIDERS),
        st.floats(min_value=5, max_value=350),
        st.floats(min_value=1, max_value=40),
        st.floats(min_value=15, max_value=150),
    )
    @settings(max_examples=60, deadline=None)
    def test_clean_roundtrip_exact(self, provider, dl, ul, lat):
        assume(dl > ul)  # physical for Starlink; the engine enforces it
        share = SpeedTestShare(
            provider=provider,
            download_mbps=round(dl, 1),
            upload_mbps=round(ul, 1),
            latency_ms=round(lat),
        )
        report = OcrEngine().extract(render_screenshot(share))
        assert report.provider == provider
        assert report.download_mbps == pytest.approx(share.download_mbps)

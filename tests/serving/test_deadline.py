"""Deadline: a monotonic per-query budget on the injectable clock."""

import pickle

import pytest

from repro.errors import ConfigError, DeadlineExceededError, QueryRejectedError
from repro.resilience import ManualClock
from repro.serving import Deadline


@pytest.fixture
def clock():
    return ManualClock()


class TestBudgetArithmetic:
    def test_remaining_shrinks_with_the_clock(self, clock):
        deadline = Deadline.start(clock, 2.0)
        assert deadline.remaining() == pytest.approx(2.0)
        clock.advance(0.75)
        assert deadline.remaining() == pytest.approx(1.25)
        assert deadline.elapsed() == pytest.approx(0.75)

    def test_remaining_goes_negative_past_expiry(self, clock):
        deadline = Deadline.start(clock, 1.0)
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(-0.5)
        assert deadline.expired()
        assert deadline.overrun() == pytest.approx(0.5)

    def test_not_expired_inside_budget(self, clock):
        deadline = Deadline.start(clock, 1.0)
        clock.advance(0.999)
        assert not deadline.expired()
        assert deadline.overrun() == 0.0

    def test_expires_at_is_absolute(self, clock):
        clock.advance(10.0)
        deadline = Deadline.start(clock, 3.0)
        assert deadline.expires_at == pytest.approx(13.0)


class TestClamp:
    def test_clamp_passes_small_timeouts_through(self, clock):
        deadline = Deadline.start(clock, 5.0)
        assert deadline.clamp(1.0) == pytest.approx(1.0)

    def test_clamp_cuts_to_remaining_budget(self, clock):
        deadline = Deadline.start(clock, 2.0)
        clock.advance(1.5)
        assert deadline.clamp(1.0) == pytest.approx(0.5)

    def test_clamp_none_becomes_remaining(self, clock):
        deadline = Deadline.start(clock, 2.0)
        clock.advance(0.5)
        assert deadline.clamp(None) == pytest.approx(1.5)

    def test_expired_deadline_clamps_to_zero(self, clock):
        deadline = Deadline.start(clock, 1.0)
        clock.advance(2.0)
        assert deadline.clamp(1.0) == 0.0
        assert deadline.clamp(None) == 0.0

    def test_negative_timeout_clamps_to_zero(self, clock):
        # A nonsensical negative timeout must never leak a negative
        # allowance downstream, even while budget remains.
        deadline = Deadline.start(clock, 5.0)
        assert deadline.clamp(-1.0) == 0.0

    def test_exactly_exhausted_budget_is_expired_and_clamps_to_zero(
        self, clock
    ):
        deadline = Deadline.start(clock, 1.0)
        clock.advance(1.0)  # remaining is exactly 0.0
        assert deadline.remaining() == 0.0
        assert deadline.expired()
        assert deadline.overrun() == 0.0
        assert deadline.clamp(0.5) == 0.0
        assert deadline.clamp(None) == 0.0

    def test_zero_timeout_stays_zero(self, clock):
        deadline = Deadline.start(clock, 5.0)
        assert deadline.clamp(0.0) == 0.0


class TestValidation:
    def test_zero_budget_rejected(self, clock):
        with pytest.raises(ConfigError):
            Deadline.start(clock, 0.0)

    def test_negative_budget_rejected(self, clock):
        with pytest.raises(ConfigError):
            Deadline.start(clock, -1.0)


class TestTypedErrorsPickle:
    """The serving errors cross process boundaries; they must pickle."""

    def test_query_rejected_roundtrip(self):
        err = QueryRejectedError("queue_full", "batch", "8 pending (max 8)")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.reason == "queue_full"
        assert clone.priority == "batch"
        assert clone.detail == "8 pending (max 8)"
        assert str(clone) == str(err)

    def test_query_rejected_unknown_reason(self):
        with pytest.raises(ValueError):
            QueryRejectedError("because")

    @pytest.mark.parametrize(
        "reason", ["queue_full", "deadline_infeasible", "draining",
                   "quota_exceeded", "no_replica"],
    )
    def test_every_rejection_reason_roundtrips(self, reason):
        # The cluster router added quota_exceeded / no_replica; all
        # reasons must survive a pickle boundary with fields intact.
        err = QueryRejectedError(reason, "monitoring", "detail text")
        clone = pickle.loads(pickle.dumps(err))
        assert clone.reason == reason
        assert clone.priority == "monitoring"
        assert clone.detail == "detail text"
        assert str(clone) == str(err)

    def test_deadline_exceeded_roundtrip(self):
        err = DeadlineExceededError(1.5, 0.25)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.budget_s == pytest.approx(1.5)
        assert clone.overrun_s == pytest.approx(0.25)
        assert str(clone) == str(err)

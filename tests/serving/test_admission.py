"""AdmissionController: bounded queueing and priority-aware shedding."""

import pytest

from repro.errors import ConfigError, QueryRejectedError
from repro.resilience import ManualClock
from repro.serving import AdmissionController, Deadline, Ticket


def make_ticket(ticket_id, priority="interactive", deadline=None):
    return Ticket(id=ticket_id, query=None, priority=priority,
                  submitted_at=0.0, deadline=deadline)


class TestConfiguration:
    @pytest.mark.parametrize("kwargs", [
        {"max_pending": 0},
        {"max_concurrent": 0},
        {"shed_policy": "random"},
        {"min_feasible_s": -1.0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AdmissionController(**kwargs)

    def test_unknown_priority_rejected(self):
        controller = AdmissionController()
        with pytest.raises(ConfigError):
            controller.try_admit(make_ticket(0, priority="urgent"))


class TestQueueBounds:
    def test_admits_up_to_max_pending(self):
        controller = AdmissionController(max_pending=3, shed_policy="reject")
        for i in range(3):
            assert controller.try_admit(make_ticket(i)) == ()
        assert controller.pending_count() == 3

    def test_reject_policy_refuses_incoming(self):
        controller = AdmissionController(max_pending=1, shed_policy="reject")
        controller.try_admit(make_ticket(0))
        with pytest.raises(QueryRejectedError) as exc_info:
            controller.try_admit(make_ticket(1))
        assert exc_info.value.reason == "queue_full"
        # The refused ticket is NOT in the queue.
        assert controller.pending_count() == 1

    def test_lifo_policy_evicts_globally_newest(self):
        controller = AdmissionController(max_pending=3, shed_policy="lifo")
        controller.try_admit(make_ticket(0, "monitoring"))
        controller.try_admit(make_ticket(1, "interactive"))
        controller.try_admit(make_ticket(2, "batch"))
        evicted = controller.try_admit(make_ticket(3, "monitoring"))
        assert [t.id for t in evicted] == [2]
        assert controller.pending_count() == 3

    def test_priority_policy_evicts_lowest_class_first(self):
        controller = AdmissionController(max_pending=4, shed_policy="priority")
        controller.try_admit(make_ticket(0, "batch"))
        controller.try_admit(make_ticket(1, "monitoring"))
        controller.try_admit(make_ticket(2, "batch"))
        controller.try_admit(make_ticket(3, "monitoring"))
        # Incoming interactive evicts the newest monitoring entry first.
        evicted = controller.try_admit(make_ticket(4, "interactive"))
        assert [t.id for t in evicted] == [3]
        # Next interactive takes the remaining monitoring entry.
        evicted = controller.try_admit(make_ticket(5, "interactive"))
        assert [t.id for t in evicted] == [1]
        # Then the newest batch entry.
        evicted = controller.try_admit(make_ticket(6, "interactive"))
        assert [t.id for t in evicted] == [2]

    def test_priority_policy_never_evicts_same_or_higher_class(self):
        controller = AdmissionController(max_pending=2, shed_policy="priority")
        controller.try_admit(make_ticket(0, "interactive"))
        controller.try_admit(make_ticket(1, "batch"))
        # Incoming batch may not evict batch or interactive.
        with pytest.raises(QueryRejectedError) as exc_info:
            controller.try_admit(make_ticket(2, "batch"))
        assert exc_info.value.reason == "queue_full"
        # Incoming monitoring (lowest class) has nobody below it.
        with pytest.raises(QueryRejectedError):
            controller.try_admit(make_ticket(3, "monitoring"))


class TestDeadlineFeasibility:
    def test_infeasible_deadline_is_shed_at_the_door(self):
        clock = ManualClock()
        controller = AdmissionController(min_feasible_s=0.5)
        deadline = Deadline.start(clock, 1.0)
        clock.advance(0.75)  # 0.25s left < 0.5s minimum feasible
        with pytest.raises(QueryRejectedError) as exc_info:
            controller.try_admit(make_ticket(0, deadline=deadline))
        assert exc_info.value.reason == "deadline_infeasible"

    def test_feasible_deadline_admitted(self):
        clock = ManualClock()
        controller = AdmissionController(min_feasible_s=0.5)
        deadline = Deadline.start(clock, 1.0)
        assert controller.try_admit(make_ticket(0, deadline=deadline)) == ()

    def test_expired_at_admission_is_refused_never_started(self):
        # A query whose deadline already passed (negative remaining) is
        # refused at the door as deadline_infeasible — even with a zero
        # minimum-feasible floor — and never enters the queue.
        clock = ManualClock()
        controller = AdmissionController(min_feasible_s=0.0)
        deadline = Deadline.start(clock, 1.0)
        clock.advance(1.5)  # remaining is -0.5
        with pytest.raises(QueryRejectedError) as exc_info:
            controller.try_admit(make_ticket(0, deadline=deadline))
        assert exc_info.value.reason == "deadline_infeasible"
        assert controller.pending_count() == 0
        assert controller.next_ticket() is None

    def test_exactly_zero_remaining_is_refused(self):
        clock = ManualClock()
        controller = AdmissionController(min_feasible_s=0.0)
        deadline = Deadline.start(clock, 1.0)
        clock.advance(1.0)  # remaining is exactly 0.0
        with pytest.raises(QueryRejectedError) as exc_info:
            controller.try_admit(make_ticket(0, deadline=deadline))
        assert exc_info.value.reason == "deadline_infeasible"
        assert controller.pending_count() == 0


class TestExecutionHandoff:
    def test_next_ticket_is_priority_then_fifo(self):
        controller = AdmissionController(max_pending=8, max_concurrent=8)
        controller.try_admit(make_ticket(0, "monitoring"))
        controller.try_admit(make_ticket(1, "batch"))
        controller.try_admit(make_ticket(2, "interactive"))
        controller.try_admit(make_ticket(3, "interactive"))
        order = [controller.next_ticket().id for _ in range(4)]
        assert order == [2, 3, 1, 0]

    def test_max_concurrent_gates_handoff(self):
        controller = AdmissionController(max_pending=4, max_concurrent=1)
        controller.try_admit(make_ticket(0))
        controller.try_admit(make_ticket(1))
        first = controller.next_ticket()
        assert first.id == 0
        assert controller.next_ticket() is None  # saturated
        controller.release(first)
        assert controller.next_ticket().id == 1

    def test_release_unknown_ticket_is_an_error(self):
        controller = AdmissionController()
        with pytest.raises(ConfigError):
            controller.release(make_ticket(42))


class TestShedTieBreaks:
    """Shedding tie-breaks are insertion-order stable, never id-based."""

    def test_lifo_evicts_latest_admitted_despite_out_of_order_ids(self):
        # Callers may mint ids out of order (a cluster router minting
        # ids per replica does); "newest" must mean *last admitted*.
        controller = AdmissionController(max_pending=3, shed_policy="lifo")
        controller.try_admit(make_ticket(10))
        controller.try_admit(make_ticket(2))
        controller.try_admit(make_ticket(5))
        evicted = controller.try_admit(make_ticket(1))
        assert [t.id for t in evicted] == [5]

    def test_priority_evicts_latest_admitted_of_lowest_class(self):
        controller = AdmissionController(max_pending=2,
                                         shed_policy="priority")
        controller.try_admit(make_ticket(9, "monitoring"))
        controller.try_admit(make_ticket(3, "monitoring"))
        evicted = controller.try_admit(make_ticket(0, "interactive"))
        assert [t.id for t in evicted] == [3]  # last in, not max id

    def test_tie_break_survives_dequeue_and_refill(self):
        # Sequence bookkeeping must stay consistent after tickets leave
        # the queue through the execution path.
        controller = AdmissionController(max_pending=2, max_concurrent=2,
                                         shed_policy="lifo")
        controller.try_admit(make_ticket(7))
        controller.try_admit(make_ticket(8))
        first = controller.next_ticket()
        assert first.id == 7
        controller.try_admit(make_ticket(3))   # queue: 8 then 3
        evicted = controller.try_admit(make_ticket(100))
        assert [t.id for t in evicted] == [3]


class TestEvictPending:
    def test_returns_everything_in_priority_order_and_empties(self):
        controller = AdmissionController(max_pending=8)
        controller.try_admit(make_ticket(0, "monitoring"))
        controller.try_admit(make_ticket(1, "interactive"))
        controller.try_admit(make_ticket(2, "batch"))
        controller.try_admit(make_ticket(3, "interactive"))
        evicted = controller.evict_pending()
        assert [t.id for t in evicted] == [1, 3, 2, 0]
        assert controller.pending_count() == 0
        assert controller.evict_pending() == ()

    def test_does_not_touch_in_flight_work(self):
        controller = AdmissionController(max_pending=4)
        controller.try_admit(make_ticket(0))
        controller.try_admit(make_ticket(1))
        running = controller.next_ticket()
        evicted = controller.evict_pending()
        assert [t.id for t in evicted] == [1]
        assert controller.in_flight_count == 1
        controller.release(running)


class TestDraining:
    def test_stop_admitting_sheds_everything_new(self):
        controller = AdmissionController()
        controller.try_admit(make_ticket(0))
        controller.stop_admitting()
        with pytest.raises(QueryRejectedError) as exc_info:
            controller.try_admit(make_ticket(1))
        assert exc_info.value.reason == "draining"
        # What was already queued stays available for the drain loop.
        assert controller.pending_count() == 1
        assert [t.id for t in controller.pending_tickets()] == [0]

"""UsaasCluster: routing, failover, quotas, exact-once accounting."""

import pytest

from repro.core.usaas import UsaasQuery
from repro.errors import ConfigError, QueryRejectedError
from repro.resilience import BreakerState, ReplicaFaultEvent
from repro.serving import TenantPolicy, synthetic_cluster

QUERY = UsaasQuery(network="starlink", service="teams")


def make_cluster(**kwargs):
    kwargs.setdefault("seed", 7)
    kwargs.setdefault("n_replicas", 3)
    cluster, _plan = synthetic_cluster(**kwargs)
    return cluster


def keys_owned_by(cluster, replica, n):
    """The first ``n`` synthetic user keys whose primary is ``replica``."""
    owned = []
    for i in range(10_000):
        key = f"user-{i}"
        if cluster.ring.route(key) == replica:
            owned.append(key)
            if len(owned) == n:
                return owned
    raise AssertionError(f"could not find {n} keys owned by {replica}")


class TestTenantPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "t", "weight": 0.0},
        {"name": "t", "weight": -1.0},
        {"name": "t", "rate_per_s": 0.0},
        {"name": "t", "burst": 0.5},
    ])
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TenantPolicy(**kwargs)


class TestConfiguration:
    def test_needs_at_least_one_replica(self):
        from repro.serving import UsaasCluster

        with pytest.raises(ConfigError):
            UsaasCluster([])

    def test_duplicate_tenants_rejected(self):
        with pytest.raises(ConfigError):
            make_cluster(tenants=(
                TenantPolicy(name="a"), TenantPolicy(name="a"),
            ))

    def test_unknown_replica_lookup_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ConfigError):
            cluster.replica("r9")

    def test_bad_n_replicas_rejected(self):
        with pytest.raises(ConfigError):
            synthetic_cluster(seed=7, n_replicas=0)


class TestRouting:
    def test_same_key_sticks_to_one_replica(self):
        cluster = make_cluster()
        owner = cluster.ring.route("user-42")
        for _ in range(5):
            name, _ticket = cluster.submit(QUERY, key="user-42")
            assert name == owner

    def test_load_spreads_across_replicas(self):
        cluster = make_cluster(max_pending=32)
        homes = set()
        for i in range(40):
            name, _ticket = cluster.submit(QUERY, key=f"user-{i}")
            homes.add(name)
        assert homes == {"r0", "r1", "r2"}


class TestFailover:
    def test_crashed_primary_fails_over_to_its_ladder(self):
        cluster = make_cluster()
        key = keys_owned_by(cluster, "r1", 1)[0]
        ladder = cluster.ring.preference(key)
        assert ladder[0] == "r1"
        cluster.apply_fault(
            ReplicaFaultEvent(at_s=0.0, replica="r1", action="crash")
        )
        name, _ticket = cluster.submit(QUERY, key=key)
        assert name == ladder[1]

    def test_repeated_probe_failures_open_breaker_and_rebalance(self):
        cluster = make_cluster()
        keys = keys_owned_by(cluster, "r1", 3)
        cluster.apply_fault(
            ReplicaFaultEvent(at_s=0.0, replica="r1", action="crash")
        )
        for key in keys[:2]:
            cluster.submit(QUERY, key=key)
        # min_calls=2 failed probes at 100% failure rate: breaker open,
        # replica off the ring (one rebalance), ladders no longer try it.
        assert cluster.breaker("r1").state is BreakerState.OPEN
        assert "r1" not in cluster.ring
        assert cluster.rebalances == 1
        assert "r1" not in cluster.ring.preference(keys[2])

    def test_recovered_replica_rejoins_after_breaker_cooldown(self):
        cluster = make_cluster()
        keys = keys_owned_by(cluster, "r1", 3)
        cluster.apply_fault(
            ReplicaFaultEvent(at_s=0.0, replica="r1", action="crash")
        )
        for key in keys[:2]:
            cluster.submit(QUERY, key=key)
        assert "r1" not in cluster.ring
        cluster.apply_fault(
            ReplicaFaultEvent(at_s=0.0, replica="r1", action="recover")
        )
        # Still inside the breaker cool-down: the next submit does not
        # probe the evicted replica back in.
        cluster.submit(QUERY, key=keys[2])
        assert "r1" not in cluster.ring
        cluster.clock.advance(2.5)  # past breaker_recovery_s=2.0
        name, _ticket = cluster.submit(QUERY, key=keys[0])
        assert "r1" in cluster.ring
        assert name == "r1"  # minimal disruption: the key went home
        assert cluster.rebalances == 2

    def test_all_replicas_down_sheds_no_replica(self):
        cluster = make_cluster()
        for replica in ("r0", "r1", "r2"):
            cluster.apply_fault(ReplicaFaultEvent(
                at_s=0.0, replica=replica, action="crash"
            ))
        with pytest.raises(QueryRejectedError) as exc_info:
            cluster.submit(QUERY, key="user-1", priority="batch")
        assert exc_info.value.reason == "no_replica"
        assert exc_info.value.priority == "batch"
        metrics = cluster.metrics()
        assert dict(metrics.router_shed)["no_replica"] == 1
        metrics.check_exact_once()

    def test_unknown_fault_action_rejected(self):
        cluster = make_cluster()
        with pytest.raises(ConfigError):
            cluster.apply_fault(ReplicaFaultEvent(
                at_s=0.0, replica="r0", action="reboot"
            ))


class TestHang:
    def test_hang_holds_the_queue_and_recovery_releases_it(self):
        cluster = make_cluster()
        key = keys_owned_by(cluster, "r0", 1)[0]
        cluster.submit(QUERY, key=key)
        cluster.apply_fault(
            ReplicaFaultEvent(at_s=0.0, replica="r0", action="hang")
        )
        handle = cluster.replica("r0")
        assert handle.server.has_pending()      # queue survives the hang
        assert cluster.run_next() is None       # but nothing is runnable
        cluster.apply_fault(
            ReplicaFaultEvent(at_s=0.0, replica="r0", action="recover")
        )
        name, outcome = cluster.run_next()
        assert name == "r0"
        assert outcome.status in ("served", "served_degraded")

    def test_still_hung_at_drain_fails_held_queries(self):
        cluster = make_cluster()
        key = keys_owned_by(cluster, "r0", 1)[0]
        cluster.submit(QUERY, key=key)
        cluster.apply_fault(
            ReplicaFaultEvent(at_s=0.0, replica="r0", action="hang")
        )
        drained = cluster.drain()
        assert drained["failed_at_drain"] == 1
        metrics = cluster.metrics()
        assert metrics.totals()["failed"] == 1
        metrics.check_exact_once()


class TestSlow:
    def test_slow_fault_taxes_the_replica_clock(self):
        cluster = make_cluster()
        key = keys_owned_by(cluster, "r0", 1)[0]
        cluster.apply_fault(ReplicaFaultEvent(
            at_s=0.0, replica="r0", action="slow_start", slow_extra_s=0.5,
        ))
        _name, ticket = cluster.submit(QUERY, key=key)
        cluster.run_next()
        slow_latency = cluster.replica("r0").server.outcomes[
            ticket.id
        ].latency_s
        cluster.apply_fault(ReplicaFaultEvent(
            at_s=0.0, replica="r0", action="slow_end",
        ))
        _name, ticket = cluster.submit(QUERY, key=key)
        cluster.run_next()
        normal_latency = cluster.replica("r0").server.outcomes[
            ticket.id
        ].latency_s
        assert slow_latency == pytest.approx(normal_latency + 0.5)


class TestQuota:
    def test_token_bucket_sheds_and_refills_on_router_clock(self):
        cluster = make_cluster(tenants=(
            TenantPolicy(name="metered", rate_per_s=1.0, burst=1.0),
        ))
        cluster.submit(QUERY, key="user-1", tenant="metered")
        with pytest.raises(QueryRejectedError) as exc_info:
            cluster.submit(QUERY, key="user-2", tenant="metered")
        assert exc_info.value.reason == "quota_exceeded"
        assert "quota" in str(exc_info.value)
        cluster.clock.advance(1.0)  # one token refilled
        cluster.submit(QUERY, key="user-3", tenant="metered")
        state = cluster.tenant_state("metered")
        assert state.submitted == 3
        assert state.admitted == 2
        assert state.shed_quota == 1

    def test_unmetered_tenant_has_no_absolute_cap(self):
        cluster = make_cluster()
        for i in range(10):
            cluster.submit(QUERY, key=f"user-{i}")
        assert cluster.tenant_state("default").shed_quota == 0


class TestWeightedFair:
    def test_heavier_tenant_keeps_admitting_while_lighter_sheds(self):
        cluster = make_cluster(tenants=(
            TenantPolicy(name="alpha", weight=2.0),
            TenantPolicy(name="beta", weight=1.0),
        ))
        cluster.fair_horizon = 2.0
        # Fill below the congestion threshold: fair sharing stays out of
        # the way while there is headroom.
        for i in range(6):
            cluster.submit(QUERY, key=f"user-a{i}", tenant="alpha")
            cluster.submit(QUERY, key=f"user-b{i}", tenant="beta")
        assert cluster.tenant_state("beta").shed_fair == 0
        # Past half the pending capacity the stride scheduler bites:
        # beta (vt=6.0) is over alpha (vt=3.0) + horizon, alpha is not.
        assert cluster.pending_count() >= 12
        with pytest.raises(QueryRejectedError) as exc_info:
            cluster.submit(QUERY, key="user-b9", tenant="beta")
        assert exc_info.value.reason == "quota_exceeded"
        assert "weighted-fair" in str(exc_info.value)
        cluster.submit(QUERY, key="user-a9", tenant="alpha")
        assert cluster.tenant_state("beta").shed_fair == 1
        assert cluster.tenant_state("alpha").shed_fair == 0

    def test_single_tenant_never_fair_sheds(self):
        cluster = make_cluster()
        for i in range(20):
            try:
                cluster.submit(QUERY, key=f"user-{i}")
            except QueryRejectedError as exc:
                # Only per-replica queue_full sheds, never fair sheds.
                assert exc.reason == "queue_full"
        assert dict(cluster.metrics().router_shed)["quota_exceeded"] == 0


class TestExactOnce:
    def test_ledger_closes_through_overload_crash_and_drain(self):
        cluster = make_cluster()
        for i in range(30):
            try:
                cluster.submit(QUERY, key=f"user-{i}", deadline_s=5.0)
            except QueryRejectedError:
                pass
        cluster.apply_fault(
            ReplicaFaultEvent(at_s=0.0, replica="r1", action="crash")
        )
        for i in range(30, 45):
            try:
                cluster.submit(QUERY, key=f"user-{i}", deadline_s=5.0)
            except QueryRejectedError:
                pass
        cluster.drain()
        metrics = cluster.metrics()
        metrics.check_exact_once()
        totals = metrics.totals()
        replica_submitted = sum(m.submitted for _, m in metrics.replicas)
        assert totals["submitted"] == 45
        assert totals["submitted"] == (
            metrics.router_shed_total + replica_submitted
        )

    def test_parallel_capacity_scales_with_replicas(self):
        # Three replicas advance their *own* clocks: serving one query
        # per replica costs ~0.1s of simulated time everywhere, not
        # 0.3s serialized on a shared clock.
        cluster = make_cluster()
        for replica in ("r0", "r1", "r2"):
            key = keys_owned_by(cluster, replica, 1)[0]
            cluster.submit(QUERY, key=key)
        cluster.drain()
        for replica in ("r0", "r1", "r2"):
            assert cluster.replica(replica).clock.now() == pytest.approx(
                0.1, abs=0.05
            )

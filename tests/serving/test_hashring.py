"""HashRing: stable routing, failover ladders, minimal disruption."""

import pytest

from repro.errors import ConfigError
from repro.serving import HashRing

NAMES = ("r0", "r1", "r2")
KEYS = [f"user-{i}" for i in range(400)]


@pytest.fixture
def ring():
    return HashRing(NAMES)


class TestMembership:
    def test_names_sorted_and_len(self, ring):
        assert ring.names() == tuple(sorted(NAMES))
        assert len(ring) == 3
        assert "r1" in ring
        assert "r9" not in ring

    def test_duplicate_add_rejected(self, ring):
        with pytest.raises(ConfigError):
            ring.add("r0")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            HashRing([""])

    def test_remove_unknown_rejected(self, ring):
        with pytest.raises(ConfigError):
            ring.remove("r9")

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ConfigError):
            HashRing(vnodes=0)


class TestRouting:
    def test_route_is_stable(self, ring):
        assignment = {key: ring.route(key) for key in KEYS}
        again = HashRing(NAMES)
        assert {key: again.route(key) for key in KEYS} == assignment

    def test_route_independent_of_insertion_order(self):
        forward = HashRing(["r0", "r1", "r2"])
        backward = HashRing(["r2", "r1", "r0"])
        assert all(
            forward.route(key) == backward.route(key) for key in KEYS
        )

    def test_empty_ring_route_rejected(self):
        empty = HashRing()
        with pytest.raises(ConfigError):
            empty.route("user-1")
        with pytest.raises(ConfigError):
            empty.preference("user-1")

    def test_every_member_owns_some_keys(self, ring):
        owners = {ring.route(key) for key in KEYS}
        assert owners == set(NAMES)

    def test_ownership_roughly_balanced(self, ring):
        share = ring.ownership_share()
        assert sum(share.values()) == pytest.approx(1.0)
        for name in NAMES:
            # 64 vnodes keeps each member within a loose band of 1/3.
            assert 0.1 < share[name] < 0.6


class TestPreference:
    def test_primary_first_then_distinct_ladder(self, ring):
        for key in KEYS[:50]:
            ladder = ring.preference(key)
            assert ladder[0] == ring.route(key)
            assert len(ladder) == len(set(ladder)) == 3

    def test_n_caps_the_ladder(self, ring):
        assert len(ring.preference("user-1", n=2)) == 2
        assert len(ring.preference("user-1", n=99)) == 3

    def test_ladder_next_entry_takes_over_on_removal(self, ring):
        # Failover contract: when the primary leaves, the new primary is
        # the next entry of the *old* ladder.
        for key in KEYS[:50]:
            first, second = ring.preference(key, n=2)
            ring.remove(first)
            assert ring.route(key) == second
            ring.add(first)


class TestMinimalDisruption:
    def test_removal_only_remaps_the_lost_replicas_keys(self, ring):
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("r1")
        after = {key: ring.route(key) for key in KEYS}
        for key in KEYS:
            if before[key] != "r1":
                assert after[key] == before[key]
            else:
                assert after[key] != "r1"

    def test_rejoin_restores_the_original_assignment(self, ring):
        before = {key: ring.route(key) for key in KEYS}
        ring.remove("r1")
        ring.add("r1")
        assert {key: ring.route(key) for key in KEYS} == before

"""UsaasServer: admission + deadlines + exact-once accounting."""

import pytest

from repro.core.usaas import UsaasQuery
from repro.errors import ConfigError, DeadlineExceededError, QueryRejectedError
from repro.resilience import FaultPlan, ManualClock
from repro.serving import UsaasServer
from repro.serving.soak import synthetic_soak_service

QUERY = UsaasQuery(network="starlink", service="teams")


def make_server(seed=7, slow_s=0.05, attempt_timeout_s=0.2,
                include_flaky=False, **kwargs):
    clock = ManualClock()
    plan = FaultPlan(seed=seed, clock=clock)
    service = synthetic_soak_service(
        plan, slow_s=slow_s, attempt_timeout_s=attempt_timeout_s,
        include_flaky=include_flaky,
    )
    return UsaasServer(service, **kwargs), clock


class TestHappyPath:
    def test_serve_returns_the_report(self):
        server, _ = make_server()
        report = server.serve(QUERY)
        assert report.n_implicit > 0
        assert report.n_explicit > 0
        assert not report.degraded
        counters = server.metrics().counters("interactive")
        assert counters.submitted == 1
        assert counters.served == 1

    def test_latency_is_simulated_service_time(self):
        server, clock = make_server(slow_s=0.05)
        before = clock.now()
        server.serve(QUERY)
        # Two healthy sources, 0.05 simulated seconds each.
        assert clock.now() - before == pytest.approx(0.1)
        [latency] = server.metrics().counters("interactive").latencies_s
        assert latency == pytest.approx(0.1)

    def test_degraded_source_set_counts_served_degraded(self):
        server, _ = make_server(include_flaky=True)
        report = server.serve(QUERY)
        assert report.degraded
        counters = server.metrics().counters("interactive")
        assert counters.served_degraded == 1
        assert counters.served == 0

    def test_unknown_priority_rejected_before_accounting(self):
        server, _ = make_server()
        with pytest.raises(ConfigError):
            server.submit(QUERY, priority="urgent")
        assert server.metrics().submitted == 0


class TestDeadlines:
    def test_serve_raises_when_budget_runs_out(self):
        # Healthy service time is 2 x 0.3s = 0.6s > the 0.5s budget.
        server, clock = make_server(
            slow_s=0.3, min_feasible_s=0.1,
        )
        with pytest.raises(DeadlineExceededError):
            server.serve(QUERY, deadline_s=0.5)
        counters = server.metrics().counters("interactive")
        assert counters.deadline_exceeded == 1
        # Bounded overrun: the executor stops scheduling work once the
        # budget is spent, so the clock never runs a full retry cycle
        # past the deadline — at most one attempt.
        assert clock.now() <= 0.5 + 0.3 + 1e-9

    def test_infeasible_deadline_is_shed_with_accounting(self):
        # min_feasible defaults to the retry attempt timeout (0.2s).
        server, _ = make_server()
        with pytest.raises(QueryRejectedError) as exc_info:
            server.serve(QUERY, deadline_s=0.15)
        assert exc_info.value.reason == "deadline_infeasible"
        counters = server.metrics().counters("interactive")
        assert counters.submitted == 1
        assert counters.shed == 1

    def test_expired_in_queue_never_starts_the_answer(self):
        # attempt_timeout generous enough that a 0.3s fetch succeeds.
        server, clock = make_server(
            slow_s=0.3, attempt_timeout_s=0.5, min_feasible_s=0.05,
        )
        first = server.submit(QUERY, deadline_s=5.0)
        second = server.submit(QUERY, deadline_s=0.5)
        attempts_before = sum(
            h.attempts for h in server.service.source_health()
        )
        out_first = server.run_next()
        assert out_first.ticket_id == first.id
        attempts_mid = sum(h.attempts for h in server.service.source_health())
        assert attempts_mid > attempts_before
        # 0.6 simulated seconds passed; the second query's 0.5s budget
        # expired while it sat in the queue.
        assert clock.now() == pytest.approx(0.6)
        out_second = server.run_next()
        assert out_second.ticket_id == second.id
        assert out_second.status == "deadline_exceeded"
        assert "expired in queue" in out_second.error
        # No source work was done for it.
        attempts_after = sum(
            h.attempts for h in server.service.source_health()
        )
        assert attempts_after == attempts_mid


class TestSheddingAccounting:
    def test_rejected_submission_is_accounted_then_raised(self):
        server, _ = make_server(max_pending=1, shed_policy="reject")
        server.submit(QUERY)
        with pytest.raises(QueryRejectedError) as exc_info:
            server.submit(QUERY)
        assert exc_info.value.reason == "queue_full"
        counters = server.metrics().counters("interactive")
        assert counters.submitted == 2
        assert counters.shed == 1

    def test_eviction_accounts_the_victim(self):
        server, _ = make_server(max_pending=1, shed_policy="priority")
        victim = server.submit(QUERY, priority="batch")
        keeper = server.submit(QUERY, priority="interactive")
        assert server.outcomes[victim.id].status == "shed"
        assert "evicted" in server.outcomes[victim.id].error
        assert keeper.id not in server.outcomes
        assert server.metrics().counters("batch").shed == 1

    def test_exact_once_accounting_is_enforced(self):
        server, _ = make_server()
        server.serve(QUERY)
        from repro.serving.server import QueryOutcome

        with pytest.raises(ConfigError, match="exactly once"):
            server._record(QueryOutcome(
                ticket_id=0, priority="interactive", status="served",
            ))


class TestDrain:
    def test_drain_finishes_queued_work_and_stops_admission(self):
        server, _ = make_server(max_pending=8)
        for _ in range(3):
            server.submit(QUERY)
        report = server.drain()
        assert report.completed == 3
        assert report.clean
        assert server.draining
        with pytest.raises(QueryRejectedError) as exc_info:
            server.submit(QUERY)
        assert exc_info.value.reason == "draining"
        # The post-drain rejection is itself accounted.
        assert server.metrics().counters("interactive").shed == 1

    def test_drain_on_idle_server_is_clean(self):
        server, _ = make_server()
        report = server.drain()
        assert report.completed == 0
        assert report.clean


class TestMetricsSurface:
    def test_table_lists_every_class(self):
        server, _ = make_server()
        server.serve(QUERY, priority="batch")
        table = server.metrics().table()
        for name in ("interactive", "batch", "monitoring"):
            assert name in table

    def test_as_dict_has_percentiles(self):
        server, _ = make_server()
        server.serve(QUERY)
        entry = server.metrics().as_dict()["interactive"]
        assert entry["p50_latency_s"] == pytest.approx(0.1)
        assert entry["p99_latency_s"] == pytest.approx(0.1)
        assert server.metrics().as_dict()["batch"]["p50_latency_s"] is None

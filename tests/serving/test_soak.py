"""The acceptance soak: deterministic 5x-capacity overload, exact-once.

This is the tentpole's proof obligation: a sustained load spike at five
times the synthetic service's capacity, driven entirely on a
:class:`ManualClock`, must (a) account for every submitted query in
exactly one terminal state, (b) bound deadline overruns to one attempt
timeout, (c) drain to zero in-flight work, and (d) reproduce the exact
same counters from the same seed.
"""

import pytest

from repro.core.usaas import UsaasQuery
from repro.resilience import FaultPlan, ManualClock
from repro.resilience.faults import Arrival, LoadSpikeSpec
from repro.serving import UsaasServer, run_soak
from repro.serving.soak import (
    estimated_service_time_s,
    synthetic_soak_service,
)

SLOW_S = 0.05
ATTEMPT_TIMEOUT_S = 0.2
DEADLINE_S = 0.6
OVERLOAD = 5.0
DURATION_S = 4.0
MIX = (("interactive", 0.6), ("batch", 0.3), ("monitoring", 0.1))
QUERY = UsaasQuery(network="starlink", service="teams")


def run_one(seed, deadline_s=DEADLINE_S, include_flaky=False):
    clock = ManualClock()
    plan = FaultPlan(seed=seed, clock=clock)
    service = synthetic_soak_service(
        plan, slow_s=SLOW_S, attempt_timeout_s=ATTEMPT_TIMEOUT_S,
        include_flaky=include_flaky,
    )
    rate = OVERLOAD / estimated_service_time_s(SLOW_S)
    arrivals = plan.load_spikes("soak", LoadSpikeSpec(
        rate_per_s=rate, duration_s=DURATION_S,
        priority_mix=MIX, deadline_s=deadline_s,
    ))
    server = UsaasServer(service, max_pending=8, shed_policy="priority")
    report = run_soak(server, arrivals, query_for=lambda arrival: QUERY)
    return report, server


@pytest.fixture(scope="module")
def soak():
    return run_one(seed=7)


class TestAcceptance:
    def test_overload_actually_overloads(self, soak):
        report, _ = soak
        # ~5 arrivals per service time for 4 simulated seconds.
        assert report.arrivals > 100
        assert report.shed_rate > 0.3

    def test_exact_once_accounting(self, soak):
        report, server = soak
        assert report.accounted, report.summary()
        assert report.submitted == report.arrivals
        # Outcome map agrees with the counters.
        assert len(server.outcomes) == report.submitted
        by_status = {}
        for outcome in server.outcomes.values():
            by_status[outcome.status] = by_status.get(outcome.status, 0) + 1
        assert by_status.get("served", 0) == report.served
        assert by_status.get("served_degraded", 0) == report.served_degraded
        assert by_status.get("shed", 0) == report.shed
        assert by_status.get("deadline_exceeded", 0) == (
            report.deadline_exceeded
        )
        assert by_status.get("failed", 0) == report.failed

    def test_every_interesting_state_is_reached(self, soak):
        report, _ = soak
        assert report.served > 0
        assert report.served_degraded > 0
        assert report.shed > 0
        assert report.deadline_exceeded > 0

    def test_deadline_overrun_bounded_by_one_attempt(self, soak):
        _, server = soak
        checked = 0
        for outcome in server.outcomes.values():
            if outcome.status != "deadline_exceeded":
                continue
            assert outcome.latency_s is not None
            overrun = outcome.latency_s - DEADLINE_S
            assert overrun <= ATTEMPT_TIMEOUT_S + 1e-9, outcome
            checked += 1
        assert checked > 0

    def test_drain_leaves_nothing_in_flight(self, soak):
        report, server = soak
        assert report.drain.clean
        assert report.drain.leftover_pending == 0
        assert report.drain.in_flight == 0
        assert not server.has_pending()
        assert server.admission.in_flight_count == 0

    def test_priority_classes_shed_bottom_up(self, soak):
        report, _ = soak
        shed_rate = {}
        for name, counters in report.metrics.per_class:
            if counters.submitted:
                shed_rate[name] = counters.shed / counters.submitted
        # Under the priority policy the lower classes bear the load.
        assert shed_rate["monitoring"] >= shed_rate["interactive"]
        assert shed_rate["batch"] >= shed_rate["interactive"]


class TestDeterminism:
    def test_same_seed_is_byte_identical(self):
        first, _ = run_one(seed=7)
        second, _ = run_one(seed=7)
        assert first.counters_dict() == second.counters_dict()

    def test_different_seed_differs(self):
        first, _ = run_one(seed=7)
        second, _ = run_one(seed=8)
        assert first.counters_dict() != second.counters_dict()

    def test_flaky_source_degrades_every_answer(self):
        report, _ = run_one(seed=7, include_flaky=True)
        assert report.accounted
        assert report.served == 0
        assert report.served_degraded > 0


class TestSoakLoopMechanics:
    def test_idle_gaps_advance_the_clock(self):
        # Two far-apart arrivals: the soak loop must idle-advance.
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        service = synthetic_soak_service(plan, slow_s=SLOW_S)
        server = UsaasServer(service, max_pending=8)
        arrivals = [Arrival(at_s=1.0), Arrival(at_s=10.0)]
        report = run_soak(server, arrivals, query_for=lambda a: QUERY)
        assert report.submitted == 2
        assert report.served == 2
        assert report.final_clock_s == pytest.approx(10.0 + 2 * SLOW_S)

    def test_arrivals_submitted_in_time_order(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        service = synthetic_soak_service(plan, slow_s=SLOW_S)
        server = UsaasServer(service, max_pending=8)
        # Deliberately unsorted input.
        arrivals = [Arrival(at_s=2.0), Arrival(at_s=0.5), Arrival(at_s=1.0)]
        report = run_soak(server, arrivals, query_for=lambda a: QUERY)
        assert report.submitted == 3
        assert report.accounted

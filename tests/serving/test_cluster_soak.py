"""Cluster soak: seeded overload + replica faults, byte-identical."""

import json

import pytest

from repro.core.usaas import UsaasQuery
from repro.resilience import ReplicaFaultSpec
from repro.resilience.faults import LoadSpikeSpec
from repro.serving import (
    TenantPolicy,
    replica_seed,
    run_cluster_soak,
    synthetic_cluster,
)
from repro.serving.soak import estimated_service_time_s

QUERY = UsaasQuery(network="starlink", service="teams")
SLOW_S = 0.05
N_REPLICAS = 3
#: 5x whole-cluster capacity: a genuine sustained overload.
RATE = 5.0 * N_REPLICAS / estimated_service_time_s(SLOW_S)

SPIKE = LoadSpikeSpec(
    rate_per_s=RATE,
    duration_s=4.0,
    priority_mix=(
        ("interactive", 0.6), ("batch", 0.3), ("monitoring", 0.1),
    ),
    deadline_s=1.0,
)
MID_SPIKE_CRASH = ReplicaFaultSpec(
    replica="r1", kind="crash", at_s=1.5, down_s=1.0,
)


def run_one(seed, fault_specs=(MID_SPIKE_CRASH,), tenants=(),
            tenant_mix=None):
    cluster, plan = synthetic_cluster(
        seed=seed, n_replicas=N_REPLICAS, slow_s=SLOW_S, tenants=tenants,
    )
    if tenant_mix is None:
        tenant_mix = (
            tuple((t.name, t.weight) for t in tenants)
            if tenants else (("default", 1.0),)
        )
    arrivals = plan.cluster_load_spikes(
        "soak", SPIKE, tenant_mix=tenant_mix
    )
    events = (
        plan.replica_faults("soak", *fault_specs) if fault_specs else ()
    )
    return run_cluster_soak(
        cluster, arrivals, events, query_for=lambda a: QUERY
    ), cluster


@pytest.fixture(scope="module")
def crash_run():
    return run_one(seed=42)[0]


class TestAcceptance:
    """The tentpole's acceptance bar: crash mid-spike, ledger closed."""

    def test_exact_once_accounting_under_replica_loss(self, crash_run):
        assert crash_run.accounted
        crash_run.metrics.check_exact_once()

    def test_cluster_totals_equal_replica_sums_plus_router_shed(
        self, crash_run
    ):
        metrics = crash_run.metrics
        replica_submitted = sum(m.submitted for _, m in metrics.replicas)
        assert crash_run.submitted == (
            metrics.router_shed_total + replica_submitted
        )
        per_status = {
            s: sum(
                getattr(c, s)
                for _, m in metrics.replicas for _, c in m.per_class
            )
            for s in ("served", "served_degraded", "deadline_exceeded",
                      "failed", "shed")
        }
        assert crash_run.served == per_status["served"]
        assert crash_run.served_degraded == per_status["served_degraded"]
        assert crash_run.deadline_exceeded == per_status["deadline_exceeded"]
        assert crash_run.failed == per_status["failed"]
        assert crash_run.shed == (
            per_status["shed"] + metrics.router_shed_total
        )

    def test_crash_loses_queued_work_terminally(self, crash_run):
        # The crashed replica's queue died with it: terminal failures,
        # never resubmitted elsewhere.
        assert crash_run.failed > 0
        r1 = crash_run.metrics.replica_metrics("r1")
        assert sum(c.failed for _, c in r1.per_class) == crash_run.failed

    def test_failover_rebalanced_and_recovered(self, crash_run):
        # Breaker discovery removed r1, the half-open probe re-added it.
        assert crash_run.metrics.rebalances == 2
        # The cluster kept serving through the outage.
        assert crash_run.served > 0
        assert crash_run.shed_rate > 0.5  # 5x overload really shed

    def test_drain_left_nothing_behind(self, crash_run):
        assert crash_run.drain["leftover"] == 0

    def test_summary_mentions_the_story(self, crash_run):
        text = crash_run.summary()
        assert "submitted" in text
        assert "rebalances" in text
        assert "replicas" in text

    def test_bare_arrivals_replay_without_query_for(self):
        # ClusterArrival carries no query; the soak must supply a
        # default so the public surface works out of the box.
        cluster, plan = synthetic_cluster(seed=3, n_replicas=2,
                                          slow_s=SLOW_S)
        arrivals = plan.cluster_load_spikes(
            "bare", LoadSpikeSpec(rate_per_s=RATE, duration_s=1.0,
                                  deadline_s=1.0))
        report = run_cluster_soak(cluster, arrivals)
        assert report.submitted > 0
        assert report.accounted
        assert report.drain["leftover"] == 0


class TestDeterminism:
    def test_same_seed_byte_identical_counters(self):
        a, _ = run_one(seed=1234)
        b, _ = run_one(seed=1234)
        assert json.dumps(a.counters_dict(), sort_keys=True) == json.dumps(
            b.counters_dict(), sort_keys=True
        )

    def test_different_seed_differs(self):
        a, _ = run_one(seed=1234)
        b, _ = run_one(seed=4321)
        assert json.dumps(a.counters_dict(), sort_keys=True) != json.dumps(
            b.counters_dict(), sort_keys=True
        )

    def test_replica_seeds_are_stable_and_distinct(self):
        assert replica_seed(42, 0) == replica_seed(42, 0)
        seeds = {replica_seed(42, i) for i in range(8)}
        assert len(seeds) == 8

    def test_crash_walk_closes_the_ledger_for_every_victim(self):
        # Seeded replica-crash walk: whichever replica dies, and
        # whenever, the cluster-wide ledger still closes exactly.
        for i, victim in enumerate(("r0", "r1", "r2")):
            spec = ReplicaFaultSpec(
                replica=victim, kind="crash",
                at_s=0.5 + 0.7 * i, down_s=0.8,
            )
            report, _ = run_one(seed=100 + i, fault_specs=(spec,))
            assert report.accounted, f"ledger broke crashing {victim}"
            assert report.drain["leftover"] == 0


class TestFaultKinds:
    def test_hang_holds_work_instead_of_losing_it(self):
        spec = ReplicaFaultSpec(
            replica="r1", kind="hang", at_s=1.5, down_s=1.0,
        )
        report, cluster = run_one(seed=42, fault_specs=(spec,))
        assert report.accounted
        # A hang (with recovery) never kills queued work...
        assert report.failed == 0
        # ...but the held queries blow their deadlines when released.
        assert report.deadline_exceeded > 0
        assert cluster.replica("r1").hangs == 1

    def test_hang_without_recovery_fails_held_work_at_drain(self):
        spec = ReplicaFaultSpec(replica="r1", kind="hang", at_s=1.5)
        report, _ = run_one(seed=42, fault_specs=(spec,))
        assert report.accounted
        assert report.failed > 0
        assert report.drain["failed_at_drain"] == report.failed

    def test_slow_window_degrades_latency_but_loses_nothing(self):
        spec = ReplicaFaultSpec(
            replica="r1", kind="slow", at_s=0.5, down_s=2.0,
            slow_extra_s=0.2,
        )
        report, _ = run_one(seed=42, fault_specs=(spec,))
        clean, _ = run_one(seed=42, fault_specs=())
        assert report.accounted
        assert report.failed == 0
        slow_p99 = report.metrics.replica_metrics("r1").p99_latency_s()
        clean_p99 = clean.metrics.replica_metrics("r1").p99_latency_s()
        assert slow_p99 > clean_p99

    def test_flapping_replica_rebalances_repeatedly(self):
        spec = ReplicaFaultSpec(
            replica="r1", kind="flap", at_s=0.5, down_s=0.4,
            period_s=1.2, flaps=2,
        )
        report, cluster = run_one(seed=42, fault_specs=(spec,))
        assert report.accounted
        assert cluster.replica("r1").crashes == 2
        assert cluster.replica("r1").recoveries == 2
        assert report.fault_events == 4

    def test_clean_run_has_no_failures_or_rebalances(self):
        report, _ = run_one(seed=42, fault_specs=())
        assert report.accounted
        assert report.failed == 0
        assert report.metrics.rebalances == 0


class TestTenants:
    def test_weighted_fair_admission_tracks_weights(self):
        # Arrivals split 50/50, but alpha holds twice the weight: the
        # stride scheduler must push beta's excess back.  (When the
        # offered mix already matches the weights, nobody fair-sheds —
        # that's the scheduler being *work-conserving*, not broken.)
        tenants = (
            TenantPolicy(name="alpha", weight=2.0),
            TenantPolicy(name="beta", weight=1.0),
        )
        report, cluster = run_one(
            seed=42, tenants=tenants,
            tenant_mix=(("alpha", 1.0), ("beta", 1.0)),
        )
        assert report.accounted
        alpha = cluster.tenant_state("alpha")
        beta = cluster.tenant_state("beta")
        assert beta.shed_fair > 0  # the over-offering tenant pushed back
        # Under sustained congestion the admitted ratio converges toward
        # the 2:1 weight ratio (loose band).
        ratio = alpha.admitted / max(1, beta.admitted)
        assert 1.3 < ratio < 3.0

    def test_tenant_ledger_is_complete(self):
        tenants = (
            TenantPolicy(name="alpha", weight=2.0),
            TenantPolicy(name="beta", weight=1.0),
        )
        report, cluster = run_one(seed=7, tenants=tenants)
        assert report.accounted
        for name in ("alpha", "beta"):
            state = cluster.tenant_state(name)
            # Every tenant submission is admitted or shed somewhere.
            assert state.submitted == (
                state.admitted + state.shed_quota + state.shed_fair
                + state.shed_no_replica + state.shed_replica
            )

"""Unit tests for tools/check_bench_regression.py's edge cases.

The gate runs in CI pipelines that may not have produced a benchmark
trajectory yet: absence (and an empty/short ``runs`` list) must be a
clean pass with a clear message, while a file that exists but cannot be
parsed is broken state and must fail loudly.
"""

import importlib.util
import json
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "check_bench_regression.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_bench_regression", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write(tmp_path, payload) -> Path:
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps(payload))
    return path


def test_missing_file_exits_0(tmp_path, capsys):
    tool = _load_tool()
    assert tool.check(tmp_path / "absent.json") == 0
    out = capsys.readouterr().out
    assert "no benchmark trajectory yet" in out
    assert "nothing to compare" in out


def test_empty_runs_exits_0(tmp_path, capsys):
    tool = _load_tool()
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": []})) == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_missing_runs_key_exits_0(tmp_path, capsys):
    tool = _load_tool()
    assert tool.check(_write(tmp_path, {"schema": 1})) == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_single_run_exits_0(tmp_path):
    tool = _load_tool()
    runs = [{"scale": "full",
             "results": {"calls_cold_s": 1.0, "corpus_cold_s": 1.0}}]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": runs})) == 0


def test_malformed_json_exits_2(tmp_path):
    tool = _load_tool()
    path = tmp_path / "BENCH_perf.json"
    path.write_text("{truncated")
    assert tool.check(path) == 2


def test_non_object_trajectory_exits_2(tmp_path):
    tool = _load_tool()
    assert tool.check(_write(tmp_path, [1, 2, 3])) == 2


def test_non_list_runs_exits_2(tmp_path):
    tool = _load_tool()
    assert tool.check(_write(tmp_path, {"runs": "oops"})) == 2


def test_regression_still_detected(tmp_path):
    tool = _load_tool()
    runs = [
        {"scale": "full",
         "results": {"calls_cold_s": 1.0, "corpus_cold_s": 1.0}},
        {"scale": "full",
         "results": {"calls_cold_s": 2.0, "corpus_cold_s": 1.0}},
    ]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": runs})) == 1


def test_floor_families_apply_only_when_present(tmp_path):
    """A full-scale run recorded before a family's harness phase existed
    must stay valid: floors gate per family, on that family's metrics."""
    tool = _load_tool()
    pre_streaming = [
        {"scale": "full",
         "results": {"calls_vec_speedup": 9.0, "corpus_vec_speedup": 8.0}},
    ]
    assert tool.check(
        _write(tmp_path, {"schema": 1, "runs": pre_streaming})
    ) == 0
    pre_everything = [{"scale": "full", "results": {"calls_cold_s": 1.0}}]
    assert tool.check(
        _write(tmp_path, {"schema": 1, "runs": pre_everything})
    ) == 0


def test_floor_violation_fails_within_its_family(tmp_path):
    tool = _load_tool()
    runs = [
        {"scale": "full",
         "results": {"calls_vec_speedup": 9.0, "corpus_vec_speedup": 8.0,
                     "streaming_incremental_speedup": 1.2}},
    ]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": runs})) == 1


def test_all_floors_met_passes(tmp_path):
    tool = _load_tool()
    runs = [
        {"scale": "full",
         "results": {"calls_vec_speedup": 9.0, "corpus_vec_speedup": 8.0,
                     "streaming_incremental_speedup": 13.0}},
    ]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": runs})) == 0


def test_simulated_streaming_metric_has_no_noise_floor(tmp_path):
    """streaming_detect_latency_s is simulated time: tiny absolute
    drifts are real behaviour changes and must fail the ratio gate."""
    tool = _load_tool()
    runs = [
        {"scale": "full", "results": {"streaming_detect_latency_s": 0.010}},
        {"scale": "full", "results": {"streaming_detect_latency_s": 0.020}},
    ]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": runs})) == 1


def test_prediction_floor_family(tmp_path):
    """The prediction family gates batched speedup and rows/sec floors,
    and only binds when a full-scale run records one of its metrics."""
    tool = _load_tool()
    pre_prediction = [
        {"scale": "full",
         "results": {"calls_vec_speedup": 9.0, "corpus_vec_speedup": 8.0}},
    ]
    assert tool.check(
        _write(tmp_path, {"schema": 1, "runs": pre_prediction})
    ) == 0
    slow_inference = [
        {"scale": "full",
         "results": {"prediction_batch_speedup": 3.0,
                     "prediction_rows_per_s": 500000.0}},
    ]
    assert tool.check(
        _write(tmp_path, {"schema": 1, "runs": slow_inference})
    ) == 1
    low_throughput = [
        {"scale": "full",
         "results": {"prediction_batch_speedup": 40.0,
                     "prediction_rows_per_s": 50000.0}},
    ]
    assert tool.check(
        _write(tmp_path, {"schema": 1, "runs": low_throughput})
    ) == 1
    healthy = [
        {"scale": "full",
         "results": {"prediction_batch_speedup": 40.0,
                     "prediction_rows_per_s": 2000000.0}},
    ]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": healthy})) == 0


def test_simulated_prediction_p99_has_no_noise_floor(tmp_path):
    """prediction_soak_p99_coalesced_s is simulated time: small drifts
    are behaviour changes, never host noise, so the ratio gate binds."""
    tool = _load_tool()
    runs = [
        {"scale": "full",
         "results": {"prediction_soak_p99_coalesced_s": 0.020}},
        {"scale": "full",
         "results": {"prediction_soak_p99_coalesced_s": 0.040}},
    ]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": runs})) == 1


def test_integrity_floor_family(tmp_path):
    """The integrity family floors the robust path's throughput, and
    only binds on full-scale runs that record its metric."""
    tool = _load_tool()
    meets = [
        {"scale": "full",
         "results": {"integrity_rows_per_s": 50000.0}},
    ]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": meets})) == 0
    below = [
        {"scale": "full",
         "results": {"integrity_rows_per_s": 5000.0}},
    ]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": below})) == 1


def test_simulated_integrity_detect_has_no_noise_floor(tmp_path):
    """integrity_detect_latency_s is simulated time: a small absolute
    drift is a gate behaviour change and must fail the ratio gate."""
    tool = _load_tool()
    runs = [
        {"scale": "full", "results": {"integrity_detect_latency_s": 0.40}},
        {"scale": "full", "results": {"integrity_detect_latency_s": 0.80}},
    ]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": runs})) == 1


def test_integrity_robust_agg_regression_detected(tmp_path):
    tool = _load_tool()
    runs = [
        {"scale": "full", "results": {"integrity_robust_agg_s": 1.0}},
        {"scale": "full", "results": {"integrity_robust_agg_s": 2.0}},
    ]
    assert tool.check(_write(tmp_path, {"schema": 1, "runs": runs})) == 1

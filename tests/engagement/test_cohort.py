"""Tests for cohort filtering and condition windows."""

import datetime as dt

import pytest

from repro.engagement.cohort import (
    PAPER_CONTROL_WINDOWS,
    CohortFilter,
    ConditionWindow,
    apply_windows,
    control_windows_except,
)
from repro.errors import AnalysisError
from tests.telemetry.test_schema import network_agg, participant


class TestCohortFilter:
    def test_keeps_only_cohort_calls(self, small_dataset):
        cohort = CohortFilter().apply(small_dataset)
        for call in cohort:
            assert call.is_enterprise
            assert call.start.weekday() < 5
            assert 9 <= call.start.hour < 20
            assert call.size >= 3
            assert set(call.countries) <= {"US"}

    def test_actually_removes_something(self, small_dataset):
        cohort = CohortFilter().apply(small_dataset)
        assert 0 < len(cohort) < len(small_dataset)

    def test_permissive_keeps_everything(self, small_dataset):
        assert len(CohortFilter.permissive().apply(small_dataset)) == len(
            small_dataset
        )

    def test_rejects_bad_hours(self):
        with pytest.raises(AnalysisError):
            CohortFilter(start_hour=20, end_hour=9)

    def test_rejects_bad_min_participants(self):
        with pytest.raises(AnalysisError):
            CohortFilter(min_participants=0)


class TestConditionWindow:
    def test_contains(self):
        window = ConditionWindow("latency_ms", 0, 40)
        p = participant()  # latency 20
        assert window.contains(p)

    def test_excludes(self):
        window = ConditionWindow("latency_ms", 0, 10)
        assert not window.contains(participant())

    def test_rejects_unknown_metric(self):
        with pytest.raises(AnalysisError):
            ConditionWindow("rtt", 0, 1)

    def test_rejects_reversed_bounds(self):
        with pytest.raises(AnalysisError):
            ConditionWindow("latency_ms", 10, 0)


class TestPaperWindows:
    def test_paper_values(self):
        """§3.2's exact control windows."""
        assert PAPER_CONTROL_WINDOWS["latency_ms"].high == 40.0
        assert PAPER_CONTROL_WINDOWS["loss_pct"].high == 0.2
        assert PAPER_CONTROL_WINDOWS["jitter_ms"].high == 5.0
        assert PAPER_CONTROL_WINDOWS["bandwidth_mbps"].low == 3.0
        assert PAPER_CONTROL_WINDOWS["bandwidth_mbps"].high == 4.0

    def test_except_excludes_target(self):
        windows = control_windows_except("latency_ms")
        assert len(windows) == 3
        assert all(w.metric != "latency_ms" for w in windows)

    def test_except_rejects_unknown(self):
        with pytest.raises(AnalysisError):
            control_windows_except("rtt")


class TestApplyWindows:
    def test_conjunction(self):
        # participant() carries 20.0 for every metric aggregate.
        windows = [
            ConditionWindow("latency_ms", 0, 40),
            ConditionWindow("loss_pct", 0, 30),
        ]
        kept = apply_windows([participant()], windows)
        assert len(kept) == 1
        tight = [ConditionWindow("latency_ms", 0, 5)]
        assert apply_windows([participant()], tight) == []

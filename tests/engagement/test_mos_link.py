"""Tests for the Fig. 4 engagement↔MOS analysis."""

import numpy as np
import pytest

from repro.engagement.mos_link import mos_by_engagement
from repro.errors import AnalysisError


class TestMosByEngagement:
    def test_curves_and_correlations(self, small_dataset):
        result = mos_by_engagement(small_dataset.participants())
        assert result.n_rated >= 20
        assert set(result.curves) == {"presence_pct", "cam_on_pct", "mic_on_pct"}
        assert set(result.correlations) == set(result.curves)

    def test_engagement_positively_correlates_with_mos(self, small_dataset):
        """§3.3: engagement metrics correlate well with MOS."""
        result = mos_by_engagement(small_dataset.participants())
        assert result.correlations["presence_pct"] > 0.1
        assert all(r > -0.1 for r in result.correlations.values())

    def test_all_correlations_meaningfully_positive(self, small_dataset):
        """At this fixture's sample size (<100 rated) the *ranking* among
        the three metrics is noise; the paper-faithful strict assertion
        (Presence strongest) lives in the Fig. 4 benchmark, which runs on
        >1000 rated sessions.  Here we assert the substantive part: every
        engagement metric correlates positively and non-trivially."""
        result = mos_by_engagement(small_dataset.participants())
        assert all(r > 0.15 for r in result.correlations.values())

    def test_curve_rises_with_engagement(self, small_dataset):
        result = mos_by_engagement(small_dataset.participants())
        curve = result.curves["presence_pct"]
        finite = curve.stat[~np.isnan(curve.stat)]
        if len(finite) >= 2:
            assert finite[-1] >= finite[0]

    def test_rejects_too_few_rated(self):
        with pytest.raises(AnalysisError):
            mos_by_engagement([])

"""Tests for engagement-curve binning."""

import numpy as np
import pytest

from repro.engagement.binning import engagement_curve
from repro.engagement.cohort import ConditionWindow
from repro.errors import AnalysisError
from tests.telemetry.test_schema import participant


def participants_with_latency(values, presence=None):
    out = []
    for i, lat in enumerate(values):
        p = participant()
        network = {
            m: {"mean": 1.0, "median": 1.0, "p95": 1.0}
            for m in ("loss_pct", "jitter_ms", "bandwidth_mbps")
        }
        network["latency_ms"] = {"mean": lat, "median": lat, "p95": lat}
        out.append(
            type(p)(
                call_id="c", user_id=f"u{i}", platform="windows_pc",
                country="US", session_duration_s=600,
                presence_pct=presence[i] if presence else 80.0,
                cam_on_pct=50.0, mic_on_pct=40.0, dropped_early=False,
                network=network,
            )
        )
    return out


class TestEngagementCurve:
    def test_basic_binning(self):
        pool = participants_with_latency(
            [10, 20, 110, 120], presence=[90, 70, 50, 30]
        )
        curve = engagement_curve(pool, "latency_ms", "presence_pct",
                                 edges=[0, 100, 200])
        assert curve.stat[0] == pytest.approx(80.0)
        assert curve.stat[1] == pytest.approx(40.0)

    def test_dropped_early_metric(self):
        pool = participants_with_latency([10, 20])
        curve = engagement_curve(pool, "latency_ms", "dropped_early",
                                 edges=[0, 100])
        assert curve.stat[0] == 0.0  # nobody dropped

    def test_control_windows_filter(self):
        pool = participants_with_latency([10, 20])
        tight = [ConditionWindow("loss_pct", 5, 10)]  # excludes everyone
        with pytest.raises(AnalysisError):
            engagement_curve(pool, "latency_ms", "presence_pct",
                             edges=[0, 100], control_windows=tight)

    def test_min_bin_count_masks(self):
        pool = participants_with_latency([10, 20, 30, 150])
        curve = engagement_curve(pool, "latency_ms", "presence_pct",
                                 edges=[0, 100, 200], min_bin_count=2)
        assert not np.isnan(curve.stat[0])
        assert np.isnan(curve.stat[1])

    def test_rejects_unknown_metrics(self):
        pool = participants_with_latency([10])
        with pytest.raises(AnalysisError):
            engagement_curve(pool, "rtt", "presence_pct", edges=[0, 1])
        with pytest.raises(AnalysisError):
            engagement_curve(pool, "latency_ms", "smiles", edges=[0, 1])

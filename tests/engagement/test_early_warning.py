"""Tests for the early-warning drift detector."""

import numpy as np
import pytest

from repro.engagement.early_warning import (
    DriftDetector,
    detection_latency_experiment,
    run_detector,
)
from repro.errors import AnalysisError
from repro.rng import derive


def stable_days(rng, n_days, mean=50.0, sd=10.0, per_day=200):
    return [list(rng.normal(mean, sd, size=per_day)) for _ in range(n_days)]


class TestDriftDetector:
    def test_no_alarm_on_stable_stream(self):
        rng = derive(81, "ew")
        detector = DriftDetector()
        for day in stable_days(rng, 60):
            detector.observe(day)
        assert not detector.has_alarmed

    def test_alarm_on_clear_drop(self):
        rng = derive(82, "ew")
        detector = DriftDetector()
        for day in stable_days(rng, 20):
            detector.observe(day)
        for day in stable_days(rng, 5, mean=40.0):
            detector.observe(day)
        assert detector.has_alarmed

    def test_drop_direction_ignores_rises(self):
        rng = derive(83, "ew")
        detector = DriftDetector(direction="drop")
        for day in stable_days(rng, 20):
            detector.observe(day)
        for day in stable_days(rng, 5, mean=70.0):
            detector.observe(day)
        assert not detector.has_alarmed

    def test_both_direction_catches_rises(self):
        rng = derive(84, "ew")
        detector = DriftDetector(direction="both")
        for day in stable_days(rng, 20):
            detector.observe(day)
        for day in stable_days(rng, 5, mean=70.0):
            detector.observe(day)
        assert detector.has_alarmed

    def test_empty_day_is_noop(self):
        detector = DriftDetector()
        assert detector.observe([]) is None
        assert not detector.is_warmed_up

    def test_warmup_returns_none(self):
        rng = derive(85, "ew")
        detector = DriftDetector(warmup_days=5)
        zs = [detector.observe(day) for day in stable_days(rng, 5)]
        assert all(z is None for z in zs)
        assert detector.is_warmed_up

    def test_consecutive_days_requirement(self):
        rng = derive(86, "ew")
        detector = DriftDetector(consecutive_days=3)
        for day in stable_days(rng, 20):
            detector.observe(day)
        detector.observe(list(rng.normal(10, 1, size=200)))  # one bad day
        detector.observe(list(rng.normal(50, 10, size=200)))  # recovers
        assert not detector.has_alarmed

    @pytest.mark.parametrize("kwargs", [
        dict(warmup_days=1),
        dict(z_threshold=0),
        dict(consecutive_days=0),
        dict(direction="sideways"),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(AnalysisError):
            DriftDetector(**kwargs)


class TestRunDetector:
    def test_detection_latency_measured_from_onset(self):
        rng = derive(87, "ew")
        days = stable_days(rng, 30) + stable_days(rng, 10, mean=38.0)
        outcome = run_detector(days, onset_day=30, metric="engagement")
        assert not outcome.false_alarm
        assert outcome.days_to_detect is not None
        assert outcome.days_to_detect <= 4

    def test_never_fires_reports_none(self):
        rng = derive(88, "ew")
        outcome = run_detector(stable_days(rng, 40), onset_day=39, metric="x")
        assert outcome.days_to_detect is None
        assert not outcome.false_alarm

    def test_rejects_bad_onset(self):
        with pytest.raises(AnalysisError):
            run_detector([[1.0]], onset_day=5, metric="x")


class TestLatencyExperiment:
    def test_engagement_beats_mos(self):
        """The §3.3 claim, quantified: dense implicit signals confirm a
        regression faster than sparse explicit ones."""
        outcomes = detection_latency_experiment(derive(89, "ew"))
        engagement = outcomes["engagement"]
        mos = outcomes["mos"]
        assert not engagement.false_alarm
        assert engagement.days_to_detect is not None
        assert engagement.days_to_detect <= 3
        # MOS either never confirms in the horizon or confirms later.
        assert (
            mos.days_to_detect is None
            or mos.days_to_detect > engagement.days_to_detect
        )

    def test_big_mos_drop_eventually_detected(self):
        outcomes = detection_latency_experiment(
            derive(90, "ew"),
            mos_drop=2.0, mos_sample_rate=0.2, n_days=80, onset_day=40,
        )
        assert outcomes["mos"].days_to_detect is not None

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(AnalysisError):
            detection_latency_experiment(derive(91, "ew"), mos_sample_rate=0)

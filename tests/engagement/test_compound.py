"""Tests for the Fig. 2 compound grid."""

import numpy as np
import pytest

from repro.engagement.compound import CompoundGrid, compound_presence_grid
from repro.errors import AnalysisError
from tests.engagement.test_binning import participants_with_latency
from tests.telemetry.test_schema import participant


def participant_at(lat, loss, presence):
    base = participant()
    network = {
        "latency_ms": {"mean": lat, "median": lat, "p95": lat},
        "loss_pct": {"mean": loss, "median": loss, "p95": loss},
        "jitter_ms": {"mean": 1.0, "median": 1.0, "p95": 1.0},
        "bandwidth_mbps": {"mean": 3.5, "median": 3.5, "p95": 3.5},
    }
    return type(base)(
        call_id="c", user_id="u", platform="windows_pc", country="US",
        session_duration_s=600, presence_pct=presence, cam_on_pct=50,
        mic_on_pct=40, dropped_early=False, network=network,
    )


class TestCompoundGrid:
    def test_cells_populated_correctly(self):
        pool = (
            [participant_at(10, 0.1, 95)] * 5
            + [participant_at(280, 4.0, 45)] * 5
        )
        grid = compound_presence_grid(pool, min_cell_count=3)
        assert grid.best() == pytest.approx(95.0)
        assert grid.worst() == pytest.approx(45.0)

    def test_max_dip(self):
        pool = (
            [participant_at(10, 0.1, 100)] * 5
            + [participant_at(280, 4.0, 50)] * 5
        )
        grid = compound_presence_grid(pool, min_cell_count=3)
        assert grid.max_dip_pct() == pytest.approx(50.0)

    def test_relative_grid(self):
        pool = (
            [participant_at(10, 0.1, 100)] * 5
            + [participant_at(280, 4.0, 25)] * 5
        )
        rel = compound_presence_grid(pool, min_cell_count=3).relative()
        finite = rel[~np.isnan(rel)]
        assert finite.max() == pytest.approx(100.0)
        assert finite.min() == pytest.approx(25.0)

    def test_sparse_cells_stay_nan(self):
        pool = [participant_at(10, 0.1, 90)] * 2
        grid = compound_presence_grid(pool, min_cell_count=5)
        assert np.isnan(grid.stat).all()
        with pytest.raises(AnalysisError):
            grid.best()

    def test_counts_track_samples(self):
        pool = [participant_at(10, 0.1, 90)] * 7
        grid = compound_presence_grid(pool, min_cell_count=1)
        assert grid.counts.sum() == 7

    def test_rejects_empty_pool(self):
        with pytest.raises(AnalysisError):
            compound_presence_grid([])

    def test_rejects_bad_edges(self):
        with pytest.raises(AnalysisError):
            compound_presence_grid(
                [participant_at(10, 0.1, 90)], latency_edges=(5,)
            )

    def test_compounding_emerges_from_simulation(self, small_dataset):
        """Joint degradation hurts more than the best cell by a wide margin."""
        pool = list(small_dataset.participants())
        grid = compound_presence_grid(
            pool,
            latency_edges=(0, 100, 300),
            loss_edges=(0, 0.5, 5.0),
            min_cell_count=5,
        )
        if not np.isnan(grid.stat).all():
            assert grid.max_dip_pct() >= 0.0

"""Tests for the Fig. 1 pipeline on sweep data (controlled ground truth)."""

import numpy as np
import pytest

from repro.engagement.curves import DEFAULT_EDGES, fig1_curves
from repro.engagement.metrics import engagement_frame, normalize_to_best
from repro.errors import AnalysisError
from repro.netsim.link import LinkProfile
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.generator import focal_participants


@pytest.fixture(scope="module")
def latency_sweep():
    gen = CallDatasetGenerator(GeneratorConfig(n_calls=0, seed=55))
    base = LinkProfile(base_latency_ms=20, loss_rate=0.001, jitter_ms=2,
                       bandwidth_mbps=3.5)
    ds = gen.generate_sweep(
        base, "latency", [15.0, 80.0, 150.0, 290.0], calls_per_value=80
    )
    return focal_participants(ds)


class TestFig1Curves:
    def test_panels_cover_all_metrics(self, latency_sweep):
        result = fig1_curves(latency_sweep, use_control_windows=False)
        assert set(result.curves) == set(DEFAULT_EDGES)
        for panel in result.curves.values():
            assert set(panel) == {"presence_pct", "cam_on_pct", "mic_on_pct"}

    def test_latency_panel_monotone_mic(self, latency_sweep):
        result = fig1_curves(latency_sweep, use_control_windows=False,
                             min_bin_count=10)
        curve = result.panel("latency_ms")["mic_on_pct"]
        finite = curve.stat[~np.isnan(curve.stat)]
        assert len(finite) >= 3
        assert finite[0] > finite[-1]

    def test_relative_drop_matches_paper_direction(self, latency_sweep):
        result = fig1_curves(latency_sweep, use_control_windows=False,
                             min_bin_count=10)
        drop = result.relative_drop_pct("latency_ms", "mic_on_pct")
        assert drop > 15.0  # paper: >25% at 300 ms

    def test_slope_steeper_before_150(self, latency_sweep):
        result = fig1_curves(latency_sweep, use_control_windows=False,
                             min_bin_count=10)
        early = result.slope("latency_ms", "mic_on_pct", 0, 170)
        late = result.slope("latency_ms", "mic_on_pct", 140, 300)
        assert early < 0
        assert abs(early) > abs(late)

    def test_include_drop_adds_curve(self, latency_sweep):
        result = fig1_curves(latency_sweep, use_control_windows=False,
                             include_drop=True)
        assert "dropped_early" in result.panel("latency_ms")

    def test_unknown_panel_raises(self, latency_sweep):
        result = fig1_curves(latency_sweep, use_control_windows=False)
        with pytest.raises(AnalysisError):
            result.panel("rtt")

    def test_empty_pool_raises(self):
        with pytest.raises(AnalysisError):
            fig1_curves([])


class TestMetricsHelpers:
    def test_engagement_frame_columns(self, latency_sweep):
        frame = engagement_frame(latency_sweep)
        assert set(frame) >= {
            "presence_pct", "cam_on_pct", "mic_on_pct",
            "latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps",
            "dropped_early", "rating", "conditioning",
        }
        n = len(latency_sweep)
        assert all(len(col) == n for col in frame.values())

    def test_engagement_frame_rejects_empty(self):
        with pytest.raises(AnalysisError):
            engagement_frame([])

    def test_normalize_to_best(self):
        normalized = normalize_to_best([50.0, 100.0, np.nan])
        assert normalized[1] == 100.0
        assert normalized[0] == 50.0
        assert np.isnan(normalized[2])

    def test_normalize_rejects_all_nan(self):
        with pytest.raises(AnalysisError):
            normalize_to_best([np.nan])

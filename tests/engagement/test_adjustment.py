"""Tests for §6 confounder adjustment."""

import numpy as np
import pytest

from repro.engagement.adjustment import (
    adjusted_curve,
    composition_bias_demo,
    stratify_by_conditioning,
    stratify_by_device_class,
    stratify_by_platform,
)
from repro.errors import AnalysisError
from tests.telemetry.test_schema import participant


def make_participant(platform, latency, mic_on, conditioning=0.5, uid="u"):
    base = participant()
    network = {
        "latency_ms": {"mean": latency, "median": latency, "p95": latency},
        "loss_pct": {"mean": 0.1, "median": 0.1, "p95": 0.1},
        "jitter_ms": {"mean": 2.0, "median": 2.0, "p95": 2.0},
        "bandwidth_mbps": {"mean": 3.5, "median": 3.5, "p95": 3.5},
    }
    return type(base)(
        call_id="c", user_id=uid, platform=platform, country="US",
        session_duration_s=600, presence_pct=80, cam_on_pct=50,
        mic_on_pct=mic_on, dropped_early=False, network=network,
        conditioning=conditioning,
    )


def confounded_pool():
    """PC users: good networks, high mic baseline.  Mobile: bad networks,
    low mic baseline.  The network itself has NO effect within strata —
    all the raw slope is composition."""
    pool = []
    for i in range(60):
        pool.append(make_participant("windows_pc", 20, 60, uid=f"p{i}"))
        pool.append(make_participant("android_mobile", 250, 30, uid=f"m{i}"))
    # Minority crossovers give every stratum support in both bins.
    for i in range(10):
        pool.append(make_participant("windows_pc", 250, 60, uid=f"px{i}"))
        pool.append(make_participant("android_mobile", 20, 30, uid=f"mx{i}"))
    return pool


class TestStratifiers:
    def test_device_class(self):
        assert stratify_by_device_class(make_participant("ios_mobile", 1, 1)) == "mobile"
        assert stratify_by_device_class(make_participant("mac_pc", 1, 1)) == "pc"

    def test_conditioning_bands(self):
        assert stratify_by_conditioning(
            make_participant("mac_pc", 1, 1, conditioning=0.1)
        ) == "hardened"
        assert stratify_by_conditioning(
            make_participant("mac_pc", 1, 1, conditioning=0.5)
        ) == "average"
        assert stratify_by_conditioning(
            make_participant("mac_pc", 1, 1, conditioning=0.9)
        ) == "sensitive"

    def test_platform_identity(self):
        assert stratify_by_platform(make_participant("mac_pc", 1, 1)) == "mac_pc"


class TestAdjustedCurve:
    def test_pure_composition_bias_removed(self):
        """With zero within-stratum effect, the adjusted curve is flat."""
        result = adjusted_curve(
            confounded_pool(), "latency_ms", "mic_on_pct",
            edges=[0, 100, 300], stratify=stratify_by_device_class,
        )
        raw_slope = result.raw.stat[1] - result.raw.stat[0]
        adjusted_slope = result.adjusted.stat[1] - result.adjusted.stat[0]
        assert raw_slope < -10  # naive view: latency destroys Mic On
        assert abs(adjusted_slope) < 2  # adjusted view: no effect

    def test_confounder_gap_positive_when_confounded(self):
        result = adjusted_curve(
            confounded_pool(), "latency_ms", "mic_on_pct",
            edges=[0, 100, 300], stratify=stratify_by_device_class,
        )
        assert result.confounder_gap() > 3

    def test_reference_mix_sums_to_one(self):
        result = adjusted_curve(
            confounded_pool(), "latency_ms", "mic_on_pct",
            edges=[0, 100, 300], stratify=stratify_by_device_class,
        )
        assert sum(result.reference_mix.values()) == pytest.approx(1.0)

    def test_thin_strata_leave_nan(self):
        pool = confounded_pool()
        result = adjusted_curve(
            pool, "latency_ms", "mic_on_pct",
            edges=[0, 100, 200, 300], stratify=stratify_by_device_class,
            min_stratum_bin_count=5,
        )
        assert np.isnan(result.adjusted.stat[1])  # empty middle bin

    def test_single_stratum_rejected(self):
        pool = [make_participant("windows_pc", 20, 60, uid=f"u{i}")
                for i in range(20)]
        with pytest.raises(AnalysisError):
            adjusted_curve(pool, "latency_ms", "mic_on_pct", edges=[0, 300],
                           stratify=stratify_by_device_class)

    def test_rejects_unknown_metrics(self):
        with pytest.raises(AnalysisError):
            adjusted_curve(confounded_pool(), "rtt", "mic_on_pct", [0, 1])
        with pytest.raises(AnalysisError):
            adjusted_curve(confounded_pool(), "latency_ms", "smiles", [0, 1])

    def test_empty_pool_rejected(self):
        with pytest.raises(AnalysisError):
            adjusted_curve([], "latency_ms", "mic_on_pct", [0, 1])


class TestCompositionBiasDemo:
    def test_reports_bias_decomposition(self):
        numbers = composition_bias_demo(
            confounded_pool(), edges=(0, 100, 300)
        )
        assert numbers["raw_drop_pct"] > numbers["adjusted_drop_pct"]
        assert numbers["composition_bias_pct"] == pytest.approx(
            numbers["raw_drop_pct"] - numbers["adjusted_drop_pct"]
        )

    def test_on_simulated_data_network_effect_survives(self, small_dataset):
        """On the real simulation both effects exist: adjustment shrinks
        but does not erase the latency effect."""
        numbers = composition_bias_demo(
            small_dataset.participants(), edges=(0, 120, 350)
        )
        assert numbers["adjusted_drop_pct"] > 0  # network genuinely matters

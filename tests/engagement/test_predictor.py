"""Tests for the §5 MOS predictor."""

import numpy as np
import pytest

from repro.engagement.predictor import (
    ALL_FEATURES,
    NETWORK_FEATURES,
    MosPredictor,
    train_test_evaluate,
)
from repro.errors import AnalysisError


class TestMosPredictor:
    def test_fit_predict_in_range(self, small_dataset):
        rated = small_dataset.rated_participants()
        model = MosPredictor().fit(rated)
        predictions = model.predict(rated)
        assert (predictions >= 1).all() and (predictions <= 5).all()

    def test_unfitted_predict_raises(self, small_dataset):
        with pytest.raises(AnalysisError):
            MosPredictor().predict(list(small_dataset.participants())[:3])

    def test_weights_exposed(self, small_dataset):
        model = MosPredictor().fit(small_dataset.rated_participants())
        weights = model.weights()
        assert set(weights) == set(ALL_FEATURES)

    def test_rejects_unknown_feature(self):
        with pytest.raises(AnalysisError):
            MosPredictor(features=["shoe_size"])

    def test_rejects_empty_features(self):
        with pytest.raises(AnalysisError):
            MosPredictor(features=[])

    def test_rejects_negative_l2(self):
        with pytest.raises(AnalysisError):
            MosPredictor(l2=-1)

    def test_needs_enough_rated_sessions(self, small_dataset):
        rated = small_dataset.rated_participants()[:3]
        with pytest.raises(AnalysisError):
            MosPredictor().fit(rated)

    def test_predict_empty_returns_empty(self, small_dataset):
        model = MosPredictor().fit(small_dataset.rated_participants())
        assert model.predict([]).shape == (0,)


class TestTrainTestEvaluate:
    def test_report_fields(self, small_dataset):
        report = train_test_evaluate(small_dataset.participants())
        assert report.n_train > 0 and report.n_test > 0
        assert report.mae >= 0
        assert report.rmse >= report.mae - 1e-9
        assert -1 <= report.correlation <= 1

    def test_deterministic_split(self, small_dataset):
        a = train_test_evaluate(small_dataset.participants(), seed=5)
        b = train_test_evaluate(small_dataset.participants(), seed=5)
        assert a.mae == b.mae

    def test_engagement_features_add_signal(self, small_dataset):
        """§5's point: implicit actions help predict the explicit metric.

        With <100 rated sessions the single-split comparison is noisy, so
        the tolerance is loose here; the S3 benchmark asserts the ordering
        at scale (>1000 rated sessions)."""
        net_only = train_test_evaluate(
            small_dataset.participants(), features=NETWORK_FEATURES
        )
        with_engagement = train_test_evaluate(
            small_dataset.participants(), features=ALL_FEATURES
        )
        assert with_engagement.correlation >= net_only.correlation - 0.12

    def test_rejects_bad_test_share(self, small_dataset):
        with pytest.raises(AnalysisError):
            train_test_evaluate(small_dataset.participants(), test_share=1.5)

"""Tests for the Fig. 3 per-platform analysis."""

import numpy as np
import pytest

from repro.engagement.platform import platform_curves, sensitivity_ranking
from repro.errors import AnalysisError
from repro.netsim.link import LinkProfile
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.generator import focal_participants


@pytest.fixture(scope="module")
def platform_sweep():
    """Loss sweeps with the focal participant pinned to each platform."""
    base = LinkProfile(base_latency_ms=25, loss_rate=0.001, jitter_ms=2,
                       bandwidth_mbps=3.5)
    pools = {}
    for key in ("windows_pc", "android_mobile"):
        gen = CallDatasetGenerator(GeneratorConfig(n_calls=0, seed=66))
        ds = gen.generate_sweep(
            base, "loss", [0.001, 0.02, 0.04], calls_per_value=35,
            platform_key=key,
        )
        pools[key] = focal_participants(ds)
    return pools


class TestPlatformCurves:
    def test_curves_per_platform(self, platform_sweep):
        pool = platform_sweep["windows_pc"] + platform_sweep["android_mobile"]
        curves = platform_curves(
            pool, edges=np.linspace(0, 5, 6),
            use_control_windows=False, min_bin_count=3,
            min_platform_sessions=20,
        )
        assert "windows_pc" in curves
        assert "android_mobile" in curves

    def test_mobile_more_sensitive(self, platform_sweep):
        pool = platform_sweep["windows_pc"] + platform_sweep["android_mobile"]
        curves = platform_curves(
            pool, edges=np.linspace(0, 5, 6),
            use_control_windows=False, min_bin_count=3,
            min_platform_sessions=20,
        )
        ranking = sensitivity_ranking(curves)
        assert ranking["android_mobile"] > ranking["windows_pc"]

    def test_small_platforms_omitted(self, platform_sweep):
        pool = platform_sweep["windows_pc"][:5]
        with pytest.raises(AnalysisError):
            platform_curves(pool, min_platform_sessions=30,
                            use_control_windows=False)

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            platform_curves([])

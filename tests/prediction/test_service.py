"""The prediction engine's cost model and degradation ladder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.usaas.query import UsaasQuery
from repro.core.usaas.service import UsaasService
from repro.errors import AnalysisError, ConfigError, QueryError
from repro.perf.columnar import ParticipantColumns
from repro.prediction import (
    ColumnarMosPredictor,
    MosPredictionAnswer,
    PredictionCostModel,
    PredictionEngine,
    emodel_prior_from_arrays,
    emodel_prior_mos,
)
from repro.resilience.clock import ManualClock
from repro.serving.deadline import Deadline


def _engine(rated_columns, fitted_model, **kwargs):
    clock = ManualClock()
    return PredictionEngine(fitted_model, rated_columns, clock=clock,
                            **kwargs), clock


class TestCostModel:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PredictionCostModel(base_s=-1.0)
        with pytest.raises(ConfigError):
            PredictionCostModel(fallback_scale=0.0)
        with pytest.raises(ConfigError):
            PredictionCostModel(fallback_scale=1.5)

    def test_fallback_is_strictly_cheaper(self):
        cost = PredictionCostModel()
        assert cost.fallback_cost_s(100) < cost.batch_cost_s(100)

    def test_estimate_never_drops_below_configured(self, rated_columns,
                                                   fitted_model):
        engine, clock = _engine(rated_columns, fitted_model)
        configured = engine.cost_model.batch_cost_s(10)
        # A lucky fast batch must not lower the estimate...
        engine._observe(1e-9, 10)
        assert engine.estimated_batch_cost_s(10) == configured
        # ...but a slow one raises it.
        engine._observe(1.0, 10)
        assert engine.estimated_batch_cost_s(10) > configured


class TestValidation:
    def test_requires_fitted_model(self, rated_columns):
        with pytest.raises(AnalysisError):
            PredictionEngine(ColumnarMosPredictor(), rated_columns,
                             clock=ManualClock())

    def test_requires_non_empty_block(self, fitted_model):
        with pytest.raises(ConfigError):
            PredictionEngine(fitted_model, ParticipantColumns.from_records([]),
                             clock=ManualClock())

    def test_check_rows_rejects_out_of_range(self, rated_columns,
                                             fitted_model):
        engine, _ = _engine(rated_columns, fitted_model)
        with pytest.raises(ConfigError):
            engine.check_rows((0, engine.n_rows))
        assert engine.check_rows(None).shape == (engine.n_rows,)
        assert engine.check_rows((3, 1)).tolist() == [3, 1]


class TestLadder:
    def test_roomy_deadline_uses_the_full_model(self, rated_columns,
                                                fitted_model):
        engine, clock = _engine(rated_columns, fitted_model)
        rows = engine.check_rows((0, 1, 2))
        answer = engine.predict_rows(
            rows, deadline=Deadline.start(clock, budget_s=10.0)
        )
        assert isinstance(answer, MosPredictionAnswer)
        assert not answer.degraded and answer.model == "ridge"
        expected = fitted_model.predict_columns(rated_columns, rows)
        assert answer.predictions.tobytes() == expected.tobytes()

    def test_tight_deadline_falls_back_to_emodel(self, rated_columns,
                                                 fitted_model):
        engine, clock = _engine(rated_columns, fitted_model)
        rows = engine.check_rows(None)
        tight = engine.estimated_batch_cost_s(len(rows)) / 2
        answer = engine.predict_rows(
            rows, deadline=Deadline.start(clock, budget_s=tight)
        )
        assert answer.degraded and answer.model == "emodel"
        expected = emodel_prior_mos(rated_columns, rows)
        assert answer.predictions.tobytes() == expected.tobytes()
        assert engine.fallback_batches == 1

    def test_no_deadline_never_degrades(self, rated_columns, fitted_model):
        engine, _ = _engine(rated_columns, fitted_model)
        answer = engine.predict_rows(engine.check_rows(None))
        assert not answer.degraded

    def test_charge_clock_advances_the_injected_clock(self, rated_columns,
                                                      fitted_model):
        engine, clock = _engine(rated_columns, fitted_model,
                                charge_clock=True)
        rows = engine.check_rows((0, 1))
        before = clock.now()
        engine.predict_rows(rows)
        assert clock.now() - before == pytest.approx(
            engine.cost_model.batch_cost_s(2)
        )

    def test_fallback_charges_the_cheaper_cost(self, rated_columns,
                                               fitted_model):
        engine, clock = _engine(rated_columns, fitted_model,
                                charge_clock=True)
        rows = engine.check_rows(None)
        deadline = Deadline.start(clock, budget_s=1e-6)
        before = clock.now()
        answer = engine.predict_rows(rows, deadline=deadline)
        assert answer.degraded
        assert clock.now() - before == pytest.approx(
            engine.cost_model.fallback_cost_s(len(rows))
        )

    def test_metrics_account_batches_and_rows(self, rated_columns,
                                              fitted_model):
        engine, _ = _engine(rated_columns, fitted_model)
        engine.predict_rows(engine.check_rows((0, 1)), coalesced=2)
        engine.predict_rows(engine.check_rows((2,)))
        metrics = engine.metrics()
        assert metrics["batches"] == 2
        assert metrics["rows_predicted"] == 3
        assert metrics["coalesced_queries"] == 3
        assert metrics["mean_coalesced"] == pytest.approx(1.5)


class TestEmodelPrior:
    def test_prior_is_in_mos_range(self, rated_columns):
        prior = emodel_prior_mos(rated_columns)
        assert prior.shape == (len(rated_columns),)
        assert np.isfinite(prior).all()
        assert prior.min() >= 1.0 and prior.max() <= 5.0

    def test_worse_network_scores_worse(self):
        good = emodel_prior_from_arrays(
            np.array([30.0]), np.array([0.1]),
            np.array([5.0]), np.array([100.0]),
        )
        bad = emodel_prior_from_arrays(
            np.array([400.0]), np.array([8.0]),
            np.array([60.0]), np.array([1.0]),
        )
        assert bad[0] < good[0]


class TestQuerySurface:
    def test_rows_require_predict_mos_kind(self):
        with pytest.raises(QueryError):
            UsaasQuery(network="starlink", rows=(1, 2))

    def test_unknown_kind_rejected(self):
        with pytest.raises(QueryError):
            UsaasQuery(network="starlink", kind="mystery")

    def test_rows_normalised_to_int_tuple(self):
        query = UsaasQuery(network="starlink", kind="predict_mos",
                           rows=[np.int64(3), 1])
        assert query.rows == (3, 1)

    def test_empty_or_negative_rows_rejected(self):
        with pytest.raises(QueryError):
            UsaasQuery(network="starlink", kind="predict_mos", rows=())
        with pytest.raises(QueryError):
            UsaasQuery(network="starlink", kind="predict_mos", rows=(-1,))

    def test_service_answer_refuses_predictions(self):
        service = UsaasService()
        with pytest.raises(QueryError):
            service.answer(
                UsaasQuery(network="starlink", kind="predict_mos")
            )

"""Ground-truth grading: hand-checkable MAE/bias, per-platform split."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.prediction import GroundTruthReport, evaluate_ground_truth


class TestHandBuilt:
    def test_overall_mae_and_bias(self):
        report = evaluate_ground_truth(
            predictions=[3.0, 4.0, 2.0, 5.0],
            truth=[3.5, 3.0, 2.0, 4.0],
            platforms=["a", "a", "b", "b"],
        )
        # errors: -0.5, +1.0, 0.0, +1.0
        assert report.mae == pytest.approx(0.625)
        assert report.bias == pytest.approx(0.375)
        assert report.n == 4

    def test_per_platform_split(self):
        report = evaluate_ground_truth(
            predictions=[3.0, 4.0, 2.0, 5.0],
            truth=[3.5, 3.0, 2.0, 4.0],
            platforms=["a", "a", "b", "b"],
        )
        by_name = {p.platform: p for p in report.per_platform}
        assert set(by_name) == {"a", "b"}
        assert by_name["a"].mae == pytest.approx(0.75)
        assert by_name["a"].bias == pytest.approx(0.25)
        assert by_name["a"].n == 2
        assert by_name["b"].mae == pytest.approx(0.5)
        assert by_name["b"].bias == pytest.approx(0.5)

    def test_perfect_predictions(self):
        report = evaluate_ground_truth([1.0, 5.0], [1.0, 5.0], ["x", "x"])
        assert report.mae == 0.0 and report.bias == 0.0


class TestValidation:
    def test_shape_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            evaluate_ground_truth([1.0, 2.0], [1.0], ["a", "b"])

    def test_platform_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            evaluate_ground_truth([1.0, 2.0], [1.0, 2.0], ["a"])

    def test_empty_raises(self):
        with pytest.raises(AnalysisError):
            evaluate_ground_truth([], [], [])

    def test_2d_raises(self):
        with pytest.raises(AnalysisError):
            evaluate_ground_truth(
                np.ones((2, 2)), np.ones((2, 2)), ["a", "b"]
            )


class TestSerialisation:
    @pytest.fixture()
    def report(self) -> GroundTruthReport:
        return evaluate_ground_truth(
            predictions=[3.0, 4.0, 2.0],
            truth=[3.5, 3.0, 2.0],
            platforms=["meet", "zoom", "zoom"],
        )

    def test_as_dict_round_trips_through_json(self, report):
        import json

        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["n"] == 3
        assert set(payload["per_platform"]) == {"meet", "zoom"}
        assert payload["per_platform"]["meet"]["n"] == 1

    def test_table_lists_every_platform_and_the_total(self, report):
        table = report.table()
        for token in ("platform", "meet", "zoom", "(all)"):
            assert token in table
        # Header, rule, two platforms, the (all) row.
        assert len(table.splitlines()) == 5

"""Coalescer semantics: size/age flushing, FIFO order, server-level
latency bound on a ManualClock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.prediction import CoalescerConfig, PredictionCoalescer
from repro.prediction.soak import synthetic_prediction_server
from repro.core.usaas.query import UsaasQuery


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CoalescerConfig(max_batch=0)
        with pytest.raises(ConfigError):
            CoalescerConfig(max_delay_s=-0.1)

    def test_defaults(self):
        config = CoalescerConfig()
        assert config.max_batch >= 1
        assert config.max_delay_s >= 0


class TestBuffer:
    def test_flushes_by_size(self):
        c = PredictionCoalescer(CoalescerConfig(max_batch=3, max_delay_s=10))
        for i in range(7):
            c.add(f"t{i}", now=0.0)
        batches = c.flush_due(0.0)
        assert [len(b) for b in batches] == [3, 3]
        assert batches[0] == ["t0", "t1", "t2"]  # FIFO
        assert c.pending_count() == 1
        assert not c.due(0.0)

    def test_flushes_by_age(self):
        c = PredictionCoalescer(CoalescerConfig(max_batch=16, max_delay_s=0.05))
        c.add("old", now=0.0)
        assert not c.due(0.049)
        assert c.due(0.05)
        assert c.flush_due(0.05) == [["old"]]

    def test_flush_all_ignores_due(self):
        c = PredictionCoalescer(CoalescerConfig(max_batch=16, max_delay_s=10))
        c.add("a", now=0.0)
        c.add("b", now=0.0)
        assert not c.due(0.0)
        assert c.flush_all() == [["a", "b"]]
        assert not c.has_entries()

    def test_counters(self):
        c = PredictionCoalescer(CoalescerConfig(max_batch=2, max_delay_s=10))
        for i in range(5):
            c.add(i, now=0.0)
        c.flush_due(0.0)
        c.flush_all()
        assert c.flushed_batches == 3
        assert c.flushed_tickets == 5


class TestServerLatencyBound:
    """No buffered query waits past max_delay_s once the server is
    touched again — the coalescer's headline promise."""

    def test_age_due_flush_bounds_buffer_wait(self, rated_columns,
                                              fitted_model):
        max_delay_s = 0.02
        server, plan, engine = synthetic_prediction_server(
            rated_columns, fitted_model, seed=1,
            coalescer=CoalescerConfig(max_batch=64, max_delay_s=max_delay_s),
        )
        clock = plan.clock
        query = UsaasQuery(network="synthetic", kind="predict_mos",
                           rows=(0, 1))
        ticket = server.submit(query, priority="batch", deadline_s=5.0)
        assert server.coalescer.pending_count() == 1
        # Well before the age bound nothing flushes...
        clock.advance(max_delay_s / 2)
        assert not server.has_pending()
        # ...but past it the next interaction flushes and serves.
        clock.advance(max_delay_s)
        assert server.has_pending()
        outcome = server.run_next()
        assert outcome is not None
        assert server.outcomes[ticket.id].status == "served"
        buffered_wait = server.outcomes[ticket.id].latency_s
        # Waited 1.5 * max_delay_s on the clock we advanced, plus the
        # charged batch cost — but the *buffer* never hid it: due fired
        # at max_delay_s, the flush just had to wait for this touch.
        assert buffered_wait >= max_delay_s

    def test_size_due_flush_is_immediate(self, rated_columns, fitted_model):
        server, plan, engine = synthetic_prediction_server(
            rated_columns, fitted_model, seed=1,
            coalescer=CoalescerConfig(max_batch=2, max_delay_s=10.0),
        )
        query = UsaasQuery(network="synthetic", kind="predict_mos",
                           rows=(0,))
        server.submit(query, priority="batch", deadline_s=50.0)
        assert server.coalescer.pending_count() == 1
        server.submit(query, priority="batch", deadline_s=50.0)
        # Second submit fills the batch: buffer drained into admission.
        assert server.coalescer.pending_count() == 0
        assert server.has_pending()

    def test_interactive_bypasses_the_buffer(self, rated_columns,
                                             fitted_model):
        server, plan, engine = synthetic_prediction_server(
            rated_columns, fitted_model, seed=1,
            coalescer=CoalescerConfig(max_batch=64, max_delay_s=10.0),
        )
        query = UsaasQuery(network="synthetic", kind="predict_mos",
                           rows=(0,))
        ticket = server.submit(query, priority="interactive", deadline_s=5.0)
        assert server.coalescer.pending_count() == 0
        server.run_next()
        assert server.outcomes[ticket.id].status == "served"

    def test_coalesced_members_get_their_own_slices(self, rated_columns,
                                                    fitted_model):
        server, plan, engine = synthetic_prediction_server(
            rated_columns, fitted_model, seed=1,
            coalescer=CoalescerConfig(max_batch=2, max_delay_s=10.0),
        )
        qa = UsaasQuery(network="synthetic", kind="predict_mos", rows=(0, 1))
        qb = UsaasQuery(network="synthetic", kind="predict_mos", rows=(2,))
        ta = server.submit(qa, priority="batch", deadline_s=50.0)
        tb = server.submit(qb, priority="batch", deadline_s=50.0)
        server.run_next()
        batch = fitted_model.predict_columns(
            rated_columns, np.array([0, 1, 2], dtype=np.intp)
        )
        ra = server.outcomes[ta.id].report
        rb = server.outcomes[tb.id].report
        assert ra.rows == (0, 1) and rb.rows == (2,)
        assert ra.predictions.tobytes() == batch[:2].tobytes()
        assert rb.predictions.tobytes() == batch[2:].tobytes()
        assert ra.coalesced == 2 and ra.batch_rows == 3
        # One vectorized call served both queries.
        assert engine.batches == 1
        counters = server.kind_counters("predict_mos")
        assert counters.submitted == 2 and counters.served == 2

    def test_drain_flushes_non_due_buffer(self, rated_columns, fitted_model):
        server, plan, engine = synthetic_prediction_server(
            rated_columns, fitted_model, seed=1,
            coalescer=CoalescerConfig(max_batch=64, max_delay_s=10.0),
        )
        query = UsaasQuery(network="synthetic", kind="predict_mos", rows=(0,))
        ticket = server.submit(query, priority="batch", deadline_s=50.0)
        report = server.drain()
        assert report.clean
        assert server.outcomes[ticket.id].status == "served"

"""Over-capacity prediction soaks: closed books, bounded overrun,
byte-determinism on a ManualClock."""

from __future__ import annotations

import pytest

from repro.prediction import (
    CoalescerConfig,
    run_prediction_soak,
    synthetic_prediction_server,
)
from repro.prediction.soak import PredictionSoakReport
from repro.resilience.faults import Arrival
from repro.rng import derive


def _overload_arrivals(seed, n_queries=80, deadline_scale=10.0):
    """Arrivals at 1.5x the coalesced service rate with tight deadlines,
    mirroring the harness's over-capacity plan at test scale."""
    from repro.prediction import PredictionCostModel

    cost = PredictionCostModel()
    max_batch = 16
    batch_cost = cost.batch_cost_s(max_batch)
    rate = 1.5 * max_batch / batch_cost
    deadline_s = deadline_scale * batch_cost
    rng = derive(seed, "prediction", "test-soak")
    gaps = rng.exponential(1.0 / rate, size=n_queries)
    at = 0.0
    arrivals = []
    for i, gap in enumerate(gaps):
        at += float(gap)
        arrivals.append(Arrival(
            at_s=at,
            priority="interactive" if i % 8 == 0 else "batch",
            deadline_s=deadline_s,
        ))
    return arrivals


def _run(rated_columns, fitted_model, seed=17):
    server, plan, engine = synthetic_prediction_server(
        rated_columns, fitted_model, seed=seed,
        coalescer=CoalescerConfig(max_batch=16, max_delay_s=0.01),
        max_pending=16,
    )
    arrivals = _overload_arrivals(seed)
    report = run_prediction_soak(
        server, arrivals,
        rows_for=lambda a, i: tuple(range(i % 4 + 1)),
    )
    return report, server, engine


class TestOverCapacity:
    @pytest.fixture(scope="class")
    def soak(self, rated_columns, fitted_model):
        return _run(rated_columns, fitted_model)

    def test_books_close_exactly_once(self, soak):
        report, server, _ = soak
        assert report.accounted
        assert report.drain.clean
        counters = server.kind_counters("predict_mos")
        assert counters.submitted == report.submitted

    def test_only_served_degraded_or_shed(self, soak):
        report, _, _ = soak
        assert report.deadline_exceeded == 0
        assert report.failed == 0
        assert report.served + report.served_degraded + report.shed == (
            report.submitted
        )
        # Overload must actually bite for the test to mean anything.
        assert report.served_degraded + report.shed > 0

    def test_overrun_bounded_by_one_batch_cost(self, soak):
        report, _, engine = soak
        bound = engine.cost_model.batch_cost_s(
            16 * engine.n_rows  # generous: one max coalesced batch
        )
        assert report.max_overrun_s <= bound

    def test_coalescing_happened(self, soak):
        report, _, _ = soak
        assert report.mean_coalesced > 1.0
        assert report.batches < report.submitted

    def test_insights_books_unaffected(self, soak):
        _, server, _ = soak
        counters = server.kind_counters("insights")
        assert counters.submitted == 0


class TestDeterminism:
    def test_repeat_runs_are_byte_identical(self, rated_columns,
                                            fitted_model):
        a, _, _ = _run(rated_columns, fitted_model, seed=23)
        b, _, _ = _run(rated_columns, fitted_model, seed=23)
        assert isinstance(a, PredictionSoakReport)
        assert a.counters_dict() == b.counters_dict()

    def test_different_seeds_differ(self, rated_columns, fitted_model):
        a, _, _ = _run(rated_columns, fitted_model, seed=23)
        b, _, _ = _run(rated_columns, fitted_model, seed=24)
        assert a.counters_dict() != b.counters_dict()


class TestRoomyCapacity:
    def test_under_capacity_everything_is_served_cleanly(self, rated_columns,
                                                         fitted_model):
        server, plan, engine = synthetic_prediction_server(
            rated_columns, fitted_model, seed=3,
            coalescer=CoalescerConfig(max_batch=8, max_delay_s=0.01),
            max_pending=32,
        )
        cost = engine.cost_model.batch_cost_s(8)
        arrivals = [
            Arrival(at_s=i * 2 * cost, priority="batch", deadline_s=1.0)
            for i in range(20)
        ]
        report = run_prediction_soak(server, arrivals,
                                     rows_for=lambda a, i: (i % 5,))
        assert report.accounted
        assert report.served == report.submitted == 20
        assert report.served_degraded == report.shed == 0
        assert report.max_overrun_s == 0.0

"""Shared prediction fixtures: a rating-rich block and a fitted model."""

from __future__ import annotations

import pytest

from repro.perf.columnar import ParticipantColumns
from repro.prediction import ColumnarMosPredictor
from repro.telemetry import CallDatasetGenerator, GeneratorConfig


@pytest.fixture(scope="session")
def rated_dataset():
    """A small dataset with enough ratings to fit the predictor."""
    config = GeneratorConfig(n_calls=60, seed=7, mos_sample_rate=0.5)
    return CallDatasetGenerator(config).generate()


@pytest.fixture(scope="session")
def rated_columns(rated_dataset):
    return ParticipantColumns.from_dataset(rated_dataset)


@pytest.fixture(scope="session")
def fitted_model(rated_columns):
    return ColumnarMosPredictor().fit_columns(rated_columns)

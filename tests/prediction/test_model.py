"""Columnar fit/predict must be byte-identical to the record reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engagement.predictor import (
    ALL_FEATURES,
    MosPredictor,
    kfold_evaluate,
    train_test_evaluate,
)
from repro.errors import AnalysisError, ConfigError, InsufficientRatingsError
from repro.perf.columnar import ParticipantColumns
from repro.prediction import ColumnarMosPredictor
from repro.telemetry import CallDatasetGenerator, GeneratorConfig


def _pair(seed):
    config = GeneratorConfig(n_calls=40, seed=seed, mos_sample_rate=0.5)
    dataset = CallDatasetGenerator(config).generate()
    return list(dataset.participants()), ParticipantColumns.from_dataset(dataset)


class TestByteIdentity:
    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_weights_and_predictions_match_record_path(self, seed):
        parts, cols = _pair(seed)
        record = MosPredictor().fit(parts)
        columnar = ColumnarMosPredictor().fit_columns(cols)
        assert set(record.weights()) == set(columnar.weights())
        for feature, value in record.weights().items():
            assert (
                np.float64(value).tobytes()
                == np.float64(columnar.weights()[feature]).tobytes()
            ), (seed, feature)
        assert (
            record.predict(parts).tobytes()
            == columnar.predict_columns(cols).tobytes()
        )

    @pytest.mark.parametrize("features", [
        ("latency_ms", "loss_pct"),
        ("presence_pct",),
        ALL_FEATURES[:4],
    ])
    def test_feature_subsets_match_too(self, features):
        parts, cols = _pair(101)
        record = MosPredictor(features=features).fit(parts)
        columnar = ColumnarMosPredictor(features=features).fit_columns(cols)
        assert (
            record.predict(parts).tobytes()
            == columnar.predict_columns(cols).tobytes()
        )

    def test_row_subset_predictions_match_the_full_batch(self, rated_columns,
                                                         fitted_model):
        # Same rows, same model — only BLAS shape-dependent summation
        # order may differ, so equality is numeric, not byte-level
        # (the byte contract is record-vs-columnar on the same rows).
        full = fitted_model.predict_columns(rated_columns)
        rows = np.array([0, 5, 11], dtype=np.intp)
        subset = fitted_model.predict_columns(rated_columns, rows)
        assert subset.shape == (3,)
        np.testing.assert_allclose(subset, full[rows], rtol=1e-12)


class TestValidation:
    def test_unfitted_predict_raises(self, rated_columns):
        with pytest.raises(AnalysisError):
            ColumnarMosPredictor().predict_columns(rated_columns)

    def test_unknown_feature_rejected(self):
        with pytest.raises(AnalysisError):
            ColumnarMosPredictor(features=["shoe_size"])

    def test_empty_columns_predict_empty(self, fitted_model):
        cols = ParticipantColumns.from_records([])
        assert len(fitted_model.predict_columns(cols)) == 0


class TestInsufficientRatings:
    def test_zero_rating_block_raises_typed_error(self):
        config = GeneratorConfig(n_calls=10, seed=7, mos_sample_rate=0.0)
        cols = ParticipantColumns.from_dataset(
            CallDatasetGenerator(config).generate()
        )
        with pytest.raises(InsufficientRatingsError) as exc_info:
            ColumnarMosPredictor().fit_columns(cols)
        assert exc_info.value.n_rated == 0
        assert "0 rated session(s)" in str(exc_info.value)

    def test_error_is_both_config_and_analysis(self):
        err = InsufficientRatingsError(3, 9)
        assert isinstance(err, ConfigError)
        assert isinstance(err, AnalysisError)

    def test_error_pickles_round_trip(self):
        import pickle

        err = pickle.loads(pickle.dumps(InsufficientRatingsError(3, 9)))
        assert (err.n_rated, err.n_required) == (3, 9)

    def test_record_path_raises_the_same_error(self):
        config = GeneratorConfig(n_calls=10, seed=7, mos_sample_rate=0.0)
        parts = list(CallDatasetGenerator(config).generate().participants())
        with pytest.raises(InsufficientRatingsError):
            MosPredictor().fit(parts)


class TestSplitDeterminism:
    """Evaluation splits come from derive() substreams: stable per seed."""

    def test_kfold_is_a_pure_function_of_seed_and_data(self, rated_dataset):
        parts = list(rated_dataset.participants())
        a = kfold_evaluate(parts, seed=11)
        # Interleave unrelated global RNG activity: must not perturb.
        np.random.default_rng().random(1000)
        b = kfold_evaluate(list(rated_dataset.participants()), seed=11)
        assert a == b

    def test_train_test_split_is_seed_stable(self, rated_dataset):
        parts = list(rated_dataset.participants())
        a = train_test_evaluate(parts, seed=11)
        b = train_test_evaluate(parts, seed=11)
        assert a == b
        assert a != train_test_evaluate(parts, seed=12)

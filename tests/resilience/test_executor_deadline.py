"""Deadline propagation through the guarded fetch path.

The executor must honour a query's remaining budget three ways: clamp
each attempt's timeout to it, skip backoff sleeps that would burn the
rest of it, and never start a new attempt once it has expired.  It must
also record what the whole cycle cost on ``last_cycle_elapsed_s`` so
health tables and deadline accounting agree.
"""

import pytest

from repro.core.signals import SignalSeries
from repro.core.usaas.registry import SignalSourceRegistry
from repro.resilience import (
    FaultPlan,
    ManualClock,
    ResilienceConfig,
    RetryPolicy,
    SourceExecutor,
)
from repro.resilience.faults import ALWAYS_FAIL, FaultSpec, always_slow
from repro.serving import Deadline


def make_executor(clock, max_attempts=3, attempt_timeout_s=0.2,
                  base_delay_s=0.05, allow_stale=True):
    config = ResilienceConfig(
        retry=RetryPolicy(
            max_attempts=max_attempts, base_delay_s=base_delay_s,
            jitter=0.0, attempt_timeout_s=attempt_timeout_s, seed=3,
        ),
        allow_stale=allow_stale,
    )
    return SourceExecutor(config=config, clock=clock)


def register(plan, registry, name="feed", spec=None):
    spec = spec if spec is not None else FaultSpec()
    registry.register(
        name, plan.wrap_source(name, lambda: SignalSeries(), spec)
    )


class TestAttemptClamping:
    def test_attempt_slower_than_remaining_budget_times_out(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        registry = SignalSourceRegistry()
        # 0.15s fetch, 0.2s attempt timeout: fine without a deadline.
        register(plan, registry, spec=always_slow(0.15))
        executor = make_executor(clock, max_attempts=1)
        deadline = Deadline.start(clock, 1.0)
        clock.advance(0.9)  # 0.1s of budget left < the 0.15s fetch
        outcome = executor.fetch(registry, "feed", deadline)
        assert not outcome.ok
        health = executor.ledger.get("feed")
        assert health.failures == 1
        assert "budget" in health.last_error

    def test_same_fetch_succeeds_without_deadline_pressure(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        registry = SignalSourceRegistry()
        register(plan, registry, spec=always_slow(0.15))
        executor = make_executor(clock, max_attempts=1)
        outcome = executor.fetch(registry, "feed", Deadline.start(clock, 1.0))
        assert outcome.ok


class TestNoAttemptPastExpiry:
    def test_expired_deadline_stops_the_retry_loop(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        registry = SignalSourceRegistry()
        register(plan, registry, spec=ALWAYS_FAIL)
        executor = make_executor(clock, max_attempts=5)
        deadline = Deadline.start(clock, 1.0)
        clock.advance(2.0)
        outcome = executor.fetch(registry, "feed", deadline)
        assert not outcome.ok
        assert executor.ledger.get("feed").attempts == 0
        assert "deadline exhausted" in outcome.error

    def test_without_deadline_all_attempts_run(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        registry = SignalSourceRegistry()
        register(plan, registry, spec=ALWAYS_FAIL)
        executor = make_executor(clock, max_attempts=3)
        executor.fetch(registry, "feed")
        assert executor.ledger.get("feed").attempts == 3


class TestBackoffSkipping:
    def test_backoff_larger_than_remaining_budget_cuts_the_loop(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        registry = SignalSourceRegistry()
        register(plan, registry, spec=ALWAYS_FAIL)
        # First backoff delay is base_delay_s = 0.4s.
        executor = make_executor(clock, max_attempts=3, base_delay_s=0.4)
        deadline = Deadline.start(clock, 0.3)
        outcome = executor.fetch(registry, "feed", deadline)
        assert not outcome.ok
        health = executor.ledger.get("feed")
        # One attempt ran; the 0.4s backoff exceeded the 0.3s budget so
        # attempts 2 and 3 never happened and no time was slept.
        assert health.attempts == 1
        assert "backoff" in outcome.error
        assert clock.now() == pytest.approx(0.0)


class TestCycleElapsedLedger:
    def test_success_records_cycle_elapsed(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        registry = SignalSourceRegistry()
        register(plan, registry, spec=always_slow(0.07))
        executor = make_executor(clock)
        executor.fetch(registry, "feed")
        health = executor.ledger.get("feed")
        assert health.last_cycle_elapsed_s == pytest.approx(0.07)
        assert health.last_elapsed_s == pytest.approx(0.07)

    def test_exhaustion_includes_backoff_in_cycle_elapsed(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        registry = SignalSourceRegistry()
        register(plan, registry, spec=ALWAYS_FAIL)
        executor = make_executor(clock, max_attempts=2, base_delay_s=0.1)
        before = clock.now()
        executor.fetch(registry, "feed")
        spent = clock.now() - before
        health = executor.ledger.get("feed")
        # Two instant failures separated by one 0.1s backoff sleep.
        assert spent == pytest.approx(0.1)
        assert health.last_cycle_elapsed_s == pytest.approx(spent)
        # The per-attempt number only saw the (instant) last attempt.
        assert health.last_elapsed_s == pytest.approx(0.0)

    def test_cycle_elapsed_survives_as_dict(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        registry = SignalSourceRegistry()
        register(plan, registry, spec=always_slow(0.05))
        executor = make_executor(clock)
        executor.fetch(registry, "feed")
        record = executor.ledger.get("feed").as_dict()
        assert record["last_cycle_elapsed_s"] == pytest.approx(0.05)

"""FaultPlan determinism: same seed, same chaos."""

import json

import pytest

from repro.errors import ConfigError
from repro.resilience import FaultPlan, FaultSpec, ManualClock
from repro.resilience.faults import ALWAYS_FAIL, InjectedFault, always_slow


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(fail_rate=-0.1),
        dict(fail_rate=1.1),
        dict(slow_rate=2.0),
        dict(corrupt_rate=-1.0),
        dict(fail_rate=0.6, slow_rate=0.6),
        dict(slow_s=-1.0),
    ])
    def test_bad_rates_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultSpec(**kwargs)


class TestDeterminism:
    def test_same_seed_same_action_sequence(self):
        spec = FaultSpec(fail_rate=0.3, slow_rate=0.3, slow_s=1.0)
        a = FaultPlan(seed=11).actions("feed", spec, 64)
        b = FaultPlan(seed=11).actions("feed", spec, 64)
        assert a == b
        assert {"fail", "slow", "ok"} >= set(a)

    def test_different_seed_differs(self):
        spec = FaultSpec(fail_rate=0.5)
        a = FaultPlan(seed=11).actions("feed", spec, 64)
        b = FaultPlan(seed=12).actions("feed", spec, 64)
        assert a != b

    def test_targets_have_independent_streams(self):
        spec = FaultSpec(fail_rate=0.5)
        plan = FaultPlan(seed=11)
        assert plan.actions("a", spec, 64) != plan.actions("b", spec, 64)

    def test_wrapped_source_replays_the_preview(self):
        spec = FaultSpec(fail_rate=0.4)
        plan = FaultPlan(seed=3)
        preview = plan.actions("feed", spec, 20)
        wrapped = plan.wrap_source("feed", lambda: "data", spec)
        observed = []
        for _ in range(20):
            try:
                wrapped()
                observed.append("ok")
            except InjectedFault:
                observed.append("fail")
        assert tuple(observed) == preview


class TestInjection:
    def test_always_fail(self):
        plan = FaultPlan(seed=1)
        wrapped = plan.wrap_source("feed", lambda: "x", ALWAYS_FAIL)
        with pytest.raises(InjectedFault, match="feed"):
            wrapped()

    def test_slow_advances_the_clock_not_wall_time(self):
        clock = ManualClock()
        plan = FaultPlan(seed=1, clock=clock)
        wrapped = plan.wrap_source("feed", lambda: "x", always_slow(30.0))
        assert wrapped() == "x"
        assert clock.now() == 30.0
        assert clock.sleeps == []  # advanced, never slept

    def test_log_records_every_action(self):
        plan = FaultPlan(seed=1)
        wrapped = plan.wrap_source("feed", lambda: "x", FaultSpec())
        wrapped()
        wrapped()
        assert plan.log == [("feed", "ok"), ("feed", "ok")]


class TestRecordCorruption:
    def test_corrupt_rate_is_deterministic(self):
        spec = FaultSpec(corrupt_rate=0.3)
        records = list(range(50))
        a = list(FaultPlan(seed=5).wrap_records("r", records, spec))
        b = list(FaultPlan(seed=5).wrap_records("r", records, spec))
        assert a == b
        assert len(a) == 50
        assert any(r == "\x00corrupt\x00" for r in a)

    def test_custom_corruptor(self):
        spec = FaultSpec(corrupt_rate=1.0)
        out = list(FaultPlan(seed=5).wrap_records(
            "r", [{"v": 1}], spec, corrupt=lambda r: {"v": None}
        ))
        assert out == [{"v": None}]

    def test_jsonl_line_truncation_breaks_parsing(self):
        lines = [json.dumps({"i": i, "pad": "x" * 30}) for i in range(20)]
        spec = FaultSpec(corrupt_rate=0.5)
        corrupted = list(
            FaultPlan(seed=9).corrupt_jsonl_lines("f", lines, spec)
        )
        n_bad = 0
        for line in corrupted:
            try:
                json.loads(line)
            except ValueError:
                n_bad += 1
        assert 0 < n_bad < 20


class TestLoadSpikes:
    MIX = (("interactive", 0.5), ("batch", 0.3), ("monitoring", 0.2))

    def _spec(self, **kwargs):
        from repro.resilience.faults import LoadSpikeSpec

        defaults = dict(rate_per_s=50.0, duration_s=2.0,
                        priority_mix=self.MIX, deadline_s=1.0)
        defaults.update(kwargs)
        return LoadSpikeSpec(**defaults)

    def test_same_seed_same_arrivals(self):
        a = FaultPlan(seed=11).load_spikes("spike", self._spec())
        b = FaultPlan(seed=11).load_spikes("spike", self._spec())
        assert a == b

    def test_different_seed_differs(self):
        a = FaultPlan(seed=11).load_spikes("spike", self._spec())
        b = FaultPlan(seed=12).load_spikes("spike", self._spec())
        assert a != b

    def test_arrivals_sorted_and_inside_the_window(self):
        arrivals = FaultPlan(seed=11).load_spikes(
            "spike", self._spec(start_s=3.0)
        )
        times = [a.at_s for a in arrivals]
        assert times == sorted(times)
        assert all(3.0 < t <= 5.0 for t in times)

    def test_rate_roughly_honoured(self):
        arrivals = FaultPlan(seed=11).load_spikes("spike", self._spec())
        # 50/s for 2s: expect ~100, allow generous Poisson slack.
        assert 60 <= len(arrivals) <= 140

    def test_priority_mix_respected(self):
        arrivals = FaultPlan(seed=11).load_spikes(
            "spike", self._spec(duration_s=20.0)
        )
        share = {name: 0 for name, _ in self.MIX}
        for arrival in arrivals:
            share[arrival.priority] += 1
        total = len(arrivals)
        assert share["interactive"] / total == pytest.approx(0.5, abs=0.1)
        assert share["monitoring"] / total == pytest.approx(0.2, abs=0.1)

    def test_deadline_attached_to_every_arrival(self):
        arrivals = FaultPlan(seed=11).load_spikes("spike", self._spec())
        assert all(a.deadline_s == 1.0 for a in arrivals)

    def test_multiple_specs_merge_sorted(self):
        plan = FaultPlan(seed=11)
        arrivals = plan.load_spikes(
            "spike",
            self._spec(start_s=0.0, duration_s=1.0),
            self._spec(start_s=0.5, duration_s=1.0),
        )
        times = [a.at_s for a in arrivals]
        assert times == sorted(times)
        assert ("spike", f"load_spikes.{len(arrivals)}") in plan.log

    def test_pick_priority_covers_the_unit_interval(self):
        spec = self._spec()
        assert spec.pick_priority(0.0) == "interactive"
        assert spec.pick_priority(0.49) == "interactive"
        assert spec.pick_priority(0.6) == "batch"
        assert spec.pick_priority(0.99) == "monitoring"

    @pytest.mark.parametrize("kwargs", [
        dict(rate_per_s=0.0),
        dict(duration_s=0.0),
        dict(start_s=-1.0),
        dict(deadline_s=0.0),
        dict(priority_mix=()),
        dict(priority_mix=(("interactive", -1.0),)),
        dict(priority_mix=(("interactive", 0.0),)),
    ])
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            self._spec(**kwargs)

"""Property-style state-machine test for the circuit breaker.

Seeded random operation sequences (success / failure / clock advance /
acquire) are replayed against a :class:`CircuitBreaker` on a
:class:`ManualClock` while a shadow checker asserts the machine only
ever takes legal transitions:

* ``closed -> open`` — only after a recorded failure;
* ``open -> half_open`` — only after ``recovery_s`` elapsed;
* ``half_open -> open`` — only after a probe failure;
* ``half_open -> closed`` — only after enough probe successes;
* no other edges exist.

The sequences are drawn from ``repro.rng`` substreams, so a failure
reproduces exactly from its seed, and the observed trace itself must be
seed-deterministic.
"""

import pytest

from repro import rng as rng_mod
from repro.errors import CircuitOpenError
from repro.resilience import CircuitBreaker, ManualClock

RECOVERY_S = 5.0

#: Every edge the three-state machine is allowed to take, with the
#: operation classes that may cause it.
LEGAL_TRANSITIONS = {
    ("closed", "open"): {"failure"},
    ("open", "half_open"): {"advance", "observe", "acquire", "success",
                            "failure"},
    ("half_open", "open"): {"failure"},
    ("half_open", "closed"): {"success"},
}


def make_breaker(clock):
    return CircuitBreaker(
        window=8, failure_rate_threshold=0.5, min_calls=3,
        recovery_s=RECOVERY_S, half_open_max_calls=1, clock=clock,
        name="prop",
    )


def run_ops(seed, n_ops=400):
    """Replay a seeded op sequence; return the (state, op) trace."""
    stream = rng_mod.derive(seed, "tests.breaker-statemachine")
    clock = ManualClock()
    breaker = make_breaker(clock)
    trace = []
    state = breaker.state.value
    for _ in range(n_ops):
        u = float(stream.random())
        if u < 0.35:
            op = "failure"
            if breaker.allow():
                breaker.acquire()
                breaker.record_failure()
        elif u < 0.70:
            op = "success"
            if breaker.allow():
                breaker.acquire()
                breaker.record_success()
        elif u < 0.90:
            op = "advance"
            clock.advance(float(stream.uniform(0.1, RECOVERY_S)))
        else:
            op = "acquire"
            try:
                breaker.acquire()
            except CircuitOpenError:
                pass
            else:
                # An acquired probe must be resolved or half-open
                # saturates forever; resolve it as a success.
                breaker.record_success()
                op = "success"
        new_state = breaker.state.value
        trace.append((op, new_state))
        if new_state != state:
            edge = (state, new_state)
            assert edge in LEGAL_TRANSITIONS, (
                f"illegal transition {state} -> {new_state} on {op} "
                f"(seed {seed})"
            )
            assert op in LEGAL_TRANSITIONS[edge], (
                f"transition {state} -> {new_state} caused by {op} "
                f"(seed {seed})"
            )
        state = new_state
    return trace


class TestStateMachineProperties:
    @pytest.mark.parametrize("seed", range(10))
    def test_no_illegal_transitions(self, seed):
        trace = run_ops(seed)
        assert len(trace) == 400

    @pytest.mark.parametrize("seed", range(10))
    def test_every_state_reachable(self, seed):
        # With 35% failures and recovery-sized advances, a 400-op run
        # must visit all three states; if tuning ever breaks that, the
        # run stops exercising the machine and should fail loudly.
        states = {state for _, state in run_ops(seed)}
        assert states == {"closed", "open", "half_open"}

    def test_same_seed_same_trace(self):
        assert run_ops(123) == run_ops(123)

    def test_different_seeds_diverge(self):
        assert run_ops(123) != run_ops(124)


class TestTargetedEdges:
    """Directed checks for each edge the random walk relies on."""

    def test_closed_to_open_needs_min_calls(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state.value == "closed"  # only 2 < min_calls=3
        breaker.record_failure()
        assert breaker.state.value == "open"

    def test_open_to_half_open_needs_recovery_time(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(RECOVERY_S - 0.01)
        assert breaker.state.value == "open"
        clock.advance(0.02)
        assert breaker.state.value == "half_open"

    def test_half_open_probe_failure_reopens(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(RECOVERY_S)
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state.value == "open"

    def test_half_open_probe_success_closes_and_resets(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(RECOVERY_S)
        breaker.acquire()
        breaker.record_success()
        assert breaker.state.value == "closed"
        assert breaker.failure_rate == 0.0  # window was reset

    def test_half_open_saturates_at_max_probes(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(RECOVERY_S)
        breaker.acquire()  # the one allowed probe
        with pytest.raises(CircuitOpenError):
            breaker.acquire()

"""Chaos acceptance tests: graceful degradation of the USaaS stack.

Every test here uses the fault harness and a ManualClock — there is no
wall-clock dependence and no real sleep anywhere, which is what makes
the byte-identity assertions possible.
"""

import datetime as dt
import json

import pytest

from repro.core.signals import ExplicitSignal, ImplicitSignal, SignalSeries
from repro.core.usaas import UsaasQuery, UsaasService
from repro.core.usaas.privacy import scrub_author
from repro.errors import DegradedServiceError
from repro.resilience import (
    FaultPlan,
    ManualClock,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.faults import ALWAYS_FAIL, always_slow

pytestmark = pytest.mark.chaos

SEED = 1337
DAY0 = dt.datetime(2022, 4, 1, 12, 0)


def implicit_series() -> SignalSeries:
    """10 days x 12 users of presence/cam_on signals on starlink/teams."""
    series = SignalSeries()
    for day in range(10):
        ts = DAY0 + dt.timedelta(days=day)
        for u in range(12):
            user = scrub_author(f"user-{u}")
            series.append(ImplicitSignal(
                ts, "starlink", "presence", 80.0 + u - day,
                service="teams", user=user,
            ))
            series.append(ImplicitSignal(
                ts, "starlink", "cam_on", 60.0 + (u % 5),
                service="teams", user=user,
            ))
    return series


def explicit_series() -> SignalSeries:
    series = SignalSeries()
    for day in range(10):
        ts = DAY0 + dt.timedelta(days=day)
        for u in range(12):
            series.append(ExplicitSignal(
                ts, "starlink", "sentiment_polarity",
                0.4 - 0.05 * day, user=scrub_author(f"poster-{u}"),
            ))
    return series


def build_degraded_service(seed=SEED):
    """4 sources; 2 fault-injected (1 always raising, 1 over budget)."""
    clock = ManualClock()
    plan = FaultPlan(seed=seed, clock=clock)
    config = ResilienceConfig(
        retry=RetryPolicy(
            max_attempts=2, base_delay_s=0.1, jitter=0.2,
            attempt_timeout_s=1.0, seed=seed,
        ),
        min_sources=1,
    )
    service = UsaasService(resilience=config, clock=clock)
    service.register_source("telemetry", implicit_series)
    service.register_source("social", explicit_series)
    service.register_source(
        "flaky", plan.wrap_source("flaky", implicit_series, ALWAYS_FAIL)
    )
    service.register_source(
        "hanging", plan.wrap_source("hanging", implicit_series,
                                    always_slow(30.0))
    )
    return service, plan, clock


def health_bytes(report) -> bytes:
    return json.dumps(
        [h.as_dict() for h in report.source_health], sort_keys=True
    ).encode()


class TestGracefulDegradation:
    def test_two_of_four_sources_down_still_answers(self):
        service, _, _ = build_degraded_service()
        report = service.answer(
            UsaasQuery(network="starlink", service="teams")
        )
        assert report.degraded
        assert report.n_implicit > 0
        assert report.n_explicit > 0
        assert report.insights  # computed from the two survivors
        assert "[degraded]" in report.summary
        assert "flaky" in report.summary and "hanging" in report.summary

    def test_per_source_health_is_accurate(self):
        service, _, _ = build_degraded_service()
        report = service.answer(UsaasQuery(network="starlink"))
        health = {h.name: h for h in report.source_health}
        assert set(health) == {"telemetry", "social", "flaky", "hanging"}

        for good in ("telemetry", "social"):
            assert health[good].status == "ok"
            assert health[good].attempts == 1
            assert health[good].failures == 0

        flaky = health["flaky"]
        assert flaky.status == "failed"
        assert flaky.attempts == 2  # retried once, then gave up
        assert flaky.failures == 2
        assert "InjectedFault" in flaky.last_error

        hanging = health["hanging"]
        assert hanging.status == "failed"
        assert hanging.attempts == 2
        assert hanging.failures == 2
        assert "budget" in hanging.last_error
        assert hanging.last_elapsed_s == pytest.approx(30.0)  # simulated

    def test_insights_come_from_survivors_only(self):
        service, _, _ = build_degraded_service()
        report = service.answer(
            UsaasQuery(network="starlink", service="teams")
        )
        # The two surviving sources contribute exactly their own signals:
        # 10 days x 12 users x 2 implicit metrics, 10 x 12 explicit.
        assert report.n_implicit == 240
        assert report.n_explicit == 120

    def test_same_seed_byte_identical_health(self):
        service_a, _, _ = build_degraded_service()
        service_b, _, _ = build_degraded_service()
        report_a = service_a.answer(UsaasQuery(network="starlink"))
        report_b = service_b.answer(UsaasQuery(network="starlink"))
        assert health_bytes(report_a) == health_bytes(report_b)

    def test_different_seed_changes_backoff_not_verdict(self):
        service_a, _, clock_a = build_degraded_service(seed=1)
        service_b, _, clock_b = build_degraded_service(seed=2)
        report_a = service_a.answer(UsaasQuery(network="starlink"))
        report_b = service_b.answer(UsaasQuery(network="starlink"))
        assert report_a.degraded and report_b.degraded
        assert clock_a.sleeps != clock_b.sleeps  # jitter is seed-driven

    def test_no_real_sleeping_happened(self):
        service, _, clock = build_degraded_service()
        service.answer(UsaasQuery(network="starlink"))
        # Simulated time passed (hangs + backoff) while the test ran in
        # microseconds of real time; the ManualClock absorbed it all.
        assert clock.now() > 60.0


class TestHardDegradation:
    def test_min_sources_raises(self):
        service, _, _ = build_degraded_service()
        config = ResilienceConfig(
            retry=service.executor.config.retry,
            min_sources=3,
        )
        strict_service = UsaasService(
            resilience=config, clock=service.executor.clock
        )
        plan = FaultPlan(seed=SEED, clock=service.executor.clock)
        strict_service.register_source("telemetry", implicit_series)
        strict_service.register_source("social", explicit_series)
        strict_service.register_source(
            "flaky", plan.wrap_source("flaky", implicit_series, ALWAYS_FAIL)
        )
        with pytest.raises(DegradedServiceError, match="min_sources"):
            strict_service.answer(UsaasQuery(network="starlink"))

    def test_strict_mode_tolerates_nothing(self):
        clock = ManualClock()
        plan = FaultPlan(seed=SEED, clock=clock)
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, seed=SEED), strict=True
        )
        service = UsaasService(resilience=config, clock=clock)
        service.register_source("telemetry", implicit_series)
        service.register_source(
            "flaky", plan.wrap_source("flaky", implicit_series, ALWAYS_FAIL)
        )
        with pytest.raises(DegradedServiceError, match="strict"):
            service.answer(UsaasQuery(network="starlink"))


class TestStaleFallback:
    def _flapping_service(self):
        clock = ManualClock()
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, seed=SEED), min_sources=1
        )
        service = UsaasService(resilience=config, clock=clock)
        state = {"up": True}

        def flapping():
            if not state["up"]:
                raise OSError("feed offline")
            return implicit_series()

        service.register_source("telemetry", flapping)
        service.register_source("social", explicit_series)
        return service, state

    def test_last_good_series_served_stale(self):
        service, state = self._flapping_service()
        first = service.answer(UsaasQuery(network="starlink"))
        assert not first.degraded

        state["up"] = False
        service.registry.invalidate("telemetry")  # force a re-fetch
        second = service.answer(UsaasQuery(network="starlink"))
        assert second.degraded
        assert second.n_implicit == first.n_implicit  # stale data served
        health = {h.name: h for h in second.source_health}
        assert health["telemetry"].status == "stale"
        assert "stale: telemetry" in second.summary

    def test_stale_disabled_drops_the_source(self):
        clock = ManualClock()
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1, seed=SEED),
            allow_stale=False,
        )
        service = UsaasService(resilience=config, clock=clock)
        state = {"up": True}

        def flapping():
            if not state["up"]:
                raise OSError("feed offline")
            return implicit_series()

        service.register_source("telemetry", flapping)
        service.register_source("social", explicit_series)
        service.answer(UsaasQuery(network="starlink"))
        state["up"] = False
        service.registry.invalidate("telemetry")
        report = service.answer(UsaasQuery(network="starlink"))
        assert report.degraded
        assert report.n_implicit == 0  # nothing served stale


class TestBreakerAcrossQueries:
    def test_repeated_failures_trip_and_shed(self):
        clock = ManualClock()
        plan = FaultPlan(seed=SEED, clock=clock)
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=2, jitter=0.0, seed=SEED),
            breaker_min_calls=4,
            breaker_recovery_s=300.0,
            min_sources=1,
        )
        service = UsaasService(resilience=config, clock=clock)
        service.register_source("social", explicit_series)
        service.register_source(
            "flaky", plan.wrap_source("flaky", explicit_series, ALWAYS_FAIL)
        )
        query = UsaasQuery(
            network="starlink", implicit_metrics=("presence",),
            explicit_metrics=("sentiment_polarity",),
        )
        service.answer(query)  # 2 failures: breaker still closed
        service.answer(query)  # 4 failures: breaker opens
        health = {h.name: h for h in service.source_health()}
        assert health["flaky"].breaker_state == "open"
        attempts_before = health["flaky"].attempts

        service.answer(query)  # shed, not attempted
        health = {h.name: h for h in service.source_health()}
        assert health["flaky"].attempts == attempts_before
        assert health["flaky"].shed >= 1

        # After the cool-down the breaker half-opens and probes again.
        clock.advance(300.0)
        service.answer(query)
        health = {h.name: h for h in service.source_health()}
        assert health["flaky"].attempts > attempts_before

"""Crash-safe exports: an interrupted write never truncates the file."""

import json

import pytest

from repro.errors import SchemaError
from repro.io.jsonl import atomic_writer


class TestAtomicWriter:
    def test_success_replaces(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old\n")
        with atomic_writer(path) as f:
            f.write("new\n")
        assert path.read_text() == "new\n"
        assert not (tmp_path / "out.txt.tmp").exists()

    def test_failure_preserves_previous_file(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old\n")
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as f:
                f.write("partial")
                raise RuntimeError("crash mid-export")
        assert path.read_text() == "old\n"
        assert not (tmp_path / "out.txt.tmp").exists()

    def test_failure_with_no_previous_file_leaves_nothing(self, tmp_path):
        path = tmp_path / "fresh.txt"
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as f:
                f.write("partial")
                raise RuntimeError("crash")
        assert not path.exists()


class TestDatasetExports:
    def test_call_dataset_interrupted_export_keeps_old_file(
        self, small_dataset, tmp_path, monkeypatch
    ):
        from repro.telemetry import store

        path = tmp_path / "calls.jsonl"
        small_dataset.to_jsonl(path)
        good = path.read_bytes()

        calls = {"n": 0}
        original = store._call_to_dict

        def failing(call):
            calls["n"] += 1
            if calls["n"] > 2:
                raise OSError("disk died mid-export")
            return original(call)

        monkeypatch.setattr(store, "_call_to_dict", failing)
        with pytest.raises(OSError):
            small_dataset.to_jsonl(path)
        # The old, complete file is still there and still loads.
        assert path.read_bytes() == good
        assert len(store.CallDataset.from_jsonl(path)) == len(small_dataset)

    def test_corpus_interrupted_export_keeps_old_file(
        self, small_corpus, tmp_path, monkeypatch
    ):
        path = tmp_path / "posts.jsonl"
        small_corpus.to_jsonl(path)
        good = path.read_bytes()

        state = {"n": 0}
        original = json.dumps

        def failing(obj, *args, **kwargs):
            state["n"] += 1
            if state["n"] > 3:
                raise OSError("disk died mid-export")
            return original(obj, *args, **kwargs)

        monkeypatch.setattr(json, "dumps", failing)
        with pytest.raises(OSError):
            small_corpus.to_jsonl(path)
        monkeypatch.undo()
        assert path.read_bytes() == good

    def test_round_trip_still_works(self, small_dataset, tmp_path):
        from repro.telemetry.store import CallDataset

        path = tmp_path / "calls.jsonl"
        small_dataset.to_jsonl(path)
        loaded = CallDataset.from_jsonl(path)
        assert len(loaded) == len(small_dataset)

"""CircuitBreaker state-machine tests — no real time, ever."""

import pytest

from repro.errors import CircuitOpenError, ConfigError
from repro.resilience import BreakerState, CircuitBreaker, ManualClock


def make_breaker(clock, **overrides):
    params = dict(
        window=10,
        failure_rate_threshold=0.5,
        min_calls=4,
        recovery_s=30.0,
        half_open_max_calls=1,
        clock=clock,
        name="feed",
    )
    params.update(overrides)
    return CircuitBreaker(**params)


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker(ManualClock())
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()
        breaker.acquire()  # must not raise

    def test_failures_below_min_calls_keep_it_closed(self):
        breaker = make_breaker(ManualClock())
        for _ in range(3):  # min_calls is 4
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_opens_at_failure_rate(self):
        breaker = make_breaker(ManualClock())
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()  # 2/4 failed = 50% >= threshold
        assert breaker.state is BreakerState.OPEN

    def test_successes_age_out_of_window(self):
        breaker = make_breaker(ManualClock(), window=4, min_calls=4)
        for _ in range(4):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        # window now holds [ok, ok, fail, fail] -> 50% -> open
        assert breaker.state is BreakerState.OPEN


class TestOpen:
    def test_open_sheds_calls(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.acquire()

    def test_recovery_moves_to_half_open(self):
        clock = ManualClock()
        breaker = make_breaker(clock, recovery_s=30.0)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(29.9)
        assert breaker.state is BreakerState.OPEN
        clock.advance(0.2)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()


class TestHalfOpen:
    def _half_open_breaker(self, **overrides):
        clock = ManualClock()
        breaker = make_breaker(clock, **overrides)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(30.0)
        assert breaker.state is BreakerState.HALF_OPEN
        return breaker

    def test_probe_success_closes_and_resets(self):
        breaker = self._half_open_breaker()
        breaker.acquire()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.failure_rate == 0.0  # window cleared on reset

    def test_probe_failure_reopens(self):
        breaker = self._half_open_breaker()
        breaker.acquire()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_half_open_saturates(self):
        breaker = self._half_open_breaker(half_open_max_calls=1)
        breaker.acquire()
        with pytest.raises(CircuitOpenError):
            breaker.acquire()

    def test_full_cycle_closed_open_half_open_closed(self):
        clock = ManualClock()
        breaker = make_breaker(clock)
        assert breaker.state is BreakerState.CLOSED
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.advance(30.0)
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.acquire()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(window=0),
        dict(failure_rate_threshold=0.0),
        dict(failure_rate_threshold=1.5),
        dict(min_calls=0),
        dict(min_calls=99),
        dict(recovery_s=-1.0),
        dict(half_open_max_calls=0),
    ])
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            make_breaker(ManualClock(), **kwargs)

"""RetryPolicy schedules, call_with_retry, Fallback chains."""

import pytest

from repro.errors import (
    AnalysisError,
    ConfigError,
    SourceUnavailableError,
)
from repro.resilience import (
    Fallback,
    ManualClock,
    RetryPolicy,
    call_with_retry,
)


class TestSchedule:
    def test_deterministic_per_seed_and_key(self):
        policy = RetryPolicy(max_attempts=5, seed=7)
        assert policy.schedule("social") == policy.schedule("social")
        assert policy.schedule("social") != policy.schedule("telemetry")
        assert policy.schedule("social") != RetryPolicy(
            max_attempts=5, seed=8
        ).schedule("social")

    def test_exponential_growth_with_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=1.0, multiplier=2.0,
            max_delay_s=4.0, jitter=0.0,
        )
        assert policy.schedule("x") == (1.0, 2.0, 4.0, 4.0, 4.0)

    def test_jitter_bounded(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, multiplier=1.0, jitter=0.25
        )
        for delay in policy.schedule("k"):
            assert 0.75 <= delay <= 1.25

    def test_single_attempt_means_empty_schedule(self):
        assert RetryPolicy(max_attempts=1).schedule("x") == ()

    @pytest.mark.parametrize("kwargs", [
        dict(max_attempts=0),
        dict(base_delay_s=-1.0),
        dict(multiplier=0.5),
        dict(jitter=1.0),
        dict(attempt_timeout_s=0.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestCallWithRetry:
    def test_transient_failure_then_success(self):
        clock = ManualClock()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise AnalysisError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, jitter=0.0, base_delay_s=1.0)
        assert call_with_retry(flaky, policy, "k", clock) == "ok"
        assert calls["n"] == 3
        assert clock.sleeps == [1.0, 2.0]  # backoff consumed via the clock

    def test_exhaustion_raises_with_cause(self):
        policy = RetryPolicy(max_attempts=2, jitter=0.0)

        def broken():
            raise AnalysisError("still down")

        with pytest.raises(SourceUnavailableError) as excinfo:
            call_with_retry(broken, policy, "k", ManualClock())
        assert isinstance(excinfo.value.__cause__, AnalysisError)

    def test_programming_errors_propagate_unretried(self):
        calls = {"n": 0}

        def buggy():
            calls["n"] += 1
            raise TypeError("bug")

        with pytest.raises(TypeError):
            call_with_retry(buggy, RetryPolicy(), "k", ManualClock())
        assert calls["n"] == 1

    def test_timeout_budget_counts_as_failure(self):
        clock = ManualClock()

        def slow():
            clock.advance(5.0)  # simulated 5s call
            return "late"

        policy = RetryPolicy(
            max_attempts=2, attempt_timeout_s=1.0, jitter=0.0
        )
        with pytest.raises(SourceUnavailableError, match="budget"):
            call_with_retry(slow, policy, "k", clock)

    def test_no_sleep_after_final_attempt(self):
        clock = ManualClock()

        def broken():
            raise AnalysisError("down")

        policy = RetryPolicy(max_attempts=3, jitter=0.0, base_delay_s=1.0)
        with pytest.raises(SourceUnavailableError):
            call_with_retry(broken, policy, "k", clock)
        assert len(clock.sleeps) == 2


class TestFallback:
    def test_primary_serves(self):
        chain = Fallback(("azure", lambda t: t.upper()),
                         ("offline", lambda t: t))
        result = chain.call("hi")
        assert result.value == "HI"
        assert result.used == "azure"
        assert not result.degraded
        assert chain.served_by == {"azure": 1, "offline": 0}

    def test_fallback_serves_when_primary_raises(self):
        def azure(text):
            raise OSError("503 service unavailable")

        chain = Fallback(("azure", azure), ("offline", lambda t: t))
        result = chain.call("hi")
        assert result.value == "hi"
        assert result.used == "offline"
        assert result.used_index == 1
        assert result.degraded
        assert result.errors[0][0] == "azure"
        assert "503" in result.errors[0][1]

    def test_every_link_failing_raises(self):
        def down(text):
            raise OSError("down")

        chain = Fallback(("a", down), ("b", down))
        with pytest.raises(SourceUnavailableError, match="a: .*; b: "):
            chain.call("hi")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            Fallback(("a", str), ("a", str))

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigError):
            Fallback()

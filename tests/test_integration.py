"""Cross-package integration tests: the full paper pipelines, small scale.

These tests exercise the complete §3 and §4 chains (generation →
analysis) and the §5 service on top of both, at sizes small enough for
the unit-test budget.  They complement the benchmarks, which run the
same chains at figure scale.
"""

import datetime as dt

import numpy as np
import pytest

from repro.analysis import (
    outage_keyword_series,
    sentiment_timeline,
    track_speeds,
)
from repro.core.usaas import (
    UsaasQuery,
    UsaasService,
    social_signals,
    telemetry_signals,
)
from repro.engagement import CohortFilter, fig1_curves, mos_by_engagement
from repro.engagement.predictor import train_test_evaluate


class TestSection3Chain:
    """telemetry → engagement analyses."""

    def test_dataset_to_fig1_to_predictor(self, small_dataset):
        pool = list(CohortFilter().apply(small_dataset).participants())
        assert pool

        fig1 = fig1_curves(pool, use_control_windows=False, min_bin_count=5)
        assert set(fig1.curves) == {
            "latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps"
        }

        mos = mos_by_engagement(small_dataset.participants())
        assert mos.strongest_metric() in (
            "presence_pct", "cam_on_pct", "mic_on_pct"
        )

        report = train_test_evaluate(small_dataset.participants())
        assert report.mae < 1.5  # far better than random (expected ~1.6+)

    def test_jsonl_roundtrip_preserves_analysis(self, small_dataset, tmp_path):
        """Persisting and reloading must not change analysis outputs."""
        path = tmp_path / "calls.jsonl"
        small_dataset.to_jsonl(path)
        from repro.telemetry.store import CallDataset

        reloaded = CallDataset.from_jsonl(path)
        original = mos_by_engagement(small_dataset.participants())
        roundtrip = mos_by_engagement(reloaded.participants())
        for name in original.correlations:
            assert roundtrip.correlations[name] == pytest.approx(
                original.correlations[name]
            )


class TestSection4Chain:
    """social corpus → nlp/ocr analyses."""

    def test_corpus_to_all_pipelines(self, small_corpus):
        timeline = sentiment_timeline(small_corpus)
        assert len(timeline.scores) == len(small_corpus)

        outages = outage_keyword_series(small_corpus, scores=timeline.scores)
        # Both 2022 H1 headline outages visible.
        assert outages.occurrences[dt.date(2022, 1, 7)] > 0
        assert outages.occurrences[dt.date(2022, 4, 22)] > 0

        track = track_speeds(small_corpus, min_reports_per_month=5)
        assert track.n_extracted > 0
        finite = [v for _, v in track.median.items() if not np.isnan(v)]
        assert finite
        assert all(5 < v < 200 for v in finite)

    def test_analysis_never_touches_ground_truth(self, small_corpus):
        """The speed tracker must work from OCR output alone; corrupting
        the ground-truth objects after rendering would be invisible.  We
        verify the weaker, testable property: extracted medians differ
        from truth (noise exists) yet stay close (medians are robust)."""
        track = track_speeds(small_corpus)
        truth = {}
        for post in small_corpus.speed_shares():
            month = (post.date.year, post.date.month)
            truth.setdefault(month, []).append(post.speed_test.download_mbps)
        compared = 0
        for month, values in truth.items():
            if len(values) < 30:
                continue
            measured = track.median[month]
            if np.isnan(measured):
                continue
            compared += 1
            assert measured == pytest.approx(
                float(np.median(values)), rel=0.2
            )
        assert compared > 0


class TestSection5Chain:
    """both signal families → USaaS."""

    def test_service_over_both_sources(self, small_dataset, small_corpus):
        service = UsaasService()
        service.register_source(
            "teams", lambda: telemetry_signals(small_dataset, network="starlink")
        )
        service.register_source("reddit", lambda: social_signals(small_corpus))
        report = service.answer(UsaasQuery(network="starlink", service="teams"))
        assert report.n_implicit > 0
        assert report.n_explicit > 0
        kinds = {i.kind for i in report.insights}
        assert "level" in kinds
        assert report.summary.startswith("USaaS digest")

    def test_determinism_end_to_end(self):
        """Same seeds → byte-identical summaries."""
        from repro.social import CorpusConfig, CorpusGenerator
        from repro.telemetry import CallDatasetGenerator, GeneratorConfig

        def build():
            ds = CallDatasetGenerator(
                GeneratorConfig(n_calls=40, seed=9, mos_sample_rate=0.2)
            ).generate()
            corpus = CorpusGenerator(CorpusConfig(
                seed=9,
                span_start=dt.date(2022, 1, 1),
                span_end=dt.date(2022, 2, 28),
                author_pool_size=300,
            )).generate()
            service = UsaasService()
            service.register_source(
                "teams", lambda: telemetry_signals(ds, network="starlink")
            )
            service.register_source(
                "reddit", lambda: social_signals(corpus)
            )
            return service.answer(UsaasQuery(network="starlink")).summary

        assert build() == build()

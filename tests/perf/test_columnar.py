"""Tier-1 equivalence contracts for the columnar query layer.

The whole point of ``repro.perf.columnar`` is that it is a *pure*
optimisation: every columnar read path must produce results
float-for-float identical to its record-at-a-time reference
implementation.  These tests pin that contract across seeds —
``.tobytes()`` comparisons, not ``allclose`` — plus the serialization
round trips, the artifact-cache integration, the shared sentiment
block, and the min-work auto-serial heuristic's byte identity.
"""

import datetime as dt

import numpy as np
import pytest

from repro.analysis.fulcrum import pos_vs_speed
from repro.analysis.outage_monitor import outage_keyword_series
from repro.analysis.sentiment_timeline import sentiment_timeline
from repro.core.signals import ImplicitSignal, SignalKind, SignalSeries
from repro.core.timeline import MonthlySeries
from repro.core.usaas import (
    FallbackSentimentChain,
    social_signals,
    social_signals_records,
    telemetry_signals,
    telemetry_signals_records,
)
from repro.engagement import (
    DEFAULT_EDGES,
    control_windows_except,
    curve_matrix,
    engagement_curve,
)
from repro.errors import SchemaError
from repro.nlp.sentiment import SentimentAnalyzer
from repro.perf import ArtifactCache
from repro.perf.columnar import (
    CorpusColumns,
    ParticipantColumns,
    corpus_columns,
    participant_columns,
)
from repro.social import CorpusConfig, CorpusGenerator
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.schema import ENGAGEMENT_METRICS

SEEDS = (101, 202, 303)


class _RecordPathAnalyzer:
    """Same scores as the default analyzer, but a different type — so
    dispatchers must take their record-at-a-time reference path."""

    def __init__(self):
        self._inner = SentimentAnalyzer()

    def score(self, text):
        return self._inner.score(text)

    def score_many(self, texts):
        return self._inner.score_many(texts)

#: 43 days — under the 200-day sharding floor, so a workers=2 corpus
#: run must take the auto-serial path.
CORPUS_KW = dict(
    span_start=dt.date(2022, 2, 1),
    span_end=dt.date(2022, 3, 15),
    author_pool_size=150,
)


def _dataset(seed, n_calls=20):
    return CallDatasetGenerator(
        GeneratorConfig(n_calls=n_calls, seed=seed)
    ).generate()


@pytest.fixture(scope="module")
def datasets():
    return {seed: _dataset(seed) for seed in SEEDS}


@pytest.fixture(scope="module")
def corpus():
    return CorpusGenerator(CorpusConfig(seed=101, **CORPUS_KW)).generate()


def _assert_curves_equal(a, b, label):
    assert a.stat.tobytes() == b.stat.tobytes(), label
    assert a.counts.tobytes() == b.counts.tobytes(), label
    assert a.edges.tobytes() == b.edges.tobytes(), label
    assert a.centers.tobytes() == b.centers.tobytes(), label


class TestCurveBitIdentity:
    """curve_matrix == engagement_curve == the record loop, bit for bit."""

    def test_matrix_matches_per_curve_loop_across_seeds(self, datasets):
        windows = {m: control_windows_except(m) for m in DEFAULT_EDGES}
        for seed, ds in datasets.items():
            records = [p for call in ds for p in call.participants]
            matrix = curve_matrix(
                ds, dict(DEFAULT_EDGES),
                engagement_metrics=list(ENGAGEMENT_METRICS),
                control_windows=windows, min_bin_count=5,
            )
            for nm in DEFAULT_EDGES:
                for em in ENGAGEMENT_METRICS:
                    ref = engagement_curve(
                        records, nm, em, DEFAULT_EDGES[nm],
                        control_windows=windows[nm], min_bin_count=5,
                    )
                    _assert_curves_equal(
                        matrix[nm][em], ref, f"seed={seed} {nm}/{em}"
                    )

    def test_columnar_single_curve_matches_record_path(self, datasets):
        ds = datasets[101]
        records = [p for call in ds for p in call.participants]
        for nm in ("latency_ms", "loss_pct"):
            col = engagement_curve(
                ds, nm, "mic_on_pct", DEFAULT_EDGES[nm]
            )  # CallDataset -> columnar
            rec = engagement_curve(
                records, nm, "mic_on_pct", DEFAULT_EDGES[nm]
            )  # plain list -> record path
            _assert_curves_equal(col, rec, nm)

    def test_dropped_early_and_p95_agree(self, datasets):
        ds = datasets[202]
        records = [p for call in ds for p in call.participants]
        col = engagement_curve(
            ds, "jitter_ms", "dropped_early", DEFAULT_EDGES["jitter_ms"],
            network_stat="p95", statistic="median",
        )
        rec = engagement_curve(
            records, "jitter_ms", "dropped_early", DEFAULT_EDGES["jitter_ms"],
            network_stat="p95", statistic="median",
        )
        _assert_curves_equal(col, rec, "dropped_early/p95")

    def test_matrix_without_windows(self, datasets):
        ds = datasets[303]
        records = [p for call in ds for p in call.participants]
        matrix = curve_matrix(ds, {"latency_ms": DEFAULT_EDGES["latency_ms"]})
        for em in ENGAGEMENT_METRICS:
            ref = engagement_curve(
                records, "latency_ms", em, DEFAULT_EDGES["latency_ms"]
            )
            _assert_curves_equal(matrix["latency_ms"][em], ref, em)


class TestSignalEquivalence:
    """Bulk columnar exports equal the record-loop reference, signal for
    signal — same order, same kinds, same attrs."""

    def test_telemetry_signals_across_seeds(self, datasets):
        for seed, ds in datasets.items():
            rec = telemetry_signals_records(ds, network="starlink")
            col = telemetry_signals(ds, network="starlink")
            assert list(col) == list(rec), f"seed={seed}"

    def test_telemetry_rating_rows_are_explicit(self, datasets):
        col = telemetry_signals(datasets[101], network="starlink")
        kinds = {s.metric: s.kind for s in col}
        assert kinds["presence"] is SignalKind.IMPLICIT
        assert kinds.get("rating", SignalKind.EXPLICIT) is SignalKind.EXPLICIT

    def test_rating_column_is_nan_sparse_and_matches_records(self):
        ds = CallDatasetGenerator(
            GeneratorConfig(n_calls=20, seed=101, mos_sample_rate=0.5)
        ).generate()
        cols = participant_columns(ds)
        parts = list(ds.participants())
        rated = np.isfinite(cols.rating)
        assert rated.tolist() == [p.rating is not None for p in parts]
        assert 0 < rated.sum() < len(parts)
        expected = np.array(
            [p.rating for p in parts if p.rating is not None], dtype=float
        )
        assert cols.rating[rated].tobytes() == expected.tobytes()

    def test_network_of_falls_back_to_records(self, datasets):
        ds = datasets[101]
        rec = telemetry_signals_records(
            ds, network="", network_of=lambda p: p.platform
        )
        col = telemetry_signals(
            ds, network="", network_of=lambda p: p.platform
        )
        assert list(col) == list(rec)

    def test_social_signals_match_records(self, corpus):
        rec = social_signals_records(corpus, network="starlink")
        col = social_signals(corpus, network="starlink")
        assert list(col) == list(rec)

    def test_social_custom_scorer_takes_record_path(self, corpus):
        # FallbackSentimentChain only exposes .score; the dispatcher
        # must not try to bulk-score through it — and the offline chain
        # still produces the exact same signals.
        chain = FallbackSentimentChain()
        rec = social_signals(corpus, network="starlink", analyzer=chain)
        col = social_signals(corpus, network="starlink")
        assert list(col) == list(rec)


class TestExtendColumns:
    def _ts(self, n):
        base = dt.datetime(2022, 3, 1, 12, 0)
        return [base + dt.timedelta(minutes=i) for i in range(n)]

    def test_broadcast_scalars_match_append(self):
        ts = self._ts(3)
        values = np.array([1.0, 2.0, 3.0])
        bulk = SignalSeries()
        n = bulk.extend_columns(
            SignalKind.IMPLICIT, ts, "starlink", "presence", values,
            service="teams", weight=2.0,
        )
        assert n == 3
        ref = SignalSeries()
        for t, v in zip(ts, values):
            ref.append(ImplicitSignal(
                t, "starlink", "presence", float(v),
                service="teams", weight=2.0,
            ))
        assert list(bulk) == list(ref)

    def test_per_row_kind_and_metric_columns(self):
        ts = self._ts(2)
        series = SignalSeries()
        series.extend_columns(
            [SignalKind.IMPLICIT, SignalKind.EXPLICIT], ts,
            "starlink", ["presence", "rating"], [80.0, 4.0],
        )
        signals = list(series)
        assert signals[0].kind is SignalKind.IMPLICIT
        assert signals[1].kind is SignalKind.EXPLICIT
        assert [s.metric for s in signals] == ["presence", "rating"]

    def test_length_mismatch_message(self):
        series = SignalSeries()
        with pytest.raises(
            SchemaError,
            match=r"extend_columns: values has length 2, expected 3",
        ):
            series.extend_columns(
                SignalKind.IMPLICIT, self._ts(3), "starlink",
                "presence", [1.0, 2.0],
            )

    def test_validation_messages_match_post_init(self):
        series = SignalSeries()
        with pytest.raises(SchemaError, match="signal requires a network"):
            series.extend_columns(
                SignalKind.IMPLICIT, self._ts(1), "", "presence", [1.0]
            )
        with pytest.raises(
            SchemaError, match=r"weight must be non-negative, got -1.0"
        ):
            series.extend_columns(
                SignalKind.IMPLICIT, self._ts(1), "starlink", "presence",
                [1.0], weight=-1.0,
            )
        assert len(series) == 0  # nothing half-appended


def _assert_participant_columns_equal(a, b):
    assert a.call_id == b.call_id
    assert a.user_id == b.user_id
    assert a.platform == b.platform
    assert a.country == b.country
    assert a.call_start == b.call_start
    for name in (
        "session_duration_s", "presence_pct", "cam_on_pct",
        "mic_on_pct", "conditioning", "rating",
    ):
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), name
    assert a.dropped_early.tobytes() == b.dropped_early.tobytes()
    assert set(a.network) == set(b.network)
    for metric, stats in a.network.items():
        for stat, arr in stats.items():
            assert arr.tobytes() == b.network[metric][stat].tobytes()


class TestRoundTrips:
    def test_participant_columns_jsonl(self, datasets, tmp_path):
        cols = participant_columns(datasets[101])
        path = tmp_path / "cols.jsonl"
        cols.to_jsonl(path)
        loaded = ParticipantColumns.from_jsonl(path)
        _assert_participant_columns_equal(cols, loaded)

    def test_corpus_columns_jsonl(self, corpus, tmp_path):
        cols = corpus_columns(corpus)
        path = tmp_path / "corpus.jsonl"
        cols.to_jsonl(path)
        loaded = CorpusColumns.from_jsonl(path)
        assert loaded.post_id == cols.post_id
        assert loaded.full_text == cols.full_text
        assert loaded.created == cols.created
        assert loaded.day_index.tobytes() == cols.day_index.tobytes()
        assert loaded.month == cols.month
        assert loaded.popularity.tobytes() == cols.popularity.tobytes()
        assert loaded.speed_indices.tobytes() == cols.speed_indices.tobytes()
        # Post objects do not survive the disk trip; touching them must
        # be loud, not silently empty.
        assert loaded.posts is None
        with pytest.raises(SchemaError):
            loaded.speed_share_posts()

    def test_truncated_file_is_a_schema_error(self, datasets, tmp_path):
        cols = participant_columns(datasets[101])
        path = tmp_path / "cols.jsonl"
        cols.to_jsonl(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        with pytest.raises(SchemaError):
            ParticipantColumns.from_jsonl(path)


class TestCacheIntegration:
    def test_participant_columns_served_from_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        config = GeneratorConfig(n_calls=8, seed=77)
        first = participant_columns(
            CallDatasetGenerator(config).generate(), cache=cache,
            config=config,
        )
        # A fresh dataset object (no memo) with the same config must be
        # served the persisted block.
        second = participant_columns(
            CallDatasetGenerator(config).generate(), cache=cache,
            config=config,
        )
        _assert_participant_columns_equal(first, second)
        assert cache.stats().hits >= 1

    def test_corpus_columns_cache_reattaches_posts(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        config = CorpusConfig(seed=77, **CORPUS_KW)
        corpus_columns(CorpusGenerator(config).generate(), cache=cache)
        fresh = CorpusGenerator(config).generate()
        cols = corpus_columns(fresh, cache=cache)
        # Cache hit, but the in-hand corpus re-supplies the post objects
        # so speed_share_posts keeps working.
        assert cache.stats().hits >= 1
        shares = cols.speed_share_posts()
        assert [p.post_id for p in shares] == [
            p.post_id for p in fresh.speed_shares()
        ]


class TestSharedSentimentBlock:
    def test_block_scored_once_and_memoized(self, corpus):
        cols = corpus_columns(corpus)
        assert cols.sentiment(None) is cols.sentiment(None)
        assert corpus_columns(corpus) is cols  # corpus-level memo too

    def test_timeline_matches_record_path(self, corpus):
        col = sentiment_timeline(corpus)
        rec = sentiment_timeline(corpus, analyzer=_RecordPathAnalyzer())
        assert (
            col.strong_positive.values.tobytes()
            == rec.strong_positive.values.tobytes()
        )
        assert (
            col.strong_negative.values.tobytes()
            == rec.strong_negative.values.tobytes()
        )
        assert col.scores == rec.scores

    def test_outage_series_matches_record_path(self, corpus):
        col = outage_keyword_series(corpus)
        rec = outage_keyword_series(
            corpus, analyzer=FallbackSentimentChain()
        )
        assert (
            col.occurrences.values.tobytes()
            == rec.occurrences.values.tobytes()
        )
        assert col.threads.values.tobytes() == rec.threads.values.tobytes()

    def test_fulcrum_matches_record_path(self, corpus):
        speed = MonthlySeries.from_mapping(
            {(2022, 2): 100.0, (2022, 3): 90.0}
        )
        timeline = sentiment_timeline(corpus)
        col = pos_vs_speed(corpus, speed, min_strong_posts=1)
        rec = pos_vs_speed(
            corpus, speed, scores=timeline.scores, min_strong_posts=1
        )
        assert col.pos.values.tobytes() == rec.pos.values.tobytes()


class TestAutoSerial:
    def test_small_span_collapses_to_auto_serial(self, tmp_path):
        serial_gen = CorpusGenerator(CorpusConfig(seed=303, **CORPUS_KW))
        serial = serial_gen.generate()
        par_gen = CorpusGenerator(
            CorpusConfig(seed=303, workers=2, **CORPUS_KW)
        )
        parallel = par_gen.generate()
        assert par_gen.last_execution is not None
        assert par_gen.last_execution.mode == "auto-serial"
        serial.to_jsonl(tmp_path / "serial.jsonl")
        parallel.to_jsonl(tmp_path / "parallel.jsonl")
        assert (
            (tmp_path / "serial.jsonl").read_bytes()
            == (tmp_path / "parallel.jsonl").read_bytes()
        )


class TestColumnsSmoke:
    """Cheap structural checks; no perf marker, runs in tier-1."""

    def test_build_and_query_tiny_dataset(self):
        ds = _dataset(7, n_calls=3)
        cols = participant_columns(ds)
        assert len(cols) == ds.n_participants
        assert len(cols.metric("latency_ms", "mean")) == len(cols)
        drop = cols.engagement_values("dropped_early")
        assert set(np.unique(drop)).issubset({0.0, 100.0})
        mask = cols.window_mask(control_windows_except("latency_ms"))
        assert mask.dtype == bool and len(mask) == len(cols)
        with pytest.raises(SchemaError):
            cols.metric("latency_ms", "p99")
        with pytest.raises(SchemaError):
            cols.engagement_values("charisma")

    def test_append_invalidates_memo(self):
        ds = _dataset(7, n_calls=3)
        cols = participant_columns(ds)
        ds.append(ds[0])
        fresh = participant_columns(ds)
        assert fresh is not cols
        assert len(fresh) == len(cols) + len(ds[0].participants)

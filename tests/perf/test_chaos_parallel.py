"""Chaos at the pool layer: the crash-safe executor under injected faults.

Everything here is deterministic — worker crashes, hangs, slowness and
corrupt output come from a seeded :class:`FaultPlan` schedule, and time
comes from its :class:`ManualClock` — so the suite can assert the two
acceptance properties exactly:

* a run that absorbs faults (crash-on-shard-k, hang, corrupt output)
  produces output **byte-identical** to a fault-free serial run;
* an interrupted checkpointed run restarted with the same store
  re-executes **only the missing shards** and still matches the
  uninterrupted output byte for byte.
"""

import datetime as dt

import pytest

from repro.errors import ShardExecutionError
from repro.perf import CheckpointStore, ExecutionPolicy, ParallelMap
from repro.perf.cache import config_fingerprint
from repro.resilience import FaultPlan, WorkerFaultSpec
from repro.social import CorpusConfig, CorpusGenerator
from repro.telemetry import CallDatasetGenerator, GeneratorConfig

pytestmark = pytest.mark.chaos

CALLS = dict(n_calls=16, seed=909, mos_sample_rate=0.2)
CORPUS = dict(
    seed=909,
    span_start=dt.date(2022, 2, 1),
    span_end=dt.date(2022, 3, 15),
    author_pool_size=150,
)


def _square_shard(items):
    return [i * i for i in items]


def _chaos(seed=41, **spec):
    plan = FaultPlan(seed=seed)
    return plan, plan.worker_faults("w", WorkerFaultSpec(**spec))


def _bytes_of(artifact, tmp_path, name):
    path = tmp_path / name
    artifact.to_jsonl(path)
    return path.read_bytes()


class TestChaosEngine:
    """Plain shard functions through every injected failure mode."""

    ITEMS = list(range(16))
    SERIAL = [i * i for i in ITEMS]

    def test_crash_is_retried_and_output_identical(self):
        plan, chaos = _chaos(crash_on=((2, 1),))
        pm = ParallelMap(4, chaos=chaos)
        assert pm.map_shards(_square_shard, self.ITEMS) == self.SERIAL
        assert pm.last_report.retries == 1
        assert ("w", "shard2.crash") in plan.log

    def test_hang_is_reclaimed_by_watchdog(self):
        plan, chaos = _chaos(hang_on=((1, 1),))
        pm = ParallelMap(
            4, policy=ExecutionPolicy(shard_timeout_s=5.0), chaos=chaos
        )
        assert pm.map_shards(_square_shard, self.ITEMS) == self.SERIAL
        report = pm.last_report
        assert report.retries == 1
        assert report.stragglers.n_requeued == 1
        worst = report.stragglers.worst()
        assert worst.shard_index == 1
        assert worst.elapsed_s > worst.budget_s == 5.0
        assert ("w", "shard1.hang") in plan.log

    def test_slow_shard_result_is_kept(self):
        # Slow-but-complete is a straggler, never a failure: the
        # substream contract makes the late result byte-identical.
        plan, chaos = _chaos(slow_on=(3,), slow_s=2.0)
        pm = ParallelMap(
            4, policy=ExecutionPolicy(shard_timeout_s=1.0), chaos=chaos
        )
        assert pm.map_shards(_square_shard, self.ITEMS) == self.SERIAL
        report = pm.last_report
        assert report.retries == 0
        assert report.stragglers.n_requeued == 0
        assert report.stragglers.n_slow == 1
        assert report.stragglers.worst().action == "completed"

    def test_corrupt_output_is_rejected_and_retried(self):
        plan, chaos = _chaos(corrupt_on=((2, 1),))
        pm = ParallelMap(4, chaos=chaos)
        assert pm.map_shards(_square_shard, self.ITEMS) == self.SERIAL
        assert pm.last_report.retries == 1
        assert ("w", "shard2.corrupt") in plan.log

    def test_exhausted_retries_surface_typed_error(self):
        _, chaos = _chaos(crash_on=(2,))  # bare index: every attempt
        pm = ParallelMap(
            4,
            policy=ExecutionPolicy(
                max_shard_retries=1, fallback_in_process=False
            ),
            chaos=chaos,
        )
        with pytest.raises(ShardExecutionError, match="shard 2"):
            pm.map_shards(_square_shard, self.ITEMS)
        try:
            pm.map_shards(_square_shard, self.ITEMS)
        except ShardExecutionError as exc:
            assert exc.shard_index == 2
            assert exc.attempts == 2

    def test_final_fallback_rescues_always_crashing_shard(self):
        # The last attempt runs in the coordinator, outside the
        # (simulated) worker — injected worker faults cannot touch it.
        _, chaos = _chaos(crash_on=(2,))
        pm = ParallelMap(4, chaos=chaos)  # default: fallback_in_process
        assert pm.map_shards(_square_shard, self.ITEMS) == self.SERIAL
        assert pm.last_report.fallbacks == 1

    def test_fault_log_is_deterministic(self):
        logs = []
        for _ in range(2):
            plan, chaos = _chaos(
                crash_on=((1, 1),), corrupt_on=((3, 1),), hang_on=((5, 1),)
            )
            pm = ParallelMap(
                8, policy=ExecutionPolicy(shard_timeout_s=2.0), chaos=chaos
            )
            assert pm.map_shards(_square_shard, self.ITEMS) == self.SERIAL
            logs.append(tuple(plan.log))
        assert logs[0] == logs[1]
        assert logs[0] == (
            ("w", "shard1.crash"),
            ("w", "shard3.corrupt"),
            ("w", "shard5.hang"),
        )


class TestChaosGenerators:
    """The acceptance property, end to end through the real factories."""

    def test_calls_crash_on_shard_k_matches_fault_free_serial(self, tmp_path):
        serial = CallDatasetGenerator(
            GeneratorConfig(workers=1, **CALLS)
        ).generate()
        plan = FaultPlan(seed=17)
        chaos = plan.worker_faults(
            "pool", WorkerFaultSpec(crash_on=((3, 1),), corrupt_on=((6, 1),))
        )
        gen = CallDatasetGenerator(GeneratorConfig(workers=4, **CALLS))
        chaotic = gen.generate(chaos=chaos)
        assert gen.last_execution.retries == 2
        assert ("pool", "shard3.crash") in plan.log
        assert ("pool", "shard6.corrupt") in plan.log
        assert _bytes_of(serial, tmp_path, "serial.jsonl") == _bytes_of(
            chaotic, tmp_path, "chaotic.jsonl"
        )

    def test_corpus_hang_matches_fault_free_serial(self, tmp_path):
        serial = CorpusGenerator(CorpusConfig(workers=1, **CORPUS)).generate()
        plan = FaultPlan(seed=17)
        chaos = plan.worker_faults(
            "pool", WorkerFaultSpec(hang_on=((0, 1),))
        )
        gen = CorpusGenerator(CorpusConfig(workers=4, **CORPUS))
        chaotic = gen.generate(
            execution=ExecutionPolicy(shard_timeout_s=3.0), chaos=chaos
        )
        report = gen.last_execution
        assert report.retries == 1
        assert report.stragglers.n_requeued == 1
        assert _bytes_of(serial, tmp_path, "serial.jsonl") == _bytes_of(
            chaotic, tmp_path, "chaotic.jsonl"
        )


class TestCheckpointedResume:
    """Kill a run mid-flight; resume re-executes only what's missing."""

    def test_interrupted_calls_run_resumes_only_missing_shards(self, tmp_path):
        config = GeneratorConfig(workers=4, **CALLS)
        ckpt = tmp_path / "ckpt"
        # The "kill": shard 5 crashes on every attempt with retries and
        # the in-process fallback disabled, so the run dies mid-flight
        # exactly as a SIGKILL between shard commits would.
        plan = FaultPlan(seed=23)
        chaos = plan.worker_faults("pool", WorkerFaultSpec(crash_on=(5,)))
        doomed = CallDatasetGenerator(config)
        with pytest.raises(ShardExecutionError, match="shard 5"):
            doomed.generate(
                execution=ExecutionPolicy(
                    max_shard_retries=0, fallback_in_process=False
                ),
                checkpoint_dir=str(ckpt),
                chaos=chaos,
            )
        run_key = config_fingerprint("calls", config)
        committed = CheckpointStore(ckpt, run_key=run_key).completed_indices()
        assert committed == [0, 1, 2, 3, 4]  # everything before the crash

        # Resume without chaos: only the 11 missing shards execute.
        resumed_gen = CallDatasetGenerator(config)
        resumed = resumed_gen.generate(checkpoint_dir=str(ckpt))
        report = resumed_gen.last_execution
        store = resumed_gen.last_checkpoint
        assert report.shards_total == 16
        assert report.shards_resumed == 5
        assert report.shards_executed == 11
        assert store.resumed == 5
        assert store.invalid == 0

        serial = CallDatasetGenerator(
            GeneratorConfig(workers=1, **CALLS)
        ).generate()
        assert _bytes_of(serial, tmp_path, "serial.jsonl") == _bytes_of(
            resumed, tmp_path, "resumed.jsonl"
        )
        assert store.discard() == 0
        assert not ckpt.exists()

    def test_completed_checkpoint_serves_every_shard(self, tmp_path):
        config = GeneratorConfig(workers=2, **CALLS)
        ckpt = tmp_path / "ckpt"
        first_gen = CallDatasetGenerator(config)
        first = first_gen.generate(checkpoint_dir=str(ckpt))
        assert first_gen.last_execution.shards_executed == 8

        second_gen = CallDatasetGenerator(config)
        second = second_gen.generate(checkpoint_dir=str(ckpt))
        report = second_gen.last_execution
        assert report.mode == "resumed"
        assert report.shards_executed == 0
        assert report.shards_resumed == report.shards_total == 8
        assert _bytes_of(first, tmp_path, "first.jsonl") == _bytes_of(
            second, tmp_path, "second.jsonl"
        )

    def test_interrupted_corpus_run_resumes(self, tmp_path):
        config = CorpusConfig(workers=2, **CORPUS)
        ckpt = tmp_path / "ckpt"
        plan = FaultPlan(seed=23)
        chaos = plan.worker_faults("pool", WorkerFaultSpec(crash_on=(3,)))
        doomed = CorpusGenerator(config)
        with pytest.raises(ShardExecutionError, match="shard 3"):
            doomed.generate(
                execution=ExecutionPolicy(
                    max_shard_retries=0, fallback_in_process=False
                ),
                checkpoint_dir=str(ckpt),
                chaos=chaos,
            )
        resumed_gen = CorpusGenerator(config)
        resumed = resumed_gen.generate(checkpoint_dir=str(ckpt))
        report = resumed_gen.last_execution
        assert report.shards_resumed == 3
        assert report.shards_executed == report.shards_total - 3

        serial = CorpusGenerator(CorpusConfig(workers=1, **CORPUS)).generate()
        assert _bytes_of(serial, tmp_path, "serial.jsonl") == _bytes_of(
            resumed, tmp_path, "resumed.jsonl"
        )

    def test_tampered_shard_file_is_re_executed(self, tmp_path):
        config = GeneratorConfig(workers=2, **CALLS)
        ckpt = tmp_path / "ckpt"
        gen = CallDatasetGenerator(config)
        first = gen.generate(checkpoint_dir=str(ckpt))
        # Tear one committed shard file the way a crashed writer would.
        victim = ckpt / "shard-00003.jsonl"
        raw = victim.read_bytes()
        victim.write_bytes(raw[: len(raw) // 2])

        again_gen = CallDatasetGenerator(config)
        again = again_gen.generate(checkpoint_dir=str(ckpt))
        report = again_gen.last_execution
        assert report.shards_resumed == 7
        assert report.shards_executed == 1  # only the torn shard re-ran
        assert again_gen.last_checkpoint.invalid == 1
        assert _bytes_of(first, tmp_path, "first.jsonl") == _bytes_of(
            again, tmp_path, "again.jsonl"
        )

"""The advisory build lock: unit behaviour and a two-writer stress test.

Atomic renames already make individual cache writes safe; the lock's job
is mutual exclusion around the *build*, so two processes missing on the
same fingerprint produce exactly one build — the loser waits, re-checks
and loads the winner's artifact instead of rebuilding into the same
``.tmp`` sibling.
"""

import json
import multiprocessing
import time
from pathlib import Path

import pytest

from repro.errors import LockTimeoutError
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.io.locks import STALE_LOCK_S, file_lock
from repro.perf.cache import ArtifactCache

N_RECORDS = 50


class TestFileLock:
    def test_lock_file_appears_beside_target(self, tmp_path):
        target = tmp_path / "artifact.jsonl"
        with file_lock(target):
            assert (tmp_path / "artifact.jsonl.lock").exists()

    def test_sequential_acquisition_succeeds(self, tmp_path):
        target = tmp_path / "artifact.jsonl"
        for _ in range(3):
            with file_lock(target, timeout_s=1.0):
                pass

    def test_contended_lock_times_out(self, tmp_path):
        # flock conflicts between two open file descriptions even within
        # one process, so holding the lock here starves the inner waiter.
        target = tmp_path / "artifact.jsonl"
        with file_lock(target):
            with pytest.raises(LockTimeoutError, match="artifact.jsonl.lock"):
                with file_lock(target, timeout_s=0.1, poll_s=0.01):
                    pass

    def test_released_lock_is_reacquirable_immediately(self, tmp_path):
        target = tmp_path / "artifact.jsonl"
        with file_lock(target):
            pass
        with file_lock(target, timeout_s=0.1):
            pass


class TestFallbackLockfile:
    """The O_CREAT|O_EXCL path used where fcntl does not exist."""

    @pytest.fixture
    def no_fcntl(self, monkeypatch):
        import repro.io.locks as locks

        monkeypatch.setattr(locks, "fcntl", None)

    def test_lockfile_holds_pid_and_is_removed(self, tmp_path, no_fcntl):
        target = tmp_path / "artifact.jsonl"
        lock_path = tmp_path / "artifact.jsonl.lock"
        with file_lock(target):
            assert int(lock_path.read_text()) > 0
        assert not lock_path.exists()

    def test_fresh_foreign_lockfile_blocks(self, tmp_path, no_fcntl):
        target = tmp_path / "artifact.jsonl"
        (tmp_path / "artifact.jsonl.lock").write_text("12345")
        with pytest.raises(LockTimeoutError):
            with file_lock(target, timeout_s=0.1, poll_s=0.01):
                pass

    def test_stale_lockfile_is_broken(self, tmp_path, no_fcntl):
        import os

        target = tmp_path / "artifact.jsonl"
        lock_path = tmp_path / "artifact.jsonl.lock"
        lock_path.write_text("12345")
        stale = time.time() - (STALE_LOCK_S + 60)
        os.utime(lock_path, (stale, stale))
        with file_lock(target, timeout_s=1.0):
            pass  # acquired by breaking the orphan
        assert not lock_path.exists()


class TestCacheBuildLock:
    def test_held_lock_surfaces_timeout_from_load_or_build(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.lock_timeout_s = 0.1
        path = cache.path_for("calls", {"n": 1})
        with file_lock(path):
            with pytest.raises(LockTimeoutError):
                cache.load_or_build(
                    "calls", {"n": 1},
                    build=lambda: [{"i": 1}],
                    load=read_jsonl,
                    dump=lambda art, p: write_jsonl(p, art),
                )
        assert cache.misses == 0  # never got as far as building


def _slow_build():
    time.sleep(0.3)  # widen the race window well past process start skew
    return [{"i": i} for i in range(N_RECORDS)]


def _race_worker(root, barrier, out_path):
    cache = ArtifactCache(root)
    barrier.wait()
    artifact = cache.load_or_build(
        "stress", {"n": N_RECORDS},
        build=_slow_build,
        load=read_jsonl,
        dump=lambda art, path: write_jsonl(path, art),
    )
    Path(out_path).write_text(
        json.dumps({"built": cache.misses, "n_records": len(artifact)})
    )


class TestTwoWriterStress:
    def test_concurrent_writers_build_exactly_once(self, tmp_path):
        root = tmp_path / "cache"
        barrier = multiprocessing.Barrier(2)
        outs = [tmp_path / f"writer-{i}.json" for i in range(2)]
        procs = [
            multiprocessing.Process(
                target=_race_worker, args=(str(root), barrier, str(out))
            )
            for out in outs
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
        assert all(p.exitcode == 0 for p in procs)

        reports = [json.loads(out.read_text()) for out in outs]
        # Exactly one writer built; the other waited on the lock,
        # re-checked and loaded the winner's bytes.
        assert sorted(r["built"] for r in reports) == [0, 1]
        assert all(r["n_records"] == N_RECORDS for r in reports)

        cache = ArtifactCache(root)
        entry = cache.path_for("stress", {"n": N_RECORDS})
        assert read_jsonl(entry) == [{"i": i} for i in range(N_RECORDS)]
        # No torn temporaries left behind by interleaved writers.
        assert list(root.glob("*.tmp")) == []

"""End-to-end smoke test of the perf harness and the regression gate.

The full benchmark (``benchmarks/perf -m perf``) takes minutes; this
runs the same code path at smoke scale in seconds so tier-1 catches
harness breakage immediately.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def smoke_run(tmp_path_factory):
    sys.path.insert(0, str(REPO_ROOT))
    try:
        from benchmarks.perf.harness import (
            PerfScale,
            append_trajectory,
            make_entry,
            run_perf_suite,
        )
    finally:
        sys.path.pop(0)
    tmp = tmp_path_factory.mktemp("perf-smoke")
    scale = PerfScale.smoke()
    results = run_perf_suite(scale, tmp / "cache")
    trajectory_path = tmp / "BENCH_perf.json"
    append_trajectory(trajectory_path, make_entry(scale, results))
    return results, trajectory_path


class TestHarnessSmoke:
    def test_all_metrics_present(self, smoke_run):
        results, _ = smoke_run
        for key in (
            "calls_cold_s", "calls_warm_s", "calls_warm_speedup",
            "calls_parallel_s", "calls_parallel_speedup",
            "corpus_cold_s", "corpus_warm_s", "corpus_warm_speedup",
            "calls_vec_s", "calls_vec_speedup",
            "corpus_vec_s", "corpus_vec_speedup",
            "sentiment_per_text_pps", "sentiment_batch_pps",
            "sentiment_batch_speedup",
            "analysis_columns_build_s", "analysis_curves_record_s",
            "analysis_curve_matrix_s", "analysis_curve_matrix_speedup",
            "analysis_signals_record_s", "analysis_signals_columnar_s",
            "analysis_signals_speedup", "analysis_timeline_cold_s",
            "analysis_timeline_warm_s", "analysis_timeline_reuse_speedup",
            "serving_soak_wall_s", "serving_p50_admitted_s",
            "serving_p99_admitted_s",
            "cluster_soak_wall_s", "cluster_p50_admitted_s",
            "cluster_p99_admitted_s", "cluster_shed_rate",
            "streaming_soak_wall_s", "streaming_records_per_wall_s",
            "streaming_detect_latency_s", "streaming_incremental_s",
            "streaming_naive_recompute_s", "streaming_incremental_speedup",
        ):
            assert key in results, key
            assert results[key] > 0

    def test_serving_phase_counters(self, smoke_run):
        results, _ = smoke_run
        assert results["serving_arrivals_n"] > 0
        # 5x-capacity overload must actually shed; the exact counts are
        # seed-derived, so a second smoke run reproduces them exactly.
        assert results["serving_shed"] > 0
        assert 0.0 < results["serving_shed_rate"] < 1.0
        assert results["serving_served"] > 0
        # Simulated latencies are bounded by queue depth x service time;
        # admitted queries never report more than their ~1s deadline
        # plus one attempt.
        assert results["serving_p99_admitted_s"] <= 1.2
        # The soak runs on a ManualClock: simulated seconds must dwarf
        # the wall seconds it took to execute.
        assert results["serving_simulated_s"] > 0

    def test_cluster_phase_counters(self, smoke_run):
        results, _ = smoke_run
        # The cluster soak crashes one of three replicas mid-spike: the
        # dead replica's queue fails terminally, the ring rebalances out
        # and back, and the cluster still serves through the outage.
        assert results["cluster_replicas_n"] == 3
        assert results["cluster_arrivals_n"] > 0
        assert results["cluster_served"] > 0
        assert results["cluster_failed"] > 0
        assert results["cluster_rebalances"] >= 2
        assert 0.0 < results["cluster_shed_rate"] < 1.0
        assert results["cluster_p99_admitted_s"] <= 1.2
        assert results["cluster_simulated_s"] > 0

    def test_streaming_phase_counters(self, smoke_run):
        results, _ = smoke_run
        assert results["streaming_deliveries_n"] > 0
        assert results["streaming_windows_n"] > 0
        # Detection latency is simulated time: seed-derived and bounded
        # by the degradation's scoring horizon (240s).
        assert 0.0 < results["streaming_detect_latency_s"] <= 240.0
        # The incremental operator must beat stateless recomputation
        # even at smoke scale; the 5x floor binds at full scale only.
        assert results["streaming_incremental_speedup"] > 1.0

    def test_parallel_modes_reported(self, smoke_run):
        results, _ = smoke_run
        valid = {"serial", "pool", "in-process", "auto-serial"}
        assert results["calls_parallel_mode"] in valid
        assert results["corpus_parallel_mode"] in valid
        if results["corpus_parallel_mode"] == "auto-serial":
            # Identical code path ran — the honest speedup is 1.0.
            assert results["corpus_parallel_speedup"] == 1.0

    def test_analysis_counts(self, smoke_run):
        results, _ = smoke_run
        assert results["analysis_participants_n"] > 0
        assert results["analysis_signals_n"] >= (
            4 * results["analysis_participants_n"]
        )

    def test_vectorized_phase(self, smoke_run):
        # Fixed per-run overheads dominate at smoke scale, so the >=10x
        # / >=5x floors only bind at full scale (tools gate + -m perf);
        # here the vectorized engines just have to beat the record
        # paths at all and agree on row counts.
        results, _ = smoke_run
        assert results["calls_vec_speedup"] > 1.0
        assert results["corpus_vec_speedup"] > 1.0
        assert results["calls_vec_rows"] > 0
        assert results["corpus_vec_rows"] == results["corpus_n_posts"]

    def test_workloads_nonempty(self, smoke_run):
        results, _ = smoke_run
        assert results["calls_n"] > 0
        assert results["corpus_n_posts"] > 0
        assert results["sentiment_n_texts"] == results["corpus_n_posts"]

    def test_trajectory_written_and_readable(self, smoke_run):
        _, path = smoke_run
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["schema"] == 1
        assert len(data["runs"]) == 1
        assert data["runs"][0]["scale"] == "smoke"
        assert data["runs"][0]["results"]["calls_cold_s"] > 0


class TestRegressionGate:
    def _run(self, path):
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "check_bench_regression.py"),
             str(path)],
            capture_output=True, text=True,
        )

    def _trajectory(self, tmp_path, cold_values):
        runs = [
            {
                "scale": "full",
                "results": {"calls_cold_s": c, "corpus_cold_s": c},
            }
            for c in cold_values
        ]
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({"schema": 1, "runs": runs}))
        return path

    def test_single_run_passes(self, tmp_path):
        assert self._run(self._trajectory(tmp_path, [1.0])).returncode == 0

    def test_within_threshold_passes(self, tmp_path):
        proc = self._run(self._trajectory(tmp_path, [1.0, 1.2]))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_regression_fails(self, tmp_path):
        proc = self._run(self._trajectory(tmp_path, [1.0, 1.5]))
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout

    def test_missing_trajectory_is_not_an_error(self, tmp_path):
        # A fresh checkout has no BENCH_perf.json; the gate must pass
        # with a clear message, not fail the pipeline.
        proc = self._run(tmp_path / "nope.json")
        assert proc.returncode == 0
        assert "nothing to compare" in proc.stdout

    def test_malformed_trajectory_exits_2(self, tmp_path):
        bad = tmp_path / "BENCH_perf.json"
        bad.write_text("{not json")
        assert self._run(bad).returncode == 2

    def test_speedup_floor_violation_fails(self, tmp_path):
        runs = [{
            "scale": "full",
            "results": {
                "calls_cold_s": 1.0, "corpus_cold_s": 1.0,
                "calls_vec_speedup": 3.0, "corpus_vec_speedup": 8.0,
            },
        }]
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({"schema": 1, "runs": runs}))
        proc = self._run(path)
        assert proc.returncode == 1
        assert "floor" in proc.stdout + proc.stderr

    def test_speedup_floor_satisfied_passes(self, tmp_path):
        runs = [{
            "scale": "full",
            "results": {
                "calls_cold_s": 1.0, "corpus_cold_s": 1.0,
                "calls_vec_speedup": 12.0, "corpus_vec_speedup": 8.0,
            },
        }]
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({"schema": 1, "runs": runs}))
        proc = self._run(path)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_pre_vectorization_full_run_skips_floors(self, tmp_path):
        # Trajectory entries from before the vectorized engines carry
        # no *_vec_speedup keys; the floors must not fail them.
        assert self._run(self._trajectory(tmp_path, [1.0])).returncode == 0

    def test_millisecond_jitter_within_noise_floor_passes(self, tmp_path):
        # A 5x ratio on a 10ms phase is host-load jitter, not a code
        # regression: wall-clock metrics need both >30% and >0.1s.
        runs = [
            {"scale": "full", "results": {"analysis_signals_columnar_s": c}}
            for c in (0.010, 0.050)
        ]
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({"schema": 1, "runs": runs}))
        proc = self._run(path)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "noise floor" in proc.stdout

    def test_simulated_clock_metrics_have_no_noise_floor(self, tmp_path):
        # serving_*/cluster_* are seed-derived simulated-clock numbers;
        # any drift is a behaviour change, however small in "seconds".
        runs = [
            {"scale": "full", "results": {"serving_p50_admitted_s": c}}
            for c in (0.010, 0.050)
        ]
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({"schema": 1, "runs": runs}))
        proc = self._run(path)
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stdout

    def test_scales_not_compared(self, tmp_path):
        runs = [
            {"scale": "smoke", "results": {"calls_cold_s": 0.1,
                                           "corpus_cold_s": 0.1}},
            {"scale": "full", "results": {"calls_cold_s": 10.0,
                                          "corpus_cold_s": 10.0}},
        ]
        path = tmp_path / "BENCH_perf.json"
        path.write_text(json.dumps({"schema": 1, "runs": runs}))
        assert self._run(path).returncode == 0

"""Unit tests for the checkpoint store's verification chain.

Every way a checkpoint directory can lie — edited shard file, grafted
manifest, wrong config, wrong schema version, torn manifest write — must
be detected and answered with re-execution, never with silently mixed
artifacts.
"""

import json

import pytest

from repro.perf.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    MANIFEST_NAME,
    CheckpointStore,
    shard_fingerprint,
)
from repro.perf.parallel import Shard

SHARD0 = Shard(index=0, start=0, stop=3)
SHARD1 = Shard(index=1, start=3, stop=5)
RECORDS0 = [{"i": 0}, {"i": 1}, {"i": 2}]
RECORDS1 = [{"i": 3}, {"i": 4}]


def _store(tmp_path, run_key="key-a", **kwargs):
    return CheckpointStore(tmp_path / "ckpt", run_key=run_key, **kwargs)


def _primed(tmp_path, **kwargs):
    store = _store(tmp_path, **kwargs)
    store.commit(SHARD0, RECORDS0)
    store.commit(SHARD1, RECORDS1)
    return store


class TestRoundTrip:
    def test_commit_then_load(self, tmp_path):
        store = _primed(tmp_path)
        assert store.committed == 2
        fresh = _store(tmp_path)
        assert fresh.load(SHARD0) == RECORDS0
        assert fresh.load(SHARD1) == RECORDS1
        assert fresh.resumed == 2
        assert fresh.invalid == 0

    def test_completed_indices(self, tmp_path):
        store = _primed(tmp_path)
        assert store.completed_indices() == [0, 1]
        assert _store(tmp_path).completed_indices() == [0, 1]

    def test_missing_shard_loads_none(self, tmp_path):
        store = _primed(tmp_path)
        assert store.load(Shard(index=7, start=9, stop=11)) is None
        assert store.invalid == 0  # absence is not corruption

    def test_encode_decode_round_trip(self, tmp_path):
        store = _store(
            tmp_path,
            encode=lambda r: {"v": r},
            decode=lambda r: r["v"],
        )
        store.commit(SHARD0, [10, 20, 30])
        fresh = _store(
            tmp_path,
            encode=lambda r: {"v": r},
            decode=lambda r: r["v"],
        )
        assert fresh.load(SHARD0) == [10, 20, 30]

    def test_commit_overwrites_previous_attempt(self, tmp_path):
        store = _primed(tmp_path)
        store.commit(SHARD0, [{"i": 99}, {"i": 98}, {"i": 97}])
        fresh = _store(tmp_path)
        assert fresh.load(SHARD0) == [{"i": 99}, {"i": 98}, {"i": 97}]


class TestVerificationChain:
    def test_fingerprint_binds_extent(self, tmp_path):
        # Same index, different slice of the work list — a different
        # shard plan must never reuse the old bytes.
        _primed(tmp_path)
        fresh = _store(tmp_path)
        moved = Shard(index=0, start=0, stop=4)
        assert fresh.load(moved) is None
        assert fresh.invalid == 1

    def test_tampered_bytes_fail_digest(self, tmp_path):
        store = _primed(tmp_path)
        path = store.root / "shard-00000.jsonl"
        path.write_bytes(path.read_bytes().replace(b'"i": 1', b'"i": 9'))
        fresh = _store(tmp_path)
        assert fresh.load(SHARD0) is None
        assert fresh.invalid == 1
        assert fresh.load(SHARD1) == RECORDS1  # other shards unaffected

    def test_deleted_shard_file_is_invalid(self, tmp_path):
        store = _primed(tmp_path)
        (store.root / "shard-00001.jsonl").unlink()
        fresh = _store(tmp_path)
        assert fresh.load(SHARD1) is None
        assert fresh.invalid == 1

    def test_wrong_record_count_is_invalid(self, tmp_path):
        # A manifest whose digest matches but whose count lies (e.g. a
        # hand-edited entry) is still rejected.
        store = _primed(tmp_path)
        manifest_path = store.root / MANIFEST_NAME
        data = json.loads(manifest_path.read_text())
        data["shards"]["0"]["n_records"] = 99
        manifest_path.write_text(json.dumps(data))
        fresh = _store(tmp_path)
        assert fresh.load(SHARD0) is None
        assert fresh.invalid == 1

    def test_invalid_entry_is_dropped_once(self, tmp_path):
        store = _primed(tmp_path)
        (store.root / "shard-00000.jsonl").unlink()
        fresh = _store(tmp_path)
        assert fresh.load(SHARD0) is None
        assert fresh.load(SHARD0) is None  # second probe: plain miss
        assert fresh.invalid == 1


class TestManifestIdentity:
    def test_run_key_mismatch_ignores_manifest(self, tmp_path):
        _primed(tmp_path, run_key="key-a")
        other = _store(tmp_path, run_key="key-b")
        assert other.completed_indices() == []
        assert other.load(SHARD0) is None

    def test_schema_version_mismatch_resets(self, tmp_path):
        store = _primed(tmp_path)
        manifest_path = store.root / MANIFEST_NAME
        data = json.loads(manifest_path.read_text())
        data["schema"] = "0"
        manifest_path.write_text(json.dumps(data))
        assert _store(tmp_path).completed_indices() == []

    def test_torn_manifest_is_an_empty_checkpoint(self, tmp_path):
        store = _primed(tmp_path)
        manifest_path = store.root / MANIFEST_NAME
        raw = manifest_path.read_text()
        manifest_path.write_text(raw[: len(raw) // 2])
        fresh = _store(tmp_path)
        assert fresh.completed_indices() == []
        assert fresh.load(SHARD0) is None

    def test_missing_directory_is_empty(self, tmp_path):
        store = _store(tmp_path)
        assert store.completed_indices() == []
        assert store.load(SHARD0) is None

    def test_manifest_format_matches_design_doc(self, tmp_path):
        store = _primed(tmp_path)
        data = json.loads((store.root / MANIFEST_NAME).read_text())
        assert data["schema"] == CHECKPOINT_SCHEMA_VERSION
        assert data["run_key"] == "key-a"
        entry = data["shards"]["0"]
        assert set(entry) == {"fingerprint", "digest", "n_records", "file"}
        assert entry["fingerprint"] == shard_fingerprint("key-a", SHARD0)
        assert entry["n_records"] == 3
        assert entry["file"] == "shard-00000.jsonl"


class TestDiscard:
    def test_discard_removes_directory(self, tmp_path):
        store = _primed(tmp_path)
        assert store.discard() == 0
        assert not store.root.exists()
        assert store.completed_indices() == []

    def test_discard_missing_directory_is_zero(self, tmp_path):
        assert _store(tmp_path).discard() == 0

    def test_discard_counts_foreign_entries(self, tmp_path):
        store = _primed(tmp_path)
        (store.root / "keepsake").mkdir()  # unlink() fails on a dir
        leftovers = store.discard()
        assert leftovers >= 1
        assert store.root.exists()  # not emptied, so not removed


class TestFingerprint:
    def test_distinct_inputs_distinct_fingerprints(self):
        base = shard_fingerprint("key", SHARD0)
        assert base != shard_fingerprint("other", SHARD0)
        assert base != shard_fingerprint("key", Shard(0, 0, 4))
        assert base != shard_fingerprint("key", Shard(1, 0, 3))
        assert base == shard_fingerprint("key", Shard(0, 0, 3))

    def test_summary_mentions_counts(self, tmp_path):
        store = _primed(tmp_path)
        text = store.summary()
        assert "2 shard(s) held" in text
        assert "2 committed" in text

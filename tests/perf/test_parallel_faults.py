"""Fault tolerance of the *real* process-pool engine.

The chaos suite simulates worker faults deterministically; these tests
make actual pool workers raise, die and hang, and assert the executor's
contract: typed :class:`ShardExecutionError` naming the shard, pool
restarts that requeue innocent shards uncharged, and the in-process
fallback rescuing work the pool cannot finish.

Every shard function must live at module level (pool workers unpickle it
by reference).  The once-only faults coordinate through flag files so
the retried attempt succeeds without any shared state in the test.
"""

import os
from pathlib import Path

import pytest

from repro.errors import ShardExecutionError
from repro.perf import ExecutionPolicy, ParallelMap
from repro.resilience import RetryPolicy

_MAIN_PID = os.getpid()

#: Backoff with near-zero delays so retry tests stay fast on a real clock.
_FAST = RetryPolicy(base_delay_s=0.001, max_delay_s=0.002)


def _double_shard(items):
    return [value * 2 for value in items]


def _raise_on_negative(items):
    if any(value < 0 for value in items):
        raise ValueError("injected worker exception")
    return [value * 2 for value in items]


def _interrupt_on_negative(items):
    if any(value < 0 for value in items):
        raise KeyboardInterrupt
    return [value * 2 for value in items]


def _fail_outside_main(chunks):
    out = []
    for chunk in chunks:
        pid, values = chunk[0], chunk[1:]
        if os.getpid() != pid:
            raise ValueError("only the coordinator may run this shard")
        out.extend(value * 2 for value in values)
    return out


def _die_once(items):
    """os._exit the worker the first time the flagged item is seen."""
    out = []
    for tag, flag, value in items:
        if tag == "die":
            path = Path(flag)
            if not path.exists():
                path.write_text("died")
                os._exit(1)
        out.append(value * 2)
    return out


def _hang_once(items):
    import time

    out = []
    for tag, flag, value in items:
        if tag == "hang":
            path = Path(flag)
            if not path.exists():
                path.write_text("hung")
                time.sleep(2.0)
        out.append(value * 2)
    return out


ITEMS = list(range(8))
EXPECTED = [value * 2 for value in ITEMS]


def _pm(workers=2, **policy):
    policy.setdefault("backoff", _FAST)
    return ParallelMap(
        workers, chunks_per_worker=2, policy=ExecutionPolicy(**policy)
    )


class TestTypedFailures:
    def test_worker_exception_exhausts_retries_with_typed_error(self):
        pm = _pm(max_shard_retries=1, fallback_in_process=False)
        with pytest.raises(ShardExecutionError) as info:
            pm.map_shards(_raise_on_negative, [0, 1, -2, 3, 4, 5, 6, 7])
        exc = info.value
        assert exc.shard_index == 1  # 8 items / 4 shards -> -2 lands in shard 1
        assert exc.attempts == 2
        assert isinstance(exc.last_error, ValueError)
        assert "shard 1" in str(exc)
        assert pm.last_report.retries == 1

    def test_keyboard_interrupt_surfaces_immediately(self):
        pm = _pm(max_shard_retries=2)
        with pytest.raises(ShardExecutionError) as info:
            pm.map_shards(_interrupt_on_negative, [0, 1, -2, 3, 4, 5, 6, 7])
        assert info.value.shard_index == 1
        # Interrupts are never retried: the run aborts on attempt 1.
        assert pm.last_report.retries == 0

    def test_fallback_also_failing_keeps_typed_error(self):
        pm = _pm(max_shard_retries=0, fallback_in_process=True)
        with pytest.raises(ShardExecutionError) as info:
            pm.map_shards(_raise_on_negative, [0, 1, -2, 3, 4, 5, 6, 7])
        assert info.value.shard_index == 1


class TestInProcessFallback:
    def test_fallback_rescues_shard_the_pool_cannot_run(self):
        # Workers refuse the shard (wrong pid); only the final in-process
        # attempt — running in the coordinator — can complete it.
        items = [_MAIN_PID] + ITEMS
        pm = _pm(workers=2, max_shard_retries=1)
        pm._chunks_per_worker = 1  # one shard per worker; simpler split
        result = pm.map_shards(_fail_outside_main, [items, items])
        assert result == EXPECTED + EXPECTED
        assert pm.last_report.fallbacks == 2
        assert pm.last_report.retries == 2


class TestDeadWorkers:
    def test_killed_worker_restarts_pool_and_retries(self, tmp_path):
        flag = tmp_path / "died.flag"
        items = [
            ("die" if value == 5 else "ok", str(flag), value)
            for value in ITEMS
        ]
        pm = _pm(workers=2, max_shard_retries=2)
        assert pm.map_shards(_die_once, items) == EXPECTED
        assert flag.exists()
        report = pm.last_report
        assert report.pool_restarts >= 1
        assert report.retries >= 1
        assert report.shards_executed == report.shards_total

    def test_hung_worker_is_reclaimed_by_watchdog(self, tmp_path):
        flag = tmp_path / "hung.flag"
        items = [
            ("hang" if value == 5 else "ok", str(flag), value)
            for value in ITEMS
        ]
        pm = _pm(workers=2, max_shard_retries=2, shard_timeout_s=0.2)
        assert pm.map_shards(_hang_once, items) == EXPECTED
        assert flag.exists()
        report = pm.last_report
        assert report.stragglers.n_requeued >= 1
        straggler = report.stragglers.records[0]
        assert straggler.action == "requeued"
        assert straggler.budget_s == 0.2


class TestPoolReporting:
    def test_clean_pool_run_reports_pool_mode(self):
        pm = _pm(workers=2)
        assert pm.map_shards(_double_shard, ITEMS) == EXPECTED
        report = pm.last_report
        assert report.mode == pm.last_mode == "pool"
        assert report.shards_total == report.shards_executed == 4
        assert report.retries == 0
        assert report.fallbacks == 0
        assert report.pool_restarts == 0
        assert "pool: 4/4 shards executed" in report.summary()

"""Determinism contracts of the sharded generation engine.

The headline guarantee: per-unit RNG substreams make serial and
parallel generation **byte-identical**, and the artifact cache returns
datasets equal to freshly generated ones (falling back to regeneration
when an entry is corrupted).
"""

import datetime as dt

import pytest

from repro.netsim.link import LinkProfile
from repro.perf import ArtifactCache
from repro.social import CorpusConfig, CorpusGenerator
from repro.telemetry import CallDatasetGenerator, GeneratorConfig

CALLS = dict(n_calls=16, seed=909, mos_sample_rate=0.2)
CORPUS = dict(
    seed=909,
    span_start=dt.date(2022, 2, 1),
    span_end=dt.date(2022, 3, 15),
    author_pool_size=150,
)


def _bytes_of(artifact, tmp_path, name):
    path = tmp_path / name
    artifact.to_jsonl(path)
    return path.read_bytes()


class TestByteIdenticalParallelism:
    def test_calls_serial_vs_parallel(self, tmp_path):
        serial = CallDatasetGenerator(
            GeneratorConfig(workers=1, **CALLS)
        ).generate()
        parallel = CallDatasetGenerator(
            GeneratorConfig(workers=2, **CALLS)
        ).generate()
        assert _bytes_of(serial, tmp_path, "serial.jsonl") == _bytes_of(
            parallel, tmp_path, "parallel.jsonl"
        )

    def test_corpus_serial_vs_parallel(self, tmp_path):
        serial = CorpusGenerator(CorpusConfig(workers=1, **CORPUS)).generate()
        parallel = CorpusGenerator(CorpusConfig(workers=2, **CORPUS)).generate()
        assert len(serial) == len(parallel)
        assert _bytes_of(serial, tmp_path, "serial.jsonl") == _bytes_of(
            parallel, tmp_path, "parallel.jsonl"
        )

    def test_sweep_serial_vs_parallel(self, tmp_path):
        base = LinkProfile(
            base_latency_ms=20, loss_rate=0.001, jitter_ms=2.0,
            bandwidth_mbps=3.5,
        )

        def sweep(workers):
            gen = CallDatasetGenerator(
                GeneratorConfig(n_calls=0, seed=909, workers=workers)
            )
            return gen.generate_sweep(
                base, "loss", [1e-05, 0.02], calls_per_value=4
            )

        assert _bytes_of(sweep(1), tmp_path, "s.jsonl") == _bytes_of(
            sweep(2), tmp_path, "p.jsonl"
        )

    def test_call_substreams_insensitive_to_dataset_size(self):
        """Adding calls never perturbs existing calls' draws."""
        small = CallDatasetGenerator(
            GeneratorConfig(n_calls=6, seed=909)
        ).generate()
        large = CallDatasetGenerator(
            GeneratorConfig(n_calls=12, seed=909)
        ).generate()
        by_id = {c.call_id: c for c in large}
        for call in small:
            twin = by_id[call.call_id]
            assert [p.network for p in call.participants] == [
                p.network for p in twin.participants
            ]


class TestCachedGeneration:
    def test_calls_cache_hit_equals_fresh(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        config = GeneratorConfig(**CALLS)
        fresh = CallDatasetGenerator(config).generate()
        CallDatasetGenerator(config).generate(cache=cache)  # prime (miss)
        warm = CallDatasetGenerator(config).generate(cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert _bytes_of(fresh, tmp_path, "fresh.jsonl") == _bytes_of(
            warm, tmp_path, "warm.jsonl"
        )

    def test_corpus_cache_hit_equals_fresh(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        config = CorpusConfig(**CORPUS)
        fresh = CorpusGenerator(config).generate()
        CorpusGenerator(config).generate(cache=cache)
        warm = CorpusGenerator(config).generate(cache=cache)
        assert cache.hits == 1 and cache.misses == 1
        assert warm.config == config  # full config survives the round trip
        assert _bytes_of(fresh, tmp_path, "fresh.jsonl") == _bytes_of(
            warm, tmp_path, "warm.jsonl"
        )

    def test_config_change_invalidates(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        CallDatasetGenerator(GeneratorConfig(**CALLS)).generate(cache=cache)
        changed = dict(CALLS, seed=910)
        CallDatasetGenerator(GeneratorConfig(**changed)).generate(cache=cache)
        assert cache.misses == 2 and cache.hits == 0
        assert cache.stats().entries == 2

    def test_corrupted_entry_regenerates(self, tmp_path):
        """A truncated/garbled cache file falls back to regeneration."""
        cache = ArtifactCache(tmp_path / "cache")
        config = GeneratorConfig(**CALLS)
        fresh = CallDatasetGenerator(config).generate(cache=cache)
        path = cache.path_for("calls", config)
        # Truncate mid-record — the classic crash artifact.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2] + b"\n{broken")
        recovered = CallDatasetGenerator(config).generate(cache=cache)
        assert cache.evictions == 1
        assert [c.call_id for c in recovered] == [c.call_id for c in fresh]
        assert _bytes_of(recovered, tmp_path, "r.jsonl") == _bytes_of(
            fresh, tmp_path, "f.jsonl"
        )

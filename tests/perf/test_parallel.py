"""Tests for the shard planner and the sharded executor."""

import pytest

from repro.errors import ConfigError
from repro.perf import ParallelMap, plan_shards, resolve_workers, split_evenly


def _double_all(items):
    return [2 * x for x in items]


class TestPlanShards:
    def test_covers_every_item_exactly_once(self):
        for n_items in (1, 2, 7, 100, 1000):
            for workers in (1, 2, 3, 8):
                shards = plan_shards(n_items, workers)
                covered = [
                    i for s in shards for i in range(s.start, s.stop)
                ]
                assert covered == list(range(n_items))

    def test_no_empty_shards(self):
        for n_items in (1, 3, 5):
            for workers in (2, 4, 16):
                assert all(len(s) > 0 for s in plan_shards(n_items, workers))

    def test_zero_items_plans_nothing(self):
        assert plan_shards(0, 4) == []

    def test_shard_count_targets_chunks_per_worker(self):
        shards = plan_shards(1000, 4, chunks_per_worker=4)
        assert len(shards) == 16

    def test_order_preserved(self):
        shards = plan_shards(50, 3)
        assert [s.index for s in shards] == list(range(len(shards)))
        assert all(
            a.stop == b.start for a, b in zip(shards, shards[1:])
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            plan_shards(-1, 2)
        with pytest.raises(ConfigError):
            plan_shards(10, 0)
        with pytest.raises(ConfigError):
            plan_shards(10, 2, chunks_per_worker=0)
        with pytest.raises(ConfigError):
            plan_shards(10, 2, min_items_per_shard=0)

    def test_min_items_per_shard_caps_shard_count(self):
        # 365 items, floor of 200 per shard -> one shard only.
        assert len(plan_shards(365, 2, min_items_per_shard=200)) == 1
        # 400 items allow two shards of >= 200.
        assert len(plan_shards(400, 2, min_items_per_shard=200)) == 2
        # The floor never *raises* the count above the worker target.
        assert len(plan_shards(1000, 2, chunks_per_worker=4,
                               min_items_per_shard=10)) == 8

    def test_min_items_per_shard_still_covers_all_items(self):
        for n_items in (1, 199, 200, 399, 1000):
            shards = plan_shards(n_items, 4, min_items_per_shard=200)
            covered = [i for s in shards for i in range(s.start, s.stop)]
            assert covered == list(range(n_items))


class TestResolveWorkers:
    def test_positive_passthrough(self):
        assert resolve_workers(3) == 3

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) >= 1


class TestParallelMap:
    def test_serial_path(self):
        pm = ParallelMap(workers=1)
        assert pm.map_shards(_double_all, [1, 2, 3]) == [2, 4, 6]
        assert pm.last_mode == "in-process"

    def test_empty_input(self):
        assert ParallelMap(workers=2).map_shards(_double_all, []) == []

    def test_pool_path_ordered_merge(self):
        pm = ParallelMap(workers=2)
        items = list(range(200))
        assert pm.map_shards(_double_all, items) == [2 * x for x in items]

    def test_unpicklable_fn_falls_back_in_process(self):
        pm = ParallelMap(workers=2)
        captured = []  # a closure is unpicklable -> pool path must fail

        def fn(items):
            captured.append(len(items))
            return [x + 1 for x in items]

        assert pm.map_shards(fn, list(range(50))) == list(range(1, 51))
        assert pm.last_mode == "in-process"

    def test_auto_serial_when_floor_collapses_plan(self):
        pm = ParallelMap(workers=2, min_items_per_shard=100)
        items = list(range(50))  # under the floor -> one shard
        assert pm.map_shards(_double_all, items) == [2 * x for x in items]
        assert pm.last_mode == "auto-serial"
        assert pm.last_report.mode == "auto-serial"
        assert pm.last_report.shards_total == 1

    def test_no_auto_serial_when_work_clears_floor(self):
        pm = ParallelMap(workers=2, min_items_per_shard=10)
        items = list(range(200))
        assert pm.map_shards(_double_all, items) == [2 * x for x in items]
        assert pm.last_mode != "auto-serial"

    def test_heuristic_inert_for_serial_executor(self):
        # workers=1 was never going to the pool: plain in-process mode.
        pm = ParallelMap(workers=1, min_items_per_shard=100)
        assert pm.map_shards(_double_all, [1, 2, 3]) == [2, 4, 6]
        assert pm.last_mode == "in-process"

    def test_heuristic_off_under_checkpoint(self, tmp_path):
        # Checkpoint manifests are keyed by shard index, so the floor
        # must not reshape a resumable plan.
        from repro.perf import CheckpointStore

        pm = ParallelMap(workers=2, min_items_per_shard=100)
        store = CheckpointStore(tmp_path / "ckpt", run_key="t")
        items = list(range(50))
        assert pm.map_shards(
            _double_all, items, checkpoint=store
        ) == [2 * x for x in items]
        assert pm.last_mode != "auto-serial"
        assert pm.last_report.shards_total > 1

    def test_split_evenly_matches_plan(self):
        pairs = split_evenly(list(range(10)), 3)
        assert [i for i, _ in pairs] == list(range(len(pairs)))
        assert [x for _, chunk in pairs for x in chunk] == list(range(10))

"""Tests for the content-addressed artifact cache."""

import dataclasses
import datetime as dt

import pytest

from repro.errors import ConfigError
from repro.perf import ArtifactCache, config_fingerprint
from repro.telemetry import GeneratorConfig


@dataclasses.dataclass(frozen=True)
class FakeConfig:
    n: int = 3
    day: dt.date = dt.date(2022, 1, 1)
    workers: int = 1


def _jsonl_io(build_value):
    """(build, load, dump) adapters for a list-of-ints artifact."""
    from repro.io.jsonl import read_jsonl, write_jsonl

    return (
        lambda: list(build_value),
        lambda path: list(read_jsonl(path)),
        lambda value, path: write_jsonl(path, value),
    )


class TestFingerprint:
    def test_stable(self):
        assert config_fingerprint("x", FakeConfig()) == config_fingerprint(
            "x", FakeConfig()
        )

    def test_sensitive_to_config_kind_and_schema(self):
        base = config_fingerprint("x", FakeConfig())
        assert config_fingerprint("x", FakeConfig(n=4)) != base
        assert config_fingerprint("y", FakeConfig()) != base
        assert config_fingerprint("x", FakeConfig(), schema_version="99") != base

    def test_workers_is_execution_only(self):
        """Parallelism never changes the artifact identity."""
        assert config_fingerprint("x", FakeConfig(workers=1)) == (
            config_fingerprint("x", FakeConfig(workers=8))
        )
        assert config_fingerprint(
            "calls", GeneratorConfig(n_calls=5, workers=1)
        ) == config_fingerprint("calls", GeneratorConfig(n_calls=5, workers=4))

    def test_nested_dataclasses_and_dates_fingerprint(self):
        # GeneratorConfig holds BehaviorParams / QoeModel / date mappings.
        config = GeneratorConfig(
            n_calls=5, outage_days={dt.date(2022, 2, 2): 0.5}
        )
        assert config_fingerprint("calls", config) == config_fingerprint(
            "calls", GeneratorConfig(
                n_calls=5, outage_days={dt.date(2022, 2, 2): 0.5}
            )
        )


class TestLoadOrBuild:
    def test_miss_builds_then_hit_loads(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        build, load, dump = _jsonl_io([1, 2, 3])
        first = cache.load_or_build("nums", FakeConfig(), build, load, dump)
        second = cache.load_or_build("nums", FakeConfig(), build, load, dump)
        assert first == second == [1, 2, 3]
        assert cache.misses == 1 and cache.hits == 1

    def test_config_change_misses(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        build, load, dump = _jsonl_io([1])
        cache.load_or_build("nums", FakeConfig(n=1), build, load, dump)
        cache.load_or_build("nums", FakeConfig(n=2), build, load, dump)
        assert cache.misses == 2 and cache.hits == 0
        assert cache.stats().entries == 2

    def test_corrupted_entry_evicted_and_rebuilt(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        build, load, dump = _jsonl_io([7, 8])
        cache.load_or_build("nums", FakeConfig(), build, load, dump)
        path = cache.path_for("nums", FakeConfig())
        path.write_text("{not json at all\n", encoding="utf-8")
        value = cache.load_or_build("nums", FakeConfig(), build, load, dump)
        assert value == [7, 8]
        assert cache.evictions == 1
        # Entry was rewritten: the next call is a clean hit again.
        assert cache.load_or_build(
            "nums", FakeConfig(), build, load, dump
        ) == [7, 8]
        assert cache.hits == 1

    def test_invalid_kind_rejected(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(ConfigError):
            cache.path_for("../escape", FakeConfig())


class TestMaintenance:
    def test_invalidate_by_kind_and_all(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        build, load, dump = _jsonl_io([1])
        cache.load_or_build("calls", FakeConfig(), build, load, dump)
        cache.load_or_build("corpus", FakeConfig(), build, load, dump)
        assert cache.invalidate(kind="calls") == 1
        assert cache.stats().by_kind == {"corpus": 1}
        assert cache.invalidate() == 1
        assert cache.stats().entries == 0

    def test_stats_on_missing_root(self, tmp_path):
        stats = ArtifactCache(tmp_path / "nonexistent").stats()
        assert stats.entries == 0
        assert "0 entries" in stats.summary()

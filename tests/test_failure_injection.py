"""Failure-injection tests: the library must fail loudly and precisely.

Every injected fault — truncated files, hostile text, impossible
parameters, dead OCR input — must surface as the documented library
exception (never a silent wrong answer, never a raw KeyError/IndexError
leaking implementation details).
"""

import datetime as dt

import numpy as np
import pytest

from repro.errors import (
    AnalysisError,
    ExtractionError,
    PrivacyError,
    QueryError,
    ReproError,
    SchemaError,
)


class TestCorruptPersistence:
    def test_truncated_call_record(self, small_dataset, tmp_path):
        from repro.telemetry.store import CallDataset

        path = tmp_path / "calls.jsonl"
        small_dataset.to_jsonl(path)
        content = path.read_text().splitlines()
        path.write_text("\n".join(content[:2]) + "\n" + content[2][: len(content[2]) // 2])
        with pytest.raises(SchemaError):
            CallDataset.from_jsonl(path)

    def test_valid_json_wrong_schema(self, tmp_path):
        from repro.telemetry.store import CallDataset

        path = tmp_path / "calls.jsonl"
        path.write_text('{"call_id": "x", "unexpected": true}\n')
        with pytest.raises(SchemaError):
            CallDataset.from_jsonl(path)

    def test_corpus_without_header(self, small_corpus, tmp_path):
        from repro.social.corpus import RedditCorpus

        path = tmp_path / "posts.jsonl"
        small_corpus.to_jsonl(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]))  # drop the header
        with pytest.raises(SchemaError):
            RedditCorpus.from_jsonl(path)

    def test_corpus_with_bad_post(self, small_corpus, tmp_path):
        from repro.social.corpus import RedditCorpus

        path = tmp_path / "posts.jsonl"
        small_corpus.to_jsonl(path)
        with open(path, "a", encoding="utf-8") as f:
            f.write("{broken\n")
        with pytest.raises(SchemaError):
            RedditCorpus.from_jsonl(path)


class TestHostileText:
    @pytest.mark.parametrize("text", [
        "",
        " " * 10_000,
        "!" * 500,
        "\x00\x01\x02",
        "🚀" * 100,
        "a" * 50_000,
        "no no no no not never none outage" * 50,
    ])
    def test_sentiment_never_crashes(self, text):
        from repro.nlp.sentiment import SentimentAnalyzer

        scores = SentimentAnalyzer().score(text)
        assert scores.positive + scores.negative + scores.neutral == (
            pytest.approx(1.0)
        )

    def test_wordcloud_on_garbage(self):
        from repro.nlp.wordcloud import build_wordcloud

        cloud = build_wordcloud(["\x00", "", "!!!", "🚀🚀"])
        assert cloud.n_texts == 4

    def test_trend_miner_single_day(self):
        from repro.nlp.trends import TrendMiner

        records = [(dt.date(2022, 1, 1), "roaming works", 100.0)]
        topics = TrendMiner().mine(records)
        assert topics == []  # no window can form; must not crash


class TestDeadOcrInput:
    def test_all_tokens_lost(self):
        from repro.ocr.engine import OcrEngine
        from repro.ocr.render import Screenshot

        with pytest.raises(ExtractionError):
            OcrEngine().extract(Screenshot(width=10, height=10, tokens=()))

    def test_only_garbage_tokens(self):
        from repro.ocr.engine import OcrEngine
        from repro.ocr.render import PlacedToken, Screenshot

        shot = Screenshot(width=100, height=100, tokens=(
            PlacedToken("▯▯▯", 0, 0), PlacedToken("????", 10, 10),
        ))
        with pytest.raises(ExtractionError):
            OcrEngine().extract(shot)

    def test_total_token_loss_noise(self, fresh_rng):
        from repro.ocr.noise import NoiseModel
        from repro.ocr.render import render_screenshot
        from repro.social.schema import SpeedTestShare

        share = SpeedTestShare(provider="ookla", download_mbps=90,
                               upload_mbps=10, latency_ms=40)
        vaporiser = NoiseModel(confusion_rate=0, dropout_rate=0,
                               token_loss_rate=1.0)
        noisy = vaporiser.apply(fresh_rng, render_screenshot(share))
        assert len(noisy.tokens) == 0


class TestServiceFaults:
    def test_raising_source_propagates(self, small_dataset):
        from repro.core.usaas import UsaasQuery, UsaasService

        service = UsaasService()

        def broken_source():
            raise RuntimeError("upstream export failed")

        service.register_source("broken", broken_source)
        with pytest.raises(RuntimeError, match="upstream export failed"):
            service.answer(UsaasQuery(network="x"))

    def test_detector_rejects_nan(self):
        from repro.engagement.early_warning import DriftDetector

        with pytest.raises(AnalysisError):
            DriftDetector().observe([1.0, float("nan")])

    def test_all_errors_share_root(self):
        for exc in (AnalysisError, ExtractionError, PrivacyError,
                    QueryError, SchemaError):
            assert issubclass(exc, ReproError)


class TestDegenerateWorkloads:
    def test_single_day_corpus(self):
        from repro.social import CorpusConfig, CorpusGenerator

        corpus = CorpusGenerator(CorpusConfig(
            seed=3,
            span_start=dt.date(2022, 3, 16),
            span_end=dt.date(2022, 3, 16),
            author_pool_size=100,
        )).generate()
        assert len(corpus) > 0
        assert all(p.date == dt.date(2022, 3, 16) for p in corpus)

    def test_zero_call_dataset(self):
        from repro.telemetry import CallDatasetGenerator, GeneratorConfig

        dataset = CallDatasetGenerator(GeneratorConfig(n_calls=0)).generate()
        assert len(dataset) == 0
        from repro.engagement import fig1_curves

        with pytest.raises(AnalysisError):
            fig1_curves(list(dataset.participants()))

    def test_speed_tracker_all_extractions_fail(self, small_corpus):
        from repro.analysis.speed_tracker import track_speeds
        from repro.ocr.noise import NoiseModel

        vaporiser = NoiseModel(confusion_rate=0, dropout_rate=0,
                               token_loss_rate=1.0)
        with pytest.raises(AnalysisError):
            track_speeds(small_corpus, noise=vaporiser)

"""Tests for the service footprint timeline."""

import datetime as dt

import pytest

from repro.errors import ConfigError
from repro.starlink.footprint import DEFAULT_FOOTPRINT, Footprint


class TestFootprint:
    def test_us_served_from_beta(self):
        assert DEFAULT_FOOTPRINT.is_available("US", dt.date(2021, 1, 1))

    def test_country_not_yet_served(self):
        assert not DEFAULT_FOOTPRINT.is_available("BR", dt.date(2021, 6, 1))
        assert DEFAULT_FOOTPRINT.is_available("BR", dt.date(2022, 3, 1))

    def test_unknown_country_never_served(self):
        assert not DEFAULT_FOOTPRINT.is_available("KP", dt.date(2022, 12, 1))

    def test_footprint_grows_monotonically(self):
        days = [dt.date(2021, 1, 15), dt.date(2021, 9, 15),
                dt.date(2022, 4, 22), dt.date(2022, 12, 15)]
        counts = [DEFAULT_FOOTPRINT.country_count(d) for d in days]
        assert counts == sorted(counts)
        assert counts[0] >= 3

    def test_april_2022_outage_had_14_plus_countries(self):
        """§4.1: Redditors from 14 countries confirmed the 22 Apr '22
        outage — at least that many must have been served."""
        assert DEFAULT_FOOTPRINT.country_count(dt.date(2022, 4, 22)) >= 14

    def test_service_age(self):
        age = DEFAULT_FOOTPRINT.service_age_days("UK", dt.date(2021, 1, 31))
        assert age == 30
        assert DEFAULT_FOOTPRINT.service_age_days("JP", dt.date(2021, 1, 1)) is None

    def test_quarter_counts_cover_span(self):
        quarters = DEFAULT_FOOTPRINT.launch_quarter_counts()
        assert sum(quarters.values()) == len(DEFAULT_FOOTPRINT.service_start)
        assert "2021Q1" in quarters

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            Footprint(service_start={})


class TestCorpusIntegration:
    def test_first_hand_posts_only_from_served_countries(self, small_corpus):
        """Experience/outage/speed posts must come from countries with
        service on the posting day (questions can come from anywhere)."""
        from repro.social.authors import AuthorPool

        pool = AuthorPool(
            size=small_corpus.config.author_pool_size or 800,
            seed=small_corpus.config.seed,
            span_start=small_corpus.config.span_start,
            span_end=small_corpus.config.span_end,
        )
        by_handle = {a.handle: a for a in pool.active_on(
            small_corpus.config.span_end
        )}
        first_hand_topics = {"experience_report", "outage_report",
                             "speed_test_share"}
        for post in small_corpus:
            if post.topic not in first_hand_topics:
                continue
            author = by_handle.get(post.author)
            if author is None:
                continue
            assert DEFAULT_FOOTPRINT.is_available(author.country, post.date), (
                f"{post.topic} from {author.country} on {post.date}"
            )

    def test_outage_confirmations_from_served_countries(self, small_corpus):
        import re

        served_codes = set(DEFAULT_FOOTPRINT.service_start)
        for post in small_corpus:
            for comment in post.comment_texts:
                for token in re.findall(r"\b[A-Z]{2}\b", comment):
                    assert token in served_codes

"""Tests for the conditioning / perception model."""

import numpy as np
import pytest

from repro.core.timeline import MonthlySeries
from repro.errors import ConfigError
from repro.starlink.capacity import CapacityModel
from repro.starlink.perception import PerceptionModel


def series(values, start=(2021, 1)):
    mapping = {}
    year, month = start
    for v in values:
        mapping[(year, month)] = float(v)
        month += 1
        if month == 13:
            year, month = year + 1, 1
    return MonthlySeries.from_mapping(mapping)


class TestExpectations:
    def test_tracks_constant_series(self):
        speeds = series([100] * 6)
        expect = PerceptionModel().expectations(speeds)
        assert np.allclose(expect.values, 100.0)

    def test_lags_a_step_change(self):
        speeds = series([100, 100, 100, 200, 200, 200])
        expect = PerceptionModel(memory=0.8).expectations(speeds)
        assert 100 < expect[(2021, 4)] < 200
        assert expect[(2021, 6)] > expect[(2021, 4)]

    def test_rejects_all_nan(self):
        empty = MonthlySeries.zeros((2021, 1), (2021, 3))
        with pytest.raises(ConfigError):
            PerceptionModel().expectations(empty)


class TestSatisfaction:
    def test_rising_speeds_please(self):
        sat = PerceptionModel().satisfaction(series([50, 60, 72, 86, 100]))
        assert sat.values[-1] > 0.5

    def test_falling_speeds_disappoint(self):
        sat = PerceptionModel().satisfaction(series([100, 85, 72, 60, 50]))
        assert sat.values[-1] < 0.5

    def test_same_speed_different_history_different_feeling(self):
        """The core of "the wheel of time": 70 Mbps feels great after 50
        and terrible after 100."""
        model = PerceptionModel()
        after_worse = model.satisfaction(series([50, 55, 60, 70]))
        after_better = model.satisfaction(series([100, 90, 80, 70]))
        assert after_worse.values[-1] > after_better.values[-1]

    def test_plateau_recovers_sentiment(self):
        """Decline that stops → users acclimatize → satisfaction rises."""
        sat = PerceptionModel().satisfaction(
            series([100, 80, 64, 60, 60, 60, 60])
        )
        assert sat.values[-1] > sat.values[2]

    def test_bounded(self):
        sat = PerceptionModel().satisfaction(series([10, 1000, 1, 500]))
        finite = sat.values[~np.isnan(sat.values)]
        assert (finite >= 0).all() and (finite <= 1).all()

    @pytest.mark.parametrize("kwargs", [
        dict(memory=1.0),
        dict(memory=-0.1),
        dict(sensitivity=0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            PerceptionModel(**kwargs)


class TestCohortSatisfaction:
    @pytest.fixture(scope="class")
    def world(self):
        from repro.starlink.subscribers import SubscriberModel

        speeds = CapacityModel().median_downlink_mbps()
        subs = SubscriberModel.reported().monthly()
        sat = PerceptionModel().cohort_satisfaction(speeds, subs)
        return speeds, sat

    def test_bounded(self, world):
        _, sat = world
        assert (sat.values >= 0).all() and (sat.values <= 1).all()

    def test_full_pipeline_exceptions(self, world):
        """The two §4.2 exceptions hold on the capacity model's output."""
        speeds, sat = world
        assert speeds[(2021, 12)] > speeds[(2021, 4)]
        assert sat[(2021, 12)] < sat[(2021, 4)] - 0.1
        assert speeds.slice((2022, 3), (2022, 12)).trend() < 0
        assert sat.slice((2022, 3), (2022, 12)).trend() > 0

    def test_new_cohorts_dilute_disappointment(self):
        """With adoption frozen, late-2022 satisfaction must be lower
        than with real (fast) adoption — recent joiners are the ones
        holding the average up."""
        from repro.starlink.subscribers import SubscriberModel

        speeds = CapacityModel().median_downlink_mbps()
        real = SubscriberModel.reported().monthly()
        frozen = {m: 100_000 for m in real}
        pm = PerceptionModel()
        with_adoption = pm.cohort_satisfaction(speeds, real)
        without = pm.cohort_satisfaction(speeds, frozen)
        assert with_adoption[(2022, 12)] > without[(2022, 12)]

    def test_rejects_missing_months(self):
        speeds = CapacityModel().median_downlink_mbps()
        with pytest.raises(ConfigError):
            PerceptionModel().cohort_satisfaction(speeds, {(2021, 1): 1000})

"""Tests for the launch catalog (pinned to the paper's numbers)."""

import pytest

from repro.errors import ConfigError
from repro.starlink.launches import LAUNCH_CATALOG, LaunchCatalog


class TestPaperNumbers:
    def test_fourteen_launches_jan_to_sep_2021(self):
        assert LAUNCH_CATALOG.launches_between((2021, 1), (2021, 9)) == 14

    def test_thirtyseven_launches_sep21_to_dec22(self):
        assert LAUNCH_CATALOG.launches_between((2021, 9), (2022, 12)) == 37

    def test_no_launches_jun_to_aug_2021(self):
        assert LAUNCH_CATALOG.launches_between((2021, 6), (2021, 8)) == 0

    def test_roughly_sixty_sats_per_2021_launch(self):
        months_2021 = [
            m for m in LAUNCH_CATALOG.months()
            if m[0] == 2021 and LAUNCH_CATALOG.launches_in(m) > 0
        ]
        per_launch = [
            LAUNCH_CATALOG.satellites_in(m) / LAUNCH_CATALOG.launches_in(m)
            for m in months_2021
        ]
        assert all(50 <= x <= 62 for x in per_launch)


class TestCatalogMechanics:
    def test_cumulative_monotone(self):
        cumulative = LAUNCH_CATALOG.cumulative_satellites()
        values = [cumulative[m] for m in LAUNCH_CATALOG.months()]
        assert values == sorted(values)

    def test_cumulative_starts_from_initial(self):
        cumulative = LAUNCH_CATALOG.cumulative_satellites(initial=900)
        first = LAUNCH_CATALOG.months()[0]
        assert cumulative[first] == 900 + LAUNCH_CATALOG.satellites_in(first)

    def test_missing_month_counts_zero(self):
        assert LAUNCH_CATALOG.launches_in((2030, 1)) == 0

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigError):
            LaunchCatalog(monthly={(2021, 1): (-1, 60)})

    def test_rejects_launches_without_satellites(self):
        with pytest.raises(ConfigError):
            LaunchCatalog(monthly={(2021, 1): (2, 0)})

    def test_span_bounds(self):
        assert LAUNCH_CATALOG.start == (2021, 1)
        assert LAUNCH_CATALOG.end == (2022, 12)

"""Tests for the capacity model (the Fig. 7 speed curve mechanics)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.starlink.capacity import CapacityModel


@pytest.fixture(scope="module")
def speeds():
    return CapacityModel().median_downlink_mbps()


class TestFig7Shape:
    def test_rises_jan_to_sep_21(self, speeds):
        assert speeds.slice((2021, 1), (2021, 9)).trend() > 0

    def test_falls_sep21_to_dec22(self, speeds):
        assert speeds.slice((2021, 9), (2022, 12)).trend() < 0

    def test_jun_aug_21_dip(self, speeds):
        """Launch gap + 21 K new users → speeds sag."""
        assert speeds[(2021, 8)] < speeds[(2021, 6)]

    def test_dec21_beats_apr21(self, speeds):
        """Precondition of the §4.2 conditioning exception."""
        assert speeds[(2021, 12)] > speeds[(2021, 4)]

    def test_all_months_populated(self, speeds):
        assert not np.isnan(speeds.values).any()

    def test_plausible_magnitudes(self, speeds):
        assert 20 <= speeds.values.min()
        assert speeds.values.max() <= 250


class TestMechanics:
    def test_serving_lags_launches(self):
        model = CapacityModel(ramp_months=2)
        serving = model.serving_satellites()
        months = model.catalog.months()
        cumulative = model.catalog.cumulative_satellites(model.initial_satellites)
        assert serving[months[5]] == cumulative[months[3]]

    def test_coverage_ceiling_saturates(self):
        model = CapacityModel()
        small = model.coverage_ceiling(500)
        big = model.coverage_ceiling(50_000)
        assert small < big <= model.terminal_cap_mbps

    def test_capacity_share_decreases_with_users(self):
        model = CapacityModel()
        assert model.capacity_share(2000, 1_000_000) < model.capacity_share(
            2000, 10_000
        )

    def test_soft_min_below_both(self):
        model = CapacityModel()
        assert model._soft_min(50, 60) < 50

    def test_more_satellites_never_hurt(self):
        fewer = CapacityModel(initial_satellites=500).median_downlink_mbps()
        more = CapacityModel(initial_satellites=2000).median_downlink_mbps()
        assert (more.values >= fewer.values - 1e-9).all()

    def test_utilisation_grows_over_span(self):
        utilisation = CapacityModel().utilisation()
        assert utilisation[(2022, 12)] > utilisation[(2021, 2)]

    @pytest.mark.parametrize("kwargs", [
        dict(terminal_cap_mbps=0),
        dict(coverage_k=-1),
        dict(share_scale=0),
        dict(demand_exponent=0),
        dict(softmin_p=0.5),
        dict(ramp_months=-1),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            CapacityModel(**kwargs)

    def test_coverage_ceiling_rejects_zero_sats(self):
        with pytest.raises(ConfigError):
            CapacityModel().coverage_ceiling(0)

    def test_capacity_share_rejects_zero_users(self):
        with pytest.raises(ConfigError):
            CapacityModel().capacity_share(1000, 0)

"""Tests for the subscriber model (pinned to the paper's milestones)."""

import pytest

from repro.errors import ConfigError
from repro.starlink.subscribers import SUBSCRIBER_MILESTONES, SubscriberModel


class TestPaperMilestones:
    def test_ten_k_feb_21(self):
        assert SubscriberModel.reported().at((2021, 2)) == 10_000

    def test_ninety_k_aug_21(self):
        assert SubscriberModel.reported().at((2021, 8)) == 90_000

    def test_million_plus_dec_22(self):
        assert SubscriberModel.reported().at((2022, 12)) >= 1_000_000

    def test_jun_aug_21_growth_about_21k(self):
        """§4.2: "21K new users started using Starlink" Jun–Aug '21."""
        growth = SubscriberModel.reported().growth((2021, 6), (2021, 8))
        assert growth == pytest.approx(21_000, abs=2_000)


class TestInterpolation:
    def test_monthly_covers_every_month(self):
        monthly = SubscriberModel.reported().monthly()
        assert len(monthly) == 24

    def test_monotone_growth(self):
        monthly = SubscriberModel.reported().monthly()
        values = [monthly[m] for m in sorted(monthly)]
        assert values == sorted(values)

    def test_geometric_between_anchors(self):
        model = SubscriberModel(milestones={(2021, 1): 100, (2021, 3): 400})
        assert model.at((2021, 2)) == pytest.approx(200, rel=0.01)

    def test_out_of_span_raises(self):
        with pytest.raises(ConfigError):
            SubscriberModel.reported().at((2030, 1))

    def test_rejects_single_milestone(self):
        with pytest.raises(ConfigError):
            SubscriberModel(milestones={(2021, 1): 100})

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ConfigError):
            SubscriberModel(milestones={(2021, 1): 0, (2021, 2): 10})

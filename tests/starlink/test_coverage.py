"""Tests for the outage process."""

import datetime as dt

import pytest

from repro.errors import ConfigError
from repro.starlink.coverage import HEADLINE_OUTAGES, Outage, OutageProcess


class TestHeadlineOutages:
    def test_the_three_real_dates(self):
        dates = {o.date for o in HEADLINE_OUTAGES}
        assert dates == {
            dt.date(2022, 1, 7),
            dt.date(2022, 4, 22),
            dt.date(2022, 8, 30),
        }

    def test_april_22_not_in_news(self):
        """The paper's key negative result: no press coverage."""
        apr = next(o for o in HEADLINE_OUTAGES if o.date == dt.date(2022, 4, 22))
        assert not apr.in_news
        assert apr.countries_affected == 14  # "Redditors from 14 countries"

    def test_jan_and_aug_in_news(self):
        for day in (dt.date(2022, 1, 7), dt.date(2022, 8, 30)):
            outage = next(o for o in HEADLINE_OUTAGES if o.date == day)
            assert outage.in_news

    def test_all_headline(self):
        assert all(o.is_headline for o in HEADLINE_OUTAGES)


class TestOutageProcess:
    def test_deterministic(self):
        a = OutageProcess(seed=3).generate()
        b = OutageProcess(seed=3).generate()
        assert [(o.date, o.severity) for o in a] == [(o.date, o.severity) for o in b]

    def test_includes_headline_events(self):
        outages = OutageProcess(seed=1).generate()
        dates = {o.date for o in outages}
        assert dt.date(2022, 4, 22) in dates

    def test_transients_frequent_and_small(self):
        outages = OutageProcess(seed=2).generate()
        transients = [o for o in outages if not o.is_headline]
        # ~1.6/week over 104 weeks.
        assert 100 <= len(transients) <= 250
        assert all(o.severity <= 0.1 for o in transients)
        assert all(not o.in_news for o in transients)

    def test_headline_outside_span_excluded(self):
        process = OutageProcess(
            span_start=dt.date(2021, 1, 1),
            span_end=dt.date(2021, 12, 31),
            seed=1,
        )
        outages = process.generate()
        assert all(o.date.year == 2021 for o in outages)
        assert not any(o.is_headline for o in outages)

    def test_on_filters_by_day(self):
        process = OutageProcess(seed=4)
        pool = process.generate()
        day = dt.date(2022, 1, 7)
        todays = process.on(day, pool)
        assert all(o.date == day for o in todays)
        assert any(o.is_headline for o in todays)

    def test_rejects_reversed_span(self):
        with pytest.raises(ConfigError):
            OutageProcess(
                span_start=dt.date(2022, 1, 1), span_end=dt.date(2021, 1, 1)
            )

    def test_outage_validation(self):
        with pytest.raises(ConfigError):
            Outage(date=dt.date(2022, 1, 1), duration_h=0, severity=0.5,
                   countries_affected=1, in_news=False, cause="x")
        with pytest.raises(ConfigError):
            Outage(date=dt.date(2022, 1, 1), duration_h=1, severity=0,
                   countries_affected=1, in_news=False, cause="x")

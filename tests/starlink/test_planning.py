"""Tests for sentiment-aware launch planning (§6)."""

import pytest

from repro.errors import ConfigError
from repro.starlink.capacity import CapacityModel
from repro.starlink.launches import LAUNCH_CATALOG
from repro.starlink.planning import (
    LaunchPlanner,
    counterfactual_speeds,
    modified_catalog,
    plan_outcome,
)


class TestModifiedCatalog:
    def test_adds_launches(self):
        modified = modified_catalog(LAUNCH_CATALOG, {(2021, 7): 2})
        assert modified.launches_in((2021, 7)) == 2
        assert modified.satellites_in((2021, 7)) == 2 * 54

    def test_keeps_existing_per_launch(self):
        modified = modified_catalog(LAUNCH_CATALOG, {(2021, 3): 1})
        # March '21 had 60-satellite launches; the extra one matches.
        assert modified.satellites_in((2021, 3)) == 5 * 60

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            modified_catalog(LAUNCH_CATALOG, {(2021, 7): -1})

    def test_base_untouched(self):
        before = LAUNCH_CATALOG.launches_in((2021, 7))
        modified_catalog(LAUNCH_CATALOG, {(2021, 7): 3})
        assert LAUNCH_CATALOG.launches_in((2021, 7)) == before


class TestCounterfactualSpeeds:
    def test_extra_launches_never_hurt(self):
        base = CapacityModel().median_downlink_mbps()
        boosted = counterfactual_speeds(CapacityModel(), {(2021, 7): 3})
        assert (boosted.values >= base.values - 1e-9).all()

    def test_launch_gap_fill_raises_autumn_speeds(self):
        base = CapacityModel().median_downlink_mbps()
        boosted = counterfactual_speeds(CapacityModel(), {(2021, 7): 3})
        assert boosted[(2021, 9)] > base[(2021, 9)]

    def test_empty_plan_is_identity(self):
        base = CapacityModel().median_downlink_mbps()
        same = counterfactual_speeds(CapacityModel(), {})
        assert (same.values == base.values).all()


class TestPlanOutcome:
    def test_baseline_outcome(self):
        outcome = plan_outcome({})
        assert 0 < outcome.mean_satisfaction < 1
        assert outcome.min_satisfaction <= outcome.mean_satisfaction
        assert outcome.n_extra == 0

    def test_more_launches_help_satisfaction(self):
        base = plan_outcome({})
        boosted = plan_outcome({(2022, 1): 4, (2021, 7): 2})
        assert boosted.mean_satisfaction >= base.mean_satisfaction

    def test_horizon_restriction(self):
        full = plan_outcome({})
        only_2022 = plan_outcome({}, horizon=((2022, 1), (2022, 12)))
        assert only_2022.mean_satisfaction != pytest.approx(
            full.mean_satisfaction, abs=1e-6
        )


class TestLaunchPlanner:
    def test_planner_beats_no_plan(self):
        planner = LaunchPlanner()
        candidates = [(2021, 7), (2021, 12), (2022, 2)]
        planned = planner.plan(2, candidates)
        baseline = plan_outcome({})
        assert planned.mean_satisfaction >= baseline.mean_satisfaction
        assert planned.n_extra == 2

    def test_bigger_budget_never_worse(self):
        planner = LaunchPlanner()
        candidates = [(2021, 7), (2022, 2)]
        small = planner.plan(1, candidates)
        large = planner.plan(3, candidates)
        assert large.mean_satisfaction >= small.mean_satisfaction - 1e-9

    def test_worst_month_objective(self):
        planner = LaunchPlanner(objective="worst_month")
        planned = planner.plan(1, [(2021, 7), (2022, 2)])
        baseline = plan_outcome({})
        assert planned.min_satisfaction >= baseline.min_satisfaction - 1e-9

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            LaunchPlanner(objective="vibes")
        with pytest.raises(ConfigError):
            LaunchPlanner().plan(-1, [(2021, 7)])
        with pytest.raises(ConfigError):
            LaunchPlanner().plan(1, [])

"""Journal torn-tail recovery: the append-only crash model end-to-end."""

import json

import pytest

from repro.errors import SchemaError
from repro.resilience.faults import FaultPlan
from repro.streaming import StreamJournal
from repro.streaming.operators import Emission


def emissions(n, start=0):
    return [
        Emission(
            at_s=float(start + i) * 10.0, operator="win_mean",
            metric="latency_ms", value=40.0 + i, count=5, role="network",
        )
        for i in range(n)
    ]


class TestAppendRecover:
    def test_round_trip(self, tmp_path):
        journal = StreamJournal(tmp_path / "j.jsonl")
        batch = emissions(5)
        assert journal.append(batch) == 5
        assert journal.appended == 5
        assert StreamJournal(journal.path).recover() == batch

    def test_recover_missing_file_is_empty(self, tmp_path):
        assert StreamJournal(tmp_path / "absent.jsonl").recover() == []

    def test_torn_append_regression(self, tmp_path):
        """FaultPlan.torn_append tears the 6th record mid-line; recovery
        quarantines exactly that tail and the journal keeps appending."""
        path = tmp_path / "j.jsonl"
        journal = StreamJournal(path)
        good = emissions(5)
        journal.append(good)

        sixth = emissions(1, start=5)[0]
        line = (json.dumps(sixth.to_dict()) + "\n").encode()
        FaultPlan(seed=41).torn_append("journal", path, line)

        quarantine = tmp_path / "torn.bad"
        fresh = StreamJournal(path)
        recovered = fresh.recover(quarantine=quarantine)
        assert recovered == good
        assert fresh.recovered_bad == 1
        assert quarantine.exists()

        # after repair the file is clean: append + recover again works
        fresh.append([sixth])
        assert StreamJournal(path).recover() == good + [sixth]

    def test_mid_file_corruption_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = StreamJournal(path)
        journal.append(emissions(3))
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:10]  # damage an interior line
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError, match="not a torn tail"):
            StreamJournal(path).recover()

    def test_rewrite_truncates_atomically(self, tmp_path):
        journal = StreamJournal(tmp_path / "j.jsonl")
        journal.append(emissions(8))
        kept = emissions(3)
        assert journal.rewrite(kept) == 3
        assert StreamJournal(journal.path).recover() == kept

"""The pipeline behind an OnlineTrustGate: ledger, attribution, resume."""

import pytest

from repro.resilience.faults import StreamFaultSpec
from repro.streaming import run_stream_soak
from repro.streaming.detector import ChangePoint
from repro.streaming.soak import DEFAULT_STREAM_FAULTS

SOAK_KW = dict(seed=77, duration_s=600.0, rate_per_s=6.0)

#: Deliberately strict gate so the default soak traffic trips it — the
#: tests below exercise the quarantine *mechanics*, not tuning.
GATE_KW = dict(burst_limit=5, repeat_limit=3)


@pytest.fixture(scope="module")
def gated():
    return run_stream_soak(**SOAK_KW, gate_kwargs=GATE_KW)


class TestQuarantineLedger:
    def test_quarantined_bucket_closes_the_ledger(self, gated):
        c = gated.counters
        assert c["quarantined"] > 0
        assert gated.ledger_closed
        assert c["emitted"] == (
            c["aggregated"] + c["late_dropped"] + c["late_side"]
            + c["deduped"] + c["quarantined"]
        )

    def test_ungated_soak_quarantines_nothing(self):
        report = run_stream_soak(**SOAK_KW)
        assert report.counters.get("quarantined", 0) == 0

    def test_gated_rerun_is_byte_identical(self, gated):
        again = run_stream_soak(**SOAK_KW, gate_kwargs=GATE_KW)
        assert again.digest == gated.digest
        assert again.counters == gated.counters
        assert again.change_points == gated.change_points


class TestFaultAttribution:
    def test_outcomes_use_ledger_buckets(self, gated):
        buckets = {"aggregated", "late_dropped", "late_side",
                   "deduped", "quarantined"}
        assert gated.fault_outcomes
        for kind, outcome in gated.fault_outcomes.items():
            assert set(outcome) <= buckets, kind
            assert all(n > 0 for n in outcome.values())

    def test_duplicates_land_in_dedup_or_quarantine(self, gated):
        # Every injected duplicate is either recognised by the dedup
        # stage or screened earlier by the gate — never aggregated
        # twice.
        dup = gated.fault_outcomes["duplicate"]
        assert "aggregated" not in dup

    def test_counters_dict_carries_per_kind_counters(self, gated):
        merged = gated.counters_dict()
        for kind, outcome in gated.fault_outcomes.items():
            for bucket, n in outcome.items():
                assert merged[f"fault.{kind}.{bucket}"] == n


class TestSuspectChangePoints:
    def test_gate_labels_attack_adjacent_shifts(self, gated):
        # The strict gate quarantines densely, so some change points
        # fire inside a quarantine burst and some in quiet stretches.
        flags = [cp.suspect for cp in gated.change_points]
        assert any(flags)

    def test_ungated_soak_never_suspects(self):
        report = run_stream_soak(**SOAK_KW)
        assert all(not cp.suspect for cp in report.change_points)

    def test_suspect_survives_dict_roundtrip(self, gated):
        for cp in gated.change_points:
            assert ChangePoint.from_dict(cp.to_dict()) == cp

    def test_suspect_named_in_summary(self, gated):
        suspect = next(cp for cp in gated.change_points if cp.suspect)
        assert "[suspect: attack burst]" in suspect.summary()


class TestGateCheckpointing:
    def test_crash_resume_with_gate_is_byte_identical(self, gated, tmp_path):
        crashed = run_stream_soak(
            **SOAK_KW,
            gate_kwargs=GATE_KW,
            faults=StreamFaultSpec(
                base_delay_s=DEFAULT_STREAM_FAULTS.base_delay_s,
                reorder_rate=DEFAULT_STREAM_FAULTS.reorder_rate,
                reorder_extra_s=DEFAULT_STREAM_FAULTS.reorder_extra_s,
                duplicate_rate=DEFAULT_STREAM_FAULTS.duplicate_rate,
                duplicate_delay_s=DEFAULT_STREAM_FAULTS.duplicate_delay_s,
                crash_at_s=(150.0, 400.0),
            ),
            checkpoint_dir=tmp_path,
        )
        assert crashed.crashes == 2
        assert crashed.digest == gated.digest
        # Suspect labels survive the resume: the gate's quarantine
        # history rides the checkpoint.
        assert crashed.change_points == gated.change_points
        assert crashed.counters["quarantined"] == (
            gated.counters["quarantined"]
        )
        assert crashed.ledger_closed

"""Pipeline accounting, checkpoint/resume, journal, exact-once ledger."""

import json

import pytest

from repro.errors import ConfigError
from repro.resilience.clock import ManualClock
from repro.resilience.faults import FaultPlan, StreamFaultSpec
from repro.streaming import (
    StreamConfig,
    StreamCounters,
    StreamJournal,
    StreamPipeline,
    StreamRecord,
    synthetic_stream,
)
from repro.streaming.pipeline import BoundedQueue, emissions_digest

SPEC = StreamFaultSpec(
    base_delay_s=2.0,
    reorder_rate=0.3,
    reorder_extra_s=25.0,
    duplicate_rate=0.08,
    duplicate_delay_s=8.0,
)


def deliveries_for(seed, duration_s=240.0, rate_per_s=6.0, spec=SPEC):
    records = synthetic_stream(
        seed=seed, duration_s=duration_s, rate_per_s=rate_per_s,
    )
    return FaultPlan(seed=seed).stream_faults("test", records, spec)


def drive(pipeline, deliveries, start=0):
    for delivery in deliveries[start:]:
        gap = delivery.at_s - pipeline.clock.now()
        if gap > 0:
            pipeline.clock.advance(gap)
        pipeline.ingest(delivery.record)
    return pipeline.finish()


class TestLedger:
    def test_every_delivery_is_accounted_exactly_once(self):
        deliveries = deliveries_for(seed=21)
        result = drive(
            StreamPipeline(StreamConfig(seed=21), clock=ManualClock()),
            deliveries,
        )
        c = result.counters
        assert c["emitted"] == len(deliveries)
        assert c["emitted"] == (
            c["aggregated"] + c["late_dropped"]
            + c["late_side"] + c["deduped"]
        )
        assert c["deduped"] > 0  # the chaos spec guarantees duplicates

    def test_side_channel_policy_keeps_late_records(self):
        config = StreamConfig(
            seed=21, late_policy="side", allowed_lateness_s=5.0,
            dedup_horizon_s=5.0, reorder_capacity=8,
        )
        deliveries = deliveries_for(seed=21)
        pipeline = StreamPipeline(config, clock=ManualClock())
        result = drive(pipeline, deliveries)
        assert result.counters["late_dropped"] == 0
        assert result.counters["late_side"] == len(pipeline.side_channel)
        assert result.counters["late_side"] > 0

    def test_forced_flush_counts_overflow(self):
        config = StreamConfig(
            seed=21, reorder_capacity=4, allowed_lateness_s=60.0,
            dedup_horizon_s=60.0,
        )
        result = drive(
            StreamPipeline(config, clock=ManualClock()),
            deliveries_for(seed=21),
        )
        assert result.counters["forced_flushes"] > 0
        assert result.counters["emitted"] == (
            result.counters["aggregated"] + result.counters["late_dropped"]
            + result.counters["late_side"] + result.counters["deduped"]
        )

    def test_violation_raises(self):
        counters = StreamCounters(emitted=3, aggregated=2)
        with pytest.raises(ConfigError, match="exact-once ledger"):
            counters.check_exact_once()


class TestDeterminism:
    def test_same_seed_byte_identical(self):
        a = drive(
            StreamPipeline(StreamConfig(seed=5), clock=ManualClock()),
            deliveries_for(seed=5),
        )
        b = drive(
            StreamPipeline(StreamConfig(seed=5), clock=ManualClock()),
            deliveries_for(seed=5),
        )
        assert a.digest == b.digest
        assert a.counters == b.counters
        assert a.change_points == b.change_points

    def test_different_seed_differs(self):
        a = drive(
            StreamPipeline(StreamConfig(seed=5), clock=ManualClock()),
            deliveries_for(seed=5),
        )
        b = drive(
            StreamPipeline(StreamConfig(seed=6), clock=ManualClock()),
            deliveries_for(seed=6),
        )
        assert a.digest != b.digest

    def test_backpressure_batching_does_not_change_results(self):
        """Tiny queues force constant drains; the digest must not move."""
        deliveries = deliveries_for(seed=9)
        roomy = drive(
            StreamPipeline(
                StreamConfig(seed=9, queue_capacity=512),
                clock=ManualClock(),
            ),
            deliveries,
        )
        cramped = drive(
            StreamPipeline(
                StreamConfig(seed=9, queue_capacity=2),
                clock=ManualClock(),
            ),
            deliveries,
        )
        assert cramped.counters["backpressure_waits"] > 0
        assert roomy.digest == cramped.digest
        assert roomy.change_points == cramped.change_points


class TestCheckpointResume:
    def test_crash_resume_converges_byte_identically(self, tmp_path):
        config = StreamConfig(seed=31, checkpoint_every_s=30.0)
        deliveries = deliveries_for(seed=31)

        uninterrupted = drive(
            StreamPipeline(
                config, clock=ManualClock(),
                checkpoint_dir=tmp_path / "a",
            ),
            deliveries,
        )

        # Crash at delivery 60%: drop the pipeline object on the floor,
        # resume from the latest epoch, replay from the cursor.
        crash_at = int(len(deliveries) * 0.6)
        pipeline = StreamPipeline(
            config, clock=ManualClock(), checkpoint_dir=tmp_path / "b",
        )
        for delivery in deliveries[:crash_at]:
            gap = delivery.at_s - pipeline.clock.now()
            if gap > 0:
                pipeline.clock.advance(gap)
            pipeline.ingest(delivery.record)
        resumed, cursor = StreamPipeline.resume(config, tmp_path / "b")
        assert 0 < cursor <= crash_at
        result = drive(resumed, deliveries, start=cursor)

        assert result.digest == uninterrupted.digest
        assert result.emissions == uninterrupted.emissions
        assert result.change_points == uninterrupted.change_points
        assert result.counters["resumes"] == 1
        for key, value in result.counters.items():
            if key != "resumes":
                assert value == uninterrupted.counters[key], key

    def test_resume_requires_a_checkpoint(self, tmp_path):
        with pytest.raises(ConfigError, match="no resumable checkpoint"):
            StreamPipeline.resume(StreamConfig(seed=1), tmp_path)

    def test_checkpoint_keyed_on_config_fingerprint(self, tmp_path):
        config = StreamConfig(seed=31, checkpoint_every_s=10.0)
        pipeline = StreamPipeline(
            config, clock=ManualClock(), checkpoint_dir=tmp_path,
        )
        for delivery in deliveries_for(seed=31)[:200]:
            gap = delivery.at_s - pipeline.clock.now()
            if gap > 0:
                pipeline.clock.advance(gap)
            pipeline.ingest(delivery.record)
        assert pipeline.counters.checkpoints > 0
        other = StreamConfig(seed=31, checkpoint_every_s=10.0, window_s=30.0)
        with pytest.raises(ConfigError, match="no resumable checkpoint"):
            StreamPipeline.resume(other, tmp_path)

    def test_resume_truncates_journal_to_checkpoint(self, tmp_path):
        """Crash after emissions were journaled but not checkpointed:
        resume rewrites the journal so nothing is re-emitted twice."""
        config = StreamConfig(seed=31, checkpoint_every_s=30.0)
        deliveries = deliveries_for(seed=31)
        journal_path = tmp_path / "journal.jsonl"

        journal = StreamJournal(journal_path)
        pipeline = StreamPipeline(
            config, clock=ManualClock(),
            checkpoint_dir=tmp_path / "ckpt", journal=journal,
        )
        crash_at = int(len(deliveries) * 0.6)
        for delivery in deliveries[:crash_at]:
            gap = delivery.at_s - pipeline.clock.now()
            if gap > 0:
                pipeline.clock.advance(gap)
            pipeline.ingest(delivery.record)

        journal2 = StreamJournal(journal_path)
        resumed, cursor = StreamPipeline.resume(
            config, tmp_path / "ckpt", journal=journal2,
        )
        result = drive(resumed, deliveries, start=cursor)

        journaled = StreamJournal(journal_path).recover()
        assert tuple(journaled) == result.emissions  # no dupes, no holes

    def test_finished_pipeline_rejects_ingest(self):
        pipeline = StreamPipeline(StreamConfig(seed=1), clock=ManualClock())
        pipeline.ingest(StreamRecord(
            event_time_s=1.0, source="t", metric="m", value=1.0,
        ))
        pipeline.finish()
        with pytest.raises(ConfigError):
            pipeline.ingest(StreamRecord(
                event_time_s=2.0, source="t", metric="m", value=1.0,
            ))


class TestConfigAndQueue:
    def test_config_fingerprint_is_stable_json(self):
        a = StreamConfig(seed=1)
        b = StreamConfig(seed=1)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != StreamConfig(seed=2).fingerprint()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            StreamConfig(late_policy="teleport")
        with pytest.raises(ConfigError):
            StreamConfig(dedup_horizon_s=1.0, allowed_lateness_s=30.0)
        with pytest.raises(ConfigError):
            StreamConfig(reorder_capacity=0)

    def test_bounded_queue_overflow_is_an_error(self):
        q = BoundedQueue(capacity=2)
        q.push(1)
        q.push(2)
        assert q.full
        with pytest.raises(ConfigError):
            q.push(3)
        assert q.drain() == [1, 2]
        assert len(q) == 0

    def test_emissions_digest_is_order_sensitive(self):
        from repro.streaming.operators import Emission
        a = Emission(
            at_s=1.0, operator="o", metric="m", value=1.0, count=1,
            role="network",
        )
        b = Emission(
            at_s=2.0, operator="o", metric="m", value=2.0, count=1,
            role="network",
        )
        assert emissions_digest([a, b]) != emissions_digest([b, a])

    def test_result_summary_mentions_ledger_fields(self):
        result = drive(
            StreamPipeline(StreamConfig(seed=3), clock=ManualClock()),
            deliveries_for(seed=3, duration_s=120.0),
        )
        text = result.summary()
        assert "emitted=" in text and "digest=" in text
        json.dumps(result.counters)  # counters stay JSON-safe

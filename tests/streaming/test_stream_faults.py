"""Stream fault injection: arrival chaos is seeded, total-ordered chaos."""

import pytest

from repro.errors import ConfigError
from repro.resilience.faults import FaultPlan, StreamDelivery, StreamFaultSpec
from repro.streaming import synthetic_stream

SPEC = StreamFaultSpec(
    base_delay_s=2.0,
    reorder_rate=0.3,
    reorder_extra_s=20.0,
    duplicate_rate=0.1,
    duplicate_delay_s=10.0,
    skew_windows=((100.0, 30.0, 8.0),),
    gap_windows=((200.0, 20.0),),
)


def records(seed=19):
    return synthetic_stream(seed=seed, duration_s=300.0, rate_per_s=4.0)


class TestStreamFaults:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(seed=3).stream_faults("s", records(), SPEC)
        b = FaultPlan(seed=3).stream_faults("s", records(), SPEC)
        assert a == b

    def test_different_seed_differs(self):
        a = FaultPlan(seed=3).stream_faults("s", records(), SPEC)
        b = FaultPlan(seed=4).stream_faults("s", records(), SPEC)
        assert a != b

    def test_schedule_is_totally_ordered(self):
        deliveries = FaultPlan(seed=3).stream_faults("s", records(), SPEC)
        keys = [(d.at_s, d.seq) for d in deliveries]
        assert keys == sorted(keys)
        assert len(set(keys)) == len(keys)

    def test_event_times_never_touched(self):
        source = records()
        deliveries = FaultPlan(seed=3).stream_faults("s", source, SPEC)
        originals = {r.fingerprint for r in source}
        for d in deliveries:
            assert d.record.fingerprint in originals
            assert d.at_s >= d.record.event_time_s  # delivery after event

    def test_duplicates_marked_and_counted(self):
        deliveries = FaultPlan(seed=3).stream_faults("s", records(), SPEC)
        dupes = [d for d in deliveries if d.duplicate]
        assert dupes
        assert len(deliveries) == len(records()) + len(dupes)

    def test_gap_window_holds_deliveries(self):
        """No delivery lands inside a gap window; the burst drains at
        its end."""
        deliveries = FaultPlan(seed=3).stream_faults("s", records(), SPEC)
        start, duration = SPEC.gap_windows[0]
        assert all(
            not (start <= d.at_s < start + duration) for d in deliveries
        )
        held = [d for d in deliveries if "gap" in d.injected]
        assert held
        assert all(d.at_s >= start + duration for d in held)

    def test_injected_labels_name_the_faults(self):
        deliveries = FaultPlan(seed=3).stream_faults("s", records(), SPEC)
        seen = {label for d in deliveries for label in d.injected}
        assert {"reorder", "skew", "gap", "duplicate"} <= seen

    def test_plan_log_records_the_call(self):
        plan = FaultPlan(seed=3)
        deliveries = plan.stream_faults("s", records(), SPEC)
        assert ("s", f"stream_faults.{len(deliveries)}") in plan.log

    def test_no_chaos_spec_preserves_order(self):
        source = records()
        deliveries = FaultPlan(seed=3).stream_faults(
            "s", source, StreamFaultSpec(base_delay_s=0.0)
        )
        assert [d.record for d in deliveries] == list(source)
        assert [d.at_s for d in deliveries] == [
            r.event_time_s for r in source
        ]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base_delay_s=-1.0),
            dict(reorder_rate=1.5),
            dict(duplicate_rate=-0.1),
            dict(reorder_rate=0.5, reorder_extra_s=-1.0),
            dict(skew_windows=((0.0, -5.0, 1.0),)),
            dict(gap_windows=((-1.0, 5.0),)),
            dict(crash_at_s=(-1.0,)),
        ],
    )
    def test_bad_spec_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            StreamFaultSpec(**kwargs)

    def test_delivery_is_frozen(self):
        d = FaultPlan(seed=3).stream_faults("s", records()[:1], SPEC)[0]
        assert isinstance(d, StreamDelivery)
        with pytest.raises(Exception):
            d.at_s = 0.0


class TestSyntheticStream:
    def test_deterministic_and_time_ordered(self):
        a = synthetic_stream(seed=5, duration_s=120.0, rate_per_s=4.0)
        b = synthetic_stream(seed=5, duration_s=120.0, rate_per_s=4.0)
        assert a == b
        times = [r.event_time_s for r in a]
        assert times == sorted(times)

    def test_covers_both_roles(self):
        stream = synthetic_stream(seed=5, duration_s=120.0, rate_per_s=4.0)
        roles = {r.role for r in stream}
        assert roles == {"network", "experience"}

    def test_values_stay_physical(self):
        stream = synthetic_stream(seed=5, duration_s=300.0, rate_per_s=8.0)
        for r in stream:
            if r.metric == "mos":
                assert 1.0 <= r.value <= 5.0
            if r.metric in ("loss_pct", "speed_mbps"):
                assert r.value >= 0.0

"""Dataset → stream adapters: the batch/live boundary is deterministic."""

import datetime as dt

import pytest

from repro.social.corpus import CorpusConfig, CorpusGenerator
from repro.social.streams import social_stream
from repro.telemetry.generator import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.schema import NETWORK_METRICS
from repro.telemetry.streams import telemetry_stream


@pytest.fixture(scope="module")
def dataset():
    config = GeneratorConfig(n_calls=15, seed=5, mos_sample_rate=0.5)
    return CallDatasetGenerator(config).generate()


@pytest.fixture(scope="module")
def corpus():
    config = CorpusConfig(
        seed=5,
        span_start=dt.date(2022, 1, 1),
        span_end=dt.date(2022, 1, 14),
        speed_share_count=40,
    )
    return CorpusGenerator(config).generate()


class TestTelemetryStream:
    def test_event_time_ordered_and_deterministic(self, dataset):
        a = telemetry_stream(dataset)
        b = telemetry_stream(dataset)
        assert a == b
        times = [r.event_time_s for r in a]
        assert times == sorted(times)
        assert times[0] == 0.0  # epoch defaults to the first call

    def test_network_metrics_and_ratings_emitted(self, dataset):
        records = telemetry_stream(dataset)
        metrics = {r.metric for r in records if r.role == "network"}
        assert metrics == set(NETWORK_METRICS)
        ratings = [r for r in records if r.role == "experience"]
        assert ratings  # mos_sample_rate=0.5 guarantees some
        assert all(r.metric == "rating" for r in ratings)
        assert all(1.0 <= r.value <= 5.0 for r in ratings)

    def test_keys_are_scrubbed(self, dataset):
        raw_ids = {
            p.user_id for call in dataset for p in call.participants
        }
        keys = {r.key for r in telemetry_stream(dataset)}
        assert keys.isdisjoint(raw_ids)

    def test_explicit_epoch_shifts_times(self, dataset):
        calls = list(dataset)
        first = min(call.start for call in calls)
        epoch = first - dt.timedelta(seconds=100)
        shifted = telemetry_stream(dataset, epoch=epoch)
        assert min(r.event_time_s for r in shifted) == 100.0


class TestSocialStream:
    def test_event_time_ordered_and_deterministic(self, corpus):
        a = social_stream(corpus)
        b = social_stream(corpus)
        assert a == b
        times = [r.event_time_s for r in a]
        assert times == sorted(times)

    def test_sentiment_and_speed_records(self, corpus):
        records = social_stream(corpus)
        sentiment = [r for r in records if r.metric == "sentiment_polarity"]
        speeds = [r for r in records if r.metric == "reported_downlink_mbps"]
        assert len(sentiment) == len(list(corpus))
        assert all(r.role == "experience" for r in sentiment)
        assert speeds  # speed_share_count=40 guarantees some
        assert all(r.role == "network" and r.value >= 0.0 for r in speeds)

    def test_authors_are_scrubbed(self, corpus):
        authors = {post.author for post in corpus}
        keys = {r.key for r in social_stream(corpus)}
        assert keys.isdisjoint(authors)

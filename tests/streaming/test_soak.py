"""Deterministic stream soak: chaos, crashes, ledger closure, detection."""

import pytest

from repro.resilience.faults import StreamFaultSpec
from repro.streaming import DegradationSpec, run_stream_soak
from repro.streaming.soak import DEFAULT_STREAM_FAULTS

SOAK_KW = dict(seed=77, duration_s=600.0, rate_per_s=6.0)


@pytest.fixture(scope="module")
def baseline():
    return run_stream_soak(**SOAK_KW)


class TestSoakDeterminism:
    def test_rerun_is_byte_identical(self, baseline):
        again = run_stream_soak(**SOAK_KW)
        assert again.digest == baseline.digest
        assert again.counters == baseline.counters
        assert again.change_points == baseline.change_points

    def test_other_seed_differs(self, baseline):
        other = run_stream_soak(seed=78, duration_s=600.0, rate_per_s=6.0)
        assert other.digest != baseline.digest


class TestSoakLedger:
    def test_ledger_closes_under_default_chaos(self, baseline):
        assert baseline.ledger_closed
        c = baseline.counters
        assert c["emitted"] == baseline.n_deliveries
        assert c["emitted"] == (
            c["aggregated"] + c["late_dropped"]
            + c["late_side"] + c["deduped"]
        )
        assert c["deduped"] > 0  # default spec injects duplicates

    def test_ledger_closes_under_heavy_chaos(self):
        faults = StreamFaultSpec(
            base_delay_s=4.0,
            reorder_rate=0.4,
            reorder_extra_s=45.0,
            duplicate_rate=0.1,
            duplicate_delay_s=15.0,
            skew_windows=((120.0, 60.0, 12.0),),
            gap_windows=((300.0, 45.0),),
        )
        report = run_stream_soak(seed=77, duration_s=600.0, faults=faults)
        assert report.ledger_closed
        assert report.counters["late_dropped"] > 0

    def test_report_summary_and_dict(self, baseline):
        text = baseline.summary()
        assert "digest=" in text and "detected=" in text
        d = baseline.counters_dict()
        assert d["emitted"] == baseline.counters["emitted"]


class TestSoakDetection:
    def test_injected_degradations_are_detected(self, baseline):
        assert baseline.degradations  # default plan injects them
        assert baseline.detected == len(baseline.degradations)
        assert baseline.blind_rate == 0.0

    def test_experience_change_points_are_attributed(self, baseline):
        experience = [
            cp for cp in baseline.change_points if cp.role == "experience"
        ]
        assert experience
        assert any(cp.attributed_to for cp in experience)

    def test_quiet_stream_fires_nothing(self):
        report = run_stream_soak(
            seed=77, duration_s=600.0, degradations=(),
        )
        assert report.detected == 0
        assert report.blind_rate == 0.0  # nothing to miss
        assert not report.change_points


class TestSoakCrashRecovery:
    def test_crash_resume_matches_uninterrupted(self, baseline, tmp_path):
        crashed = run_stream_soak(
            **SOAK_KW,
            faults=StreamFaultSpec(
                base_delay_s=DEFAULT_STREAM_FAULTS.base_delay_s,
                reorder_rate=DEFAULT_STREAM_FAULTS.reorder_rate,
                reorder_extra_s=DEFAULT_STREAM_FAULTS.reorder_extra_s,
                duplicate_rate=DEFAULT_STREAM_FAULTS.duplicate_rate,
                duplicate_delay_s=DEFAULT_STREAM_FAULTS.duplicate_delay_s,
                crash_at_s=(150.0, 400.0),
            ),
            checkpoint_dir=tmp_path,
        )
        assert crashed.crashes == 2
        assert crashed.counters["resumes"] == 2
        assert crashed.digest == baseline.digest
        assert crashed.change_points == baseline.change_points
        assert crashed.ledger_closed

    def test_crash_before_first_checkpoint_restarts_clean(self, baseline):
        crashed = run_stream_soak(
            **SOAK_KW,
            faults=StreamFaultSpec(
                base_delay_s=DEFAULT_STREAM_FAULTS.base_delay_s,
                reorder_rate=DEFAULT_STREAM_FAULTS.reorder_rate,
                reorder_extra_s=DEFAULT_STREAM_FAULTS.reorder_extra_s,
                duplicate_rate=DEFAULT_STREAM_FAULTS.duplicate_rate,
                duplicate_delay_s=DEFAULT_STREAM_FAULTS.duplicate_delay_s,
                crash_at_s=(5.0,),
            ),
        )
        assert crashed.crashes == 1
        assert crashed.digest == baseline.digest


class TestDegradationSpec:
    def test_windows(self):
        spec = DegradationSpec(at_s=100.0, duration_s=50.0, lag_s=10.0)
        assert spec.network_active(100.0)
        assert spec.network_active(149.9)
        assert not spec.network_active(150.0)
        assert not spec.experience_active(105.0)
        assert spec.experience_active(115.0)
        assert spec.experience_active(155.0)

    def test_validation(self):
        with pytest.raises(Exception):
            DegradationSpec(at_s=-1.0, duration_s=10.0)
        with pytest.raises(Exception):
            DegradationSpec(at_s=0.0, duration_s=0.0)

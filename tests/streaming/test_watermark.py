"""Watermarks, reorder buffering and dedup: the ordering guarantees."""

import pytest

from repro import rng as rng_mod
from repro.errors import ConfigError
from repro.streaming import (
    DedupFilter,
    ReorderBuffer,
    StreamRecord,
    WatermarkTracker,
)
from repro.streaming.watermark import NO_WATERMARK


def rec(t, metric="latency_ms", value=40.0, key="u0"):
    return StreamRecord(
        event_time_s=t, source="test", metric=metric, value=value, key=key,
    )


class TestWatermarkTracker:
    def test_starts_at_no_watermark(self):
        wm = WatermarkTracker(allowed_lateness_s=10.0)
        assert wm.watermark_s == NO_WATERMARK
        assert not wm.is_late(0.0)

    def test_watermark_trails_by_allowed_lateness(self):
        wm = WatermarkTracker(allowed_lateness_s=10.0)
        wm.observe(100.0)
        assert wm.watermark_s == 90.0
        assert wm.is_late(89.9)
        assert not wm.is_late(90.0)  # boundary: exactly-at is on time

    def test_monotonic_under_adversarial_event_times(self):
        """The watermark never regresses, however disordered arrivals are."""
        wm = WatermarkTracker(allowed_lateness_s=5.0)
        stream = rng_mod.derive(13, "test", "watermark")
        last = NO_WATERMARK
        for _ in range(500):
            wm.observe(float(stream.random()) * 1000.0)
            assert wm.watermark_s >= last
            last = wm.watermark_s

    def test_floor_advance_is_monotone_and_counts(self):
        wm = WatermarkTracker(allowed_lateness_s=50.0)
        wm.observe(100.0)
        assert wm.watermark_s == 50.0
        wm.advance_floor(80.0)
        assert wm.watermark_s == 80.0
        wm.advance_floor(60.0)  # lower floor never wins
        assert wm.watermark_s == 80.0

    def test_negative_lateness_rejected(self):
        with pytest.raises(ConfigError):
            WatermarkTracker(allowed_lateness_s=-1.0)

    def test_state_round_trip(self):
        wm = WatermarkTracker(allowed_lateness_s=10.0)
        wm.observe(100.0)
        wm.advance_floor(95.0)
        clone = WatermarkTracker(allowed_lateness_s=10.0)
        clone.load_state(wm.state_dict())
        assert clone.watermark_s == wm.watermark_s
        assert clone.max_event_time_s == wm.max_event_time_s
        assert clone.observed == wm.observed

    def test_state_round_trip_before_first_observation(self):
        wm = WatermarkTracker(allowed_lateness_s=10.0)
        clone = WatermarkTracker(allowed_lateness_s=10.0)
        clone.load_state(wm.state_dict())
        assert clone.watermark_s == NO_WATERMARK


class TestReorderBuffer:
    def test_releases_in_event_time_order(self):
        buf = ReorderBuffer(capacity=16)
        times = [5.0, 1.0, 3.0, 2.0, 4.0]
        for t in times:
            buf.push(rec(t))
        released = buf.release(3.0)
        assert [r.event_time_s for r in released] == [1.0, 2.0, 3.0]
        assert len(buf) == 2

    def test_equal_event_times_release_in_arrival_order(self):
        buf = ReorderBuffer(capacity=16)
        buf.push(rec(1.0, key="first"))
        buf.push(rec(1.0, key="second"))
        released = buf.release(1.0)
        assert [r.key for r in released] == ["first", "second"]

    def test_overflow_is_signalled_not_silent(self):
        buf = ReorderBuffer(capacity=2)
        for t in (3.0, 1.0, 2.0):
            buf.push(rec(t))
        assert buf.overflowing
        assert buf.pop_oldest().event_time_s == 1.0
        assert not buf.overflowing

    def test_pop_empty_raises(self):
        with pytest.raises(ConfigError):
            ReorderBuffer(capacity=1).pop_oldest()

    def test_state_round_trip_preserves_order(self):
        buf = ReorderBuffer(capacity=8)
        for t in (5.0, 1.0, 3.0):
            buf.push(rec(t))
        clone = ReorderBuffer(capacity=8)
        clone.load_state(buf.state_dict())
        assert [r.event_time_s for r in clone.release(10.0)] == [
            r.event_time_s for r in buf.release(10.0)
        ]


class TestDedupFilter:
    def test_duplicate_detected_distinct_passed(self):
        dd = DedupFilter(horizon_s=60.0)
        a, b = rec(1.0, key="u1"), rec(1.0, key="u2")
        assert not dd.seen(a)
        assert dd.seen(a)
        assert not dd.seen(b)  # same instant, different key

    def test_same_fields_same_fingerprint(self):
        dd = DedupFilter(horizon_s=60.0)
        assert not dd.seen(rec(1.0))
        assert dd.seen(rec(1.0))  # a distinct but identical object

    def test_eviction_bounds_memory(self):
        dd = DedupFilter(horizon_s=10.0)
        for t in range(100):
            dd.seen(rec(float(t)))
        dropped = dd.evict(watermark_s=99.0)
        assert dropped == dd.evicted > 0
        assert len(dd) == 100 - dropped
        # everything younger than watermark - horizon is retained
        assert dd.seen(rec(95.0))

    def test_state_round_trip(self):
        dd = DedupFilter(horizon_s=60.0)
        dd.seen(rec(1.0))
        dd.seen(rec(2.0))
        clone = DedupFilter(horizon_s=60.0)
        clone.load_state(dd.state_dict())
        assert clone.seen(rec(1.0))
        assert not clone.seen(rec(3.0))


class TestStreamRecord:
    def test_validation(self):
        with pytest.raises(Exception):
            StreamRecord(event_time_s=-1.0, source="s", metric="m", value=1.0)
        with pytest.raises(Exception):
            StreamRecord(event_time_s=0.0, source="", metric="m", value=1.0)
        with pytest.raises(Exception):
            StreamRecord(
                event_time_s=0.0, source="s", metric="m", value=1.0,
                role="nonsense",
            )

    def test_round_trip(self):
        r = rec(3.5, metric="mos", value=4.25, key="u7")
        assert StreamRecord.from_dict(r.to_dict()) == r
        assert StreamRecord.from_dict(r.to_dict()).fingerprint == r.fingerprint

"""Incremental operators: equivalence with batch recompute, invariance."""

import pytest

from repro import rng as rng_mod
from repro.errors import ConfigError
from repro.streaming import (
    DecayedAggregate,
    SlidingWindowAggregate,
    StreamRecord,
    batch_window_aggregates,
)
from repro.streaming.detector import OnlineChangePointDetector
from repro.streaming.operators import Emission


def make_records(seed=11, n=400, metrics=("latency_ms", "mos")):
    stream = rng_mod.derive(seed, "test", "operators")
    records = []
    for i in range(n):
        metric = metrics[i % len(metrics)]
        records.append(StreamRecord(
            event_time_s=(i + 1) * 0.7,
            source="test",
            metric=metric,
            value=40.0 + float(stream.standard_normal()),
            key=f"u{i % 5}",
            role="experience" if metric == "mos" else "network",
        ))
    return records


class TestSlidingWindowAggregate:
    def test_matches_batch_recompute_exactly(self):
        """The incremental path equals the full-history recompute."""
        records = make_records()
        op = SlidingWindowAggregate(window_s=30.0, slide_s=10.0)
        emissions = op.process(records, records[-1].event_time_s)
        emissions += op.flush(records[-1].event_time_s)
        got = {(e.metric, e.at_s): (e.value, e.count) for e in emissions}
        want = batch_window_aggregates(records, window_s=30.0, slide_s=10.0)
        assert got == want

    def test_equivalence_under_any_batching(self):
        """Chopping the same stream differently changes nothing."""
        records = make_records(n=200)
        final = records[-1].event_time_s

        def run(cuts):
            op = SlidingWindowAggregate(window_s=30.0, slide_s=10.0)
            out = []
            start = 0
            for stop in cuts + [len(records)]:
                batch = records[start:stop]
                wm = batch[-1].event_time_s if batch else None
                if wm is not None:
                    out += op.process(batch, wm)
                start = stop
            out += op.flush(final)
            return out

        assert run([50, 100, 150]) == run([10, 11, 190]) == run([])

    def test_series_rows_appended_on_close(self):
        records = make_records(n=100)
        op = SlidingWindowAggregate(window_s=30.0, slide_s=10.0)
        emissions = op.process(records, records[-1].event_time_s)
        assert len(op.series) == len(emissions) > 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            SlidingWindowAggregate(window_s=0.0, slide_s=1.0)
        with pytest.raises(ConfigError):
            SlidingWindowAggregate(window_s=10.0, slide_s=20.0)

    def test_state_round_trip_mid_stream(self):
        records = make_records(n=300)
        op = SlidingWindowAggregate(window_s=30.0, slide_s=10.0)
        head, tail = records[:150], records[150:]
        got = op.process(head, head[-1].event_time_s)
        clone = SlidingWindowAggregate(window_s=30.0, slide_s=10.0)
        clone.load_state(op.state_dict())
        final = records[-1].event_time_s
        got_rest = clone.process(tail, final) + clone.flush(final)
        straight = SlidingWindowAggregate(window_s=30.0, slide_s=10.0)
        want = straight.process(records, final) + straight.flush(final)
        assert got + got_rest == want


class TestDecayedAggregate:
    def test_decay_halves_weight_per_half_life(self):
        op = DecayedAggregate(half_life_s=10.0, sample_every_s=5.0)
        op.on_record(StreamRecord(
            event_time_s=0.0, source="t", metric="m", value=0.0, key="a",
        ))
        op.on_record(StreamRecord(
            event_time_s=10.0, source="t", metric="m", value=3.0, key="a",
        ))
        # weights: 0.5 on the old sample, 1.0 on the new
        assert op.value_at("m", 10.0) == pytest.approx(3.0 / 1.5)

    def test_equivalence_under_any_batching(self):
        records = make_records(n=200)
        final = records[-1].event_time_s

        def run(cuts):
            op = DecayedAggregate(half_life_s=20.0, sample_every_s=7.0)
            out = []
            start = 0
            for stop in cuts + [len(records)]:
                batch = records[start:stop]
                if batch:
                    out += op.process(batch, batch[-1].event_time_s)
                start = stop
            out += op.flush(final)
            return out

        assert run([50, 100, 150]) == run([3, 7, 199]) == run([])

    def test_sample_in_the_past_rejected(self):
        op = DecayedAggregate(half_life_s=10.0, sample_every_s=5.0)
        op.on_record(StreamRecord(
            event_time_s=10.0, source="t", metric="m", value=1.0, key="a",
        ))
        with pytest.raises(ConfigError):
            op.value_at("m", 5.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DecayedAggregate(half_life_s=0.0, sample_every_s=1.0)
        with pytest.raises(ConfigError):
            DecayedAggregate(half_life_s=1.0, sample_every_s=0.0)


class TestOnlineChangePointDetector:
    @staticmethod
    def emissions(values, role="network", metric="latency_ms", step=10.0):
        return [
            Emission(
                at_s=(i + 1) * step, operator="win_mean", metric=metric,
                value=v, count=10, role=role,
            )
            for i, v in enumerate(values)
        ]

    def test_detects_level_shift(self):
        det = OnlineChangePointDetector(
            reference_n=8, test_n=3, z_threshold=4.0, min_gap_s=0.0,
        )
        values = [40.0 + 0.1 * (i % 3) for i in range(10)] + [80.0] * 4
        cps = [
            cp for cp in map(det.on_emission, self.emissions(values))
            if cp is not None
        ]
        assert cps, "a 40 -> 80 shift must fire"
        assert cps[0].z_score > 4.0
        assert cps[0].metric == "latency_ms:win_mean"

    def test_quiet_stream_stays_quiet(self):
        det = OnlineChangePointDetector(reference_n=8, test_n=3)
        values = [40.0 + 0.05 * ((i * 7) % 5) for i in range(60)]
        assert all(
            det.on_emission(e) is None for e in self.emissions(values)
        )

    def test_min_gap_silences_repeat_fire(self):
        det = OnlineChangePointDetector(
            reference_n=8, test_n=3, z_threshold=4.0, min_gap_s=1e9,
        )
        values = [40.0 + 0.1 * (i % 3) for i in range(10)] + [80.0] * 20
        cps = [
            cp for cp in map(det.on_emission, self.emissions(values))
            if cp is not None
        ]
        assert len(cps) == 1

    def test_experience_shift_attributed_to_network_cause(self):
        det = OnlineChangePointDetector(
            reference_n=8, test_n=3, z_threshold=4.0, min_gap_s=0.0,
            attribution_horizon_s=500.0,
        )
        net = [40.0 + 0.1 * (i % 3) for i in range(10)] + [80.0] * 6
        exp = [4.3 + 0.01 * (i % 3) for i in range(12)] + [2.0] * 4
        stream = (
            self.emissions(net, role="network", metric="latency_ms")
            + self.emissions(exp, role="experience", metric="mos")
        )
        cps = [
            cp for cp in map(det.on_emission, stream) if cp is not None
        ]
        exp_cps = [cp for cp in cps if cp.role == "experience"]
        assert exp_cps
        assert exp_cps[0].attributed_to == "latency_ms:win_mean"
        assert exp_cps[0].attributed_at_s is not None

    def test_state_round_trip_continues_identically(self):
        values = [40.0 + 0.1 * (i % 3) for i in range(10)] + [80.0] * 4
        stream = self.emissions(values)
        det = OnlineChangePointDetector(reference_n=8, test_n=3)
        for e in stream[:7]:
            det.on_emission(e)
        clone = OnlineChangePointDetector(reference_n=8, test_n=3)
        clone.load_state(det.state_dict())
        got = [clone.on_emission(e) for e in stream[7:]]
        straight = OnlineChangePointDetector(reference_n=8, test_n=3)
        want = [straight.on_emission(e) for e in stream][7:]
        assert got == want

"""Tier-1 wiring for the bare-except lint (tools/check_no_bare_except.py)."""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "check_no_bare_except.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_no_bare_except", TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_src_tree_is_clean():
    tool = _load_tool()
    violations = tool.check_tree(REPO / "src")
    assert violations == [], "\n".join(
        f"{p}:{line}: {msg}" for p, line, msg in violations
    )


def test_detects_bare_except(tmp_path):
    tool = _load_tool()
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    x()\nexcept:\n    handle()\n")
    violations = tool.check_file(bad)
    assert len(violations) == 1
    assert "bare" in violations[0][2]


def test_detects_silent_swallow(tmp_path):
    tool = _load_tool()
    bad = tmp_path / "bad.py"
    bad.write_text("try:\n    x()\nexcept Exception:\n    pass\n")
    violations = tool.check_file(bad)
    assert len(violations) == 1
    assert "swallows" in violations[0][2]


def test_allows_narrow_and_handled(tmp_path):
    tool = _load_tool()
    ok = tmp_path / "ok.py"
    ok.write_text(
        "try:\n    x()\nexcept OSError:\n    pass\n"
        "try:\n    y()\nexcept Exception as exc:\n    log(exc)\n"
    )
    assert tool.check_file(ok) == []


def test_cli_entrypoint(tmp_path):
    tool = _load_tool()
    (tmp_path / "bad.py").write_text("try:\n    x()\nexcept:\n    pass\n")
    assert tool.main(["prog", str(tmp_path)]) == 1
    (tmp_path / "bad.py").write_text("x = 1\n")
    assert tool.main(["prog", str(tmp_path)]) == 0
    assert tool.main(["prog", str(tmp_path / "missing")]) == 2


def test_strict_dirs_flag_narrow_swallow(tmp_path):
    """In the strict packages, even narrow swallows are banned."""
    tool = _load_tool()
    for subdir in (("repro", "perf"), ("repro", "resilience"),
                   ("repro", "prediction")):
        target = tmp_path.joinpath(*subdir)
        target.mkdir(parents=True, exist_ok=True)
        bad = target / "x.py"
        bad.write_text("try:\n    x()\nexcept OSError:\n    pass\n")
        violations = tool.check_file(bad)
        assert len(violations) == 1, subdir
        assert "swallows" in violations[0][2]


def test_vectorized_modules_are_strict_anywhere_under_repro(tmp_path):
    """vectorized*.py under repro is strict wherever it lives: the block
    engines' byte-identity contract makes silent swallows wrong-numbers
    bugs, not robustness."""
    tool = _load_tool()
    for subdir, name in (
        (("repro", "netsim"), "vectorized.py"),
        (("repro", "social"), "vectorized_corpus.py"),
    ):
        target = tmp_path.joinpath(*subdir)
        target.mkdir(parents=True, exist_ok=True)
        bad = target / name
        bad.write_text("try:\n    x()\nexcept OSError:\n    pass\n")
        violations = tool.check_file(bad)
        assert len(violations) == 1, (subdir, name)
        assert "swallows" in violations[0][2]
    outside = tmp_path / "scripts"
    outside.mkdir(exist_ok=True)
    ok = outside / "vectorized.py"
    ok.write_text("try:\n    x()\nexcept OSError:\n    pass\n")
    assert tool.check_file(ok) == []


def test_strict_rule_does_not_apply_elsewhere(tmp_path):
    tool = _load_tool()
    target = tmp_path / "repro" / "io"
    target.mkdir(parents=True)
    ok = target / "x.py"
    ok.write_text("try:\n    x()\nexcept OSError:\n    pass\n")
    assert tool.check_file(ok) == []


def test_strict_dirs_allow_handled_narrow_excepts(tmp_path):
    """Counting / logging / re-routing the failure satisfies the rule."""
    tool = _load_tool()
    target = tmp_path / "repro" / "perf"
    target.mkdir(parents=True)
    ok = target / "x.py"
    ok.write_text(
        "try:\n    x()\nexcept OSError:\n    races += 1\n"
        "try:\n    y()\nexcept ValueError as exc:\n    log(exc)\n"
    )
    assert tool.check_file(ok) == []

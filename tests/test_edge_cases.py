"""Gap-filling edge-case tests across modules."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import AnalysisError


class TestTimelineEdges:
    def test_daily_series_custom_fill(self):
        from repro.core.timeline import DailySeries

        series = DailySeries.zeros(
            dt.date(2022, 1, 1), dt.date(2022, 1, 3), fill=7.0
        )
        assert series[dt.date(2022, 1, 2)] == 7.0

    def test_monthly_series_nan_fill_default(self):
        from repro.core.timeline import MonthlySeries

        series = MonthlySeries.zeros((2022, 1), (2022, 3))
        assert np.isnan(series[(2022, 2)])

    def test_monthly_items_order(self):
        from repro.core.timeline import MonthlySeries

        series = MonthlySeries.from_mapping(
            {(2021, 12): 1.0, (2022, 1): 2.0}
        )
        months = [m for m, _ in series.items()]
        assert months == [(2021, 12), (2022, 1)]

    def test_single_day_series(self):
        from repro.core.timeline import DailySeries

        day = dt.date(2022, 4, 22)
        series = DailySeries.zeros(day, day)
        series.add(day, 3)
        assert series.weekly_average() == pytest.approx(21.0)
        assert series.top_peaks(1) == [(day, 3.0)]

    def test_top_peaks_more_than_available(self):
        from repro.core.timeline import DailySeries

        series = DailySeries.zeros(dt.date(2022, 1, 1), dt.date(2022, 1, 2))
        series[dt.date(2022, 1, 1)] = 5
        peaks = series.top_peaks(10, min_separation_days=1)
        assert len(peaks) == 2  # span only has two days


class TestStatsEdges:
    def test_nonempty_on_fully_empty_curve(self):
        from repro.core.stats import bin_statistic

        curve = bin_statistic([99.0], [1.0], [0, 1, 2])  # key out of range
        stripped = curve.nonempty()
        assert stripped.n_bins == 0

    def test_bootstrap_single_value(self, fresh_rng):
        from repro.core.stats import bootstrap_ci

        result = bootstrap_ci([3.0], rng=fresh_rng)
        assert result.estimate == 3.0
        assert result.width == 0.0


class TestFig1ResultEdges:
    def test_slope_requires_two_bins(self, small_dataset):
        from repro.engagement import CohortFilter, fig1_curves

        pool = list(CohortFilter.permissive().apply(small_dataset)
                    .participants())
        result = fig1_curves(pool, use_control_windows=False,
                             min_bin_count=1)
        with pytest.raises(AnalysisError):
            result.slope("latency_ms", "mic_on_pct", 299.9, 300.0)


class TestSignalSeriesEdges:
    def test_values_listing(self):
        from repro.core.signals import ImplicitSignal, SignalSeries

        ts = dt.datetime(2022, 1, 1)
        series = SignalSeries([
            ImplicitSignal(ts, "n", "m", 1.0),
            ImplicitSignal(ts, "n", "m", 2.0),
        ])
        assert series.values() == [1.0, 2.0]

    def test_filter_chaining(self):
        from repro.core.signals import ImplicitSignal, SignalSeries

        ts = dt.datetime(2022, 1, 1)
        series = SignalSeries([
            ImplicitSignal(ts, "a", "m", 1.0, platform="ios"),
            ImplicitSignal(ts, "a", "m", 2.0, platform="win"),
            ImplicitSignal(ts, "b", "m", 3.0, platform="ios"),
        ])
        assert len(series.filter(network="a").filter(platform="ios")) == 1


class TestIoEdges:
    def test_iter_jsonl_bad_line(self, tmp_path):
        from repro.errors import SchemaError
        from repro.io.jsonl import iter_jsonl

        path = tmp_path / "x.jsonl"
        path.write_text('{"a": 1}\nbroken\n')
        iterator = iter_jsonl(path)
        assert next(iterator) == {"a": 1}
        with pytest.raises(SchemaError):
            next(iterator)

    def test_format_table_int_cells(self):
        from repro.io.tables import format_table

        text = format_table(["n"], [[42]])
        assert "42" in text and "42.00" not in text


class TestOcrEdges:
    def test_reading_order_row_grouping(self):
        from repro.ocr.render import PlacedToken, Screenshot

        shot = Screenshot(width=100, height=100, tokens=(
            PlacedToken("b", 50, 10), PlacedToken("a", 10, 12),
            PlacedToken("c", 10, 40),
        ))
        ordered = [t.text for t in shot.reading_order()]
        assert ordered == ["a", "b", "c"]  # same 8px row: left-to-right

    def test_extracted_report_validation(self):
        from repro.errors import ExtractionError
        from repro.ocr.fields import ExtractedReport

        with pytest.raises(ExtractionError):
            ExtractedReport(provider="ookla", download_mbps=-1,
                            upload_mbps=None, latency_ms=None,
                            confidence=0.5)


class TestCapacityEdges:
    def test_soft_min_symmetric(self):
        from repro.starlink.capacity import CapacityModel

        model = CapacityModel()
        assert model._soft_min(40, 80) == pytest.approx(
            model._soft_min(80, 40)
        )

    def test_utilisation_series_populated(self):
        from repro.starlink.capacity import CapacityModel

        utilisation = CapacityModel().utilisation()
        assert not np.isnan(utilisation.values).any()

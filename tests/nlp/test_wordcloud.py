"""Tests for word-cloud construction."""

import pytest

from repro.errors import ExtractionError
from repro.nlp.wordcloud import build_wordcloud


class TestBuildWordcloud:
    def test_counts_across_texts(self):
        cloud = build_wordcloud(["outage outage today", "another outage report"])
        assert cloud.unigram_counts["outage"] == 3
        assert cloud.n_texts == 2

    def test_stopwords_removed(self):
        cloud = build_wordcloud(["the service is down and the dish is offline"])
        assert "the" not in cloud.unigram_counts
        # Domain stopwords removed too, so event words can surface.
        assert "service" not in cloud.unigram_counts

    def test_short_words_removed(self):
        cloud = build_wordcloud(["it is ok up we go offline"])
        assert "ok" not in cloud.unigram_counts
        assert "offline" in cloud.unigram_counts

    def test_top_unigrams_ordering(self):
        cloud = build_wordcloud(["alpha alpha alpha beta beta gamma"])
        top = cloud.top_unigrams(2)
        assert top[0] == ("alpha", 3)
        assert top[1] == ("beta", 2)

    def test_rank_of(self):
        cloud = build_wordcloud(["alpha alpha beta outage"])
        assert cloud.rank_of("alpha") == 1
        assert cloud.rank_of("outage") in (2, 3)

    def test_rank_of_missing_raises(self):
        cloud = build_wordcloud(["alpha"])
        with pytest.raises(ExtractionError):
            cloud.rank_of("zeta")

    def test_bigram_counts(self):
        cloud = build_wordcloud(["roaming enabled roaming enabled"])
        assert cloud.bigram_counts["roaming enabled"] == 2

    def test_extra_stopwords(self):
        cloud = build_wordcloud(["outage outage chimney"],
                                extra_stopwords=["outage"])
        assert "outage" not in cloud.unigram_counts
        assert "chimney" in cloud.unigram_counts

    def test_top_k_rejects_zero(self):
        cloud = build_wordcloud(["alpha"])
        with pytest.raises(ExtractionError):
            cloud.top_unigrams(0)

    def test_empty_corpus(self):
        cloud = build_wordcloud([])
        assert cloud.n_texts == 0
        assert cloud.unigram_counts == {}

"""Tests for the emerging-topic miner."""

import datetime as dt

import pytest

from repro.errors import AnalysisError
from repro.nlp.trends import TrendMiner

START = dt.date(2022, 1, 1)


def records_with_breakout(term="roaming", breakout_day=40, span=80,
                          base_weight=5.0, burst_weight=40.0):
    """Background chatter plus a sudden popular topic."""
    records = []
    for offset in range(span):
        day = START + dt.timedelta(days=offset)
        records.append((day, "question about mounting and cables", base_weight))
        if offset >= breakout_day:
            records.append(
                (day, f"the {term} feature is working great", burst_weight)
            )
    return records


class TestTrendMiner:
    def test_detects_breakout_near_onset(self):
        miner = TrendMiner(min_window_weight=30)
        topics = miner.mine(records_with_breakout(), terms_of_interest=["roaming"])
        assert len(topics) == 1
        detected = topics[0].first_detected
        onset = START + dt.timedelta(days=40)
        assert onset <= detected <= onset + dt.timedelta(days=7)

    def test_no_breakout_no_detection(self):
        miner = TrendMiner(min_window_weight=30)
        records = [
            (START + dt.timedelta(days=i), "mounting question", 5.0)
            for i in range(60)
        ]
        assert miner.mine(records, terms_of_interest=["roaming"]) == []

    def test_steady_topic_not_flagged(self):
        """A term that was always popular has a baseline — no breakout."""
        miner = TrendMiner(min_window_weight=30, ratio_threshold=4.0)
        records = [
            (START + dt.timedelta(days=i), "roaming works fine here", 20.0)
            for i in range(90)
        ]
        topics = miner.mine(records, terms_of_interest=["roaming"])
        if topics:  # the very first window has no history; allow early flag
            assert topics[0].first_detected <= START + dt.timedelta(days=21)

    def test_popularity_weighting_matters(self):
        """The same posts with negligible popularity must not trigger."""
        miner = TrendMiner(min_window_weight=30)
        quiet = records_with_breakout(burst_weight=2.0)
        assert miner.mine(quiet, terms_of_interest=["roaming"]) == []

    def test_bigram_detection(self):
        miner = TrendMiner(min_window_weight=30)
        records = records_with_breakout(term="roaming enabled")
        topics = miner.mine(records, terms_of_interest=["roaming enabled"])
        assert topics and topics[0].term == "roaming enabled"

    def test_full_scan_includes_breakout_term(self):
        miner = TrendMiner(min_window_weight=30)
        topics = miner.mine(records_with_breakout())
        assert any(t.term == "roaming" for t in topics)

    def test_rejects_empty_records(self):
        with pytest.raises(AnalysisError):
            TrendMiner().mine([])

    def test_rejects_negative_weight(self):
        with pytest.raises(AnalysisError):
            TrendMiner().mine([(START, "text", -1.0)])

    @pytest.mark.parametrize("kwargs", [
        dict(window_days=0),
        dict(ratio_threshold=1.0),
        dict(min_window_weight=0),
    ])
    def test_rejects_invalid_config(self, kwargs):
        with pytest.raises(AnalysisError):
            TrendMiner(**kwargs)

"""Tests for the sentiment analyzer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExtractionError
from repro.nlp.lexicon import NEGATIVE, POSITIVE, VALENCES
from repro.nlp.sentiment import STRONG_THRESHOLD, SentimentAnalyzer, SentimentScores


@pytest.fixture(scope="module")
def analyzer():
    return SentimentAnalyzer()


class TestLexicon:
    def test_no_polarity_overlap(self):
        assert not set(POSITIVE) & set(NEGATIVE)

    def test_valences_bounded(self):
        assert all(-1 <= v <= 1 for v in VALENCES.values())

    def test_domain_terms_present(self):
        for word in ("outage", "disconnects", "slow", "delayed"):
            assert VALENCES[word] < 0
        for word in ("fast", "reliable", "amazing"):
            assert VALENCES[word] > 0


class TestScores:
    def test_must_sum_to_one(self):
        with pytest.raises(ExtractionError):
            SentimentScores(positive=0.5, negative=0.5, neutral=0.5)

    def test_strong_flags(self):
        s = SentimentScores(positive=0.75, negative=0.05, neutral=0.2)
        assert s.is_strong_positive and not s.is_strong_negative

    def test_polarity(self):
        s = SentimentScores(positive=0.6, negative=0.1, neutral=0.3)
        assert s.polarity == pytest.approx(0.5)


class TestAnalyzer:
    def test_empty_text_neutral(self, analyzer):
        s = analyzer.score("")
        assert s.neutral == 1.0

    def test_clearly_positive_is_strong(self, analyzer):
        s = analyzer.score(
            "Absolutely love this, amazing speeds, fantastic service, so happy!"
        )
        assert s.is_strong_positive

    def test_clearly_negative_is_strong(self, analyzer):
        s = analyzer.score(
            "Total outage again, completely unusable garbage, so frustrated."
        )
        assert s.is_strong_negative

    def test_neutral_stays_neutral(self, analyzer):
        s = analyzer.score("Mounted the dish on the roof near the chimney.")
        assert not s.is_strong_positive and not s.is_strong_negative
        assert s.neutral > 0.8

    def test_negation_flips(self, analyzer):
        positive = analyzer.score("the service is great")
        negated = analyzer.score("the service is not great")
        assert positive.polarity > 0
        assert negated.polarity < 0

    def test_negation_weaker_than_antonym(self, analyzer):
        negated = analyzer.score("not great")
        direct = analyzer.score("terrible")
        assert abs(negated.polarity) < abs(direct.polarity)

    def test_intensifier_boosts(self, analyzer):
        plain = analyzer.score("the connection is slow")
        boosted = analyzer.score("the connection is extremely slow")
        assert boosted.negative > plain.negative

    def test_dampener_reduces(self, analyzer):
        plain = analyzer.score("the connection is slow")
        damped = analyzer.score("the connection is slightly slow")
        assert damped.negative < plain.negative

    def test_exclamation_boosts(self, analyzer):
        calm = analyzer.score("this is amazing")
        excited = analyzer.score("this is amazing!!!")
        assert excited.positive > calm.positive

    def test_caps_boost(self, analyzer):
        quiet = analyzer.score("service is terrible today")
        shouty = analyzer.score("service is TERRIBLE today")
        assert shouty.negative > quiet.negative

    def test_long_unambiguous_rant_still_strong(self, analyzer):
        rant = (
            "This service has been terrible all month, constant outages "
            "and endless disconnects, the speeds are awful, support is "
            "useless, and I am beyond frustrated with the whole pathetic "
            "experience."
        )
        assert analyzer.score(rant).is_strong_negative

    def test_mixed_text_not_strong(self, analyzer):
        mixed = "The speeds are great but the outages are terrible."
        s = analyzer.score(mixed)
        assert not s.is_strong_positive and not s.is_strong_negative

    def test_rejects_bad_neutral_weight(self):
        with pytest.raises(ExtractionError):
            SentimentAnalyzer(neutral_weight=0)

    @given(st.text(max_size=400))
    @settings(max_examples=100, deadline=None)
    def test_scores_always_valid(self, text):
        s = SentimentAnalyzer().score(text)
        assert 0 <= s.positive <= 1
        assert 0 <= s.negative <= 1
        assert 0 <= s.neutral <= 1
        assert s.positive + s.negative + s.neutral == pytest.approx(1.0)

    def test_strong_threshold_is_paper_value(self):
        assert STRONG_THRESHOLD == 0.7

    def test_score_many_matches_per_text(self, analyzer):
        texts = [
            "starlink is amazing, extremely fast!!",
            "not great, constant outages 😡",
            "",
            "starlink is amazing, extremely fast!!",  # duplicate -> memo
            "SLOW and unreliable today",
        ]
        assert analyzer.score_many(texts) == [
            analyzer.score(t) for t in texts
        ]

    def test_score_many_accepts_generators(self, analyzer):
        scores = analyzer.score_many(t for t in ["good", "bad"])
        assert len(scores) == 2

    def test_emoji_carry_sentiment(self, analyzer):
        happy = analyzer.score("dishy arrived today 🚀 🎉")
        angry = analyzer.score("third outage this week 😡 🤬")
        assert happy.polarity > 0.2
        assert angry.polarity < -0.3

    def test_emoji_tokenized_individually(self):
        from repro.nlp.tokenize import tokenize

        tokens = tokenize("love it 🚀🎉")
        assert "🚀" in tokens and "🎉" in tokens

    def test_emoji_kept_out_of_wordclouds(self):
        from repro.nlp.wordcloud import build_wordcloud

        cloud = build_wordcloud(["outage outage 😡 😡 😡"])
        assert "😡" not in cloud.unigram_counts
        assert cloud.unigram_counts["outage"] == 2


class TestMemoCap:
    def test_memo_never_exceeds_cap(self):
        analyzer = SentimentAnalyzer(memo_cap=8)
        analyzer.score_many(f"distinct text number {i}" for i in range(50))
        assert analyzer.memo_size <= analyzer.memo_cap == 8

    def test_eviction_is_lru(self):
        analyzer = SentimentAnalyzer(memo_cap=2)
        analyzer.score_many(["alpha", "beta"])
        # Touch alpha so beta is the least recently used, then insert.
        analyzer.score_many(["alpha", "gamma"])
        assert analyzer.memo_size == 2
        assert "alpha" in analyzer._memo and "beta" not in analyzer._memo

    def test_scores_byte_identical_at_any_cap(self):
        texts = [f"repetitive outage report {i % 5}" for i in range(40)]
        unbounded = SentimentAnalyzer().score_many(texts)
        tiny = SentimentAnalyzer(memo_cap=1).score_many(texts)
        assert unbounded == tiny

    def test_adversarial_distinct_flood_stays_bounded(self):
        """The brigade threat: unbounded distinct texts must not grow
        the memo without bound."""
        analyzer = SentimentAnalyzer(memo_cap=16)
        analyzer.score_many(
            f"Completely unusable tonight, ticket {i}!!" for i in range(500)
        )
        assert analyzer.memo_size == 16

    def test_bad_cap_rejected(self):
        with pytest.raises(ExtractionError):
            SentimentAnalyzer(memo_cap=0)

"""Tests for tokenisation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.tokenize import bigrams, sentences, tokenize, words


class TestTokenize:
    def test_basic(self):
        assert tokenize("Starlink is fast") == ["Starlink", "is", "fast"]

    def test_contractions_kept(self):
        assert "isn't" in tokenize("it isn't working")

    def test_urls_stripped(self):
        tokens = tokenize("see https://example.com/x?y=1 for details")
        assert "see" in tokens and "details" in tokens
        assert not any("example" in t for t in tokens)

    def test_subreddit_mentions_stripped(self):
        tokens = tokenize("posted on r/Starlink by u/tuckstruck")
        assert "posted" in tokens
        assert not any("tuckstruck" in t for t in tokens)

    def test_numbers_preserved(self):
        assert "112.5" in tokenize("got 112.5 Mbps")

    def test_exclamation_bursts_are_tokens(self):
        assert "!!!" in tokenize("amazing!!!")

    def test_lowercase_option(self):
        assert tokenize("FAST Speeds", lowercase=True) == ["fast", "speeds"]

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            tokenize(42)

    @given(st.text(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_never_crashes_and_returns_strings(self, text):
        tokens = tokenize(text)
        assert all(isinstance(t, str) and t for t in tokens)


class TestWords:
    def test_lowercased_alpha_only(self):
        assert words("Got 50 Mbps TODAY!") == ["got", "mbps", "today"]


class TestSentences:
    def test_split_on_terminators(self):
        parts = sentences("It works. It is fast! Is it stable?")
        assert len(parts) == 3

    def test_empty(self):
        assert sentences("   ") == []

    def test_rejects_non_string(self):
        with pytest.raises(TypeError):
            sentences(None)


class TestBigrams:
    def test_pairs(self):
        assert bigrams(["a", "b", "c"]) == ["a b", "b c"]

    def test_short_input(self):
        assert bigrams(["only"]) == []
        assert bigrams([]) == []

"""Tests for the sentiment lexicon's structural invariants."""

from repro.nlp.lexicon import (
    INTENSIFIERS,
    NEGATIVE,
    NEGATORS,
    POSITIVE,
    VALENCES,
)


class TestLexiconStructure:
    def test_positive_values_positive(self):
        assert all(v > 0 for v in POSITIVE.values())

    def test_negative_values_negative(self):
        assert all(v < 0 for v in NEGATIVE.values())

    def test_no_word_in_both_polarities(self):
        assert not set(POSITIVE) & set(NEGATIVE)

    def test_merged_view_complete(self):
        assert set(VALENCES) == set(POSITIVE) | set(NEGATIVE)

    def test_all_lowercase_keys(self):
        for word in VALENCES:
            assert word == word.lower(), word

    def test_negators_disjoint_from_valences(self):
        """A negator must not itself carry valence — it would both flip
        and score, double-counting."""
        assert not NEGATORS & set(VALENCES)

    def test_intensifiers_disjoint_from_valences(self):
        assert not set(INTENSIFIERS) & set(VALENCES)

    def test_intensifiers_bounded(self):
        # Boosts are additive around 1.0; keep them from flipping signs.
        assert all(-0.9 < v < 0.9 for v in INTENSIFIERS.values())

    def test_reasonable_size(self):
        """Enough coverage to score ISP talk; small enough to audit."""
        assert 80 <= len(POSITIVE) <= 400
        assert 80 <= len(NEGATIVE) <= 400

    def test_outage_vocabulary_negative(self):
        from repro.nlp.keywords import OUTAGE_KEYWORDS

        covered = [
            term for term in OUTAGE_KEYWORDS.unigrams
            if term in VALENCES
        ]
        assert covered, "some outage keywords should carry valence"
        assert all(VALENCES[t] < 0 for t in covered)

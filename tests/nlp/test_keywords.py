"""Tests for keyword dictionaries."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExtractionError
from repro.nlp.keywords import OUTAGE_KEYWORDS, KeywordDictionary


class TestOutageDictionary:
    def test_matches_obvious_outage_text(self):
        assert OUTAGE_KEYWORDS.matches("Starlink is down, total outage here")

    def test_counts_multiple(self):
        count = OUTAGE_KEYWORDS.count_matches(
            "outage outage outage, everything offline"
        )
        assert count == 4

    def test_ignores_clean_text(self):
        assert not OUTAGE_KEYWORDS.matches("lovely sunset over the dish today")

    def test_phrase_consumes_tokens(self):
        """'total outage' counts once, not as phrase + unigram."""
        assert OUTAGE_KEYWORDS.count_matches("total outage") == 1

    def test_unigram_outside_phrase_still_counts(self):
        assert OUTAGE_KEYWORDS.count_matches("total outage and another outage") == 2

    def test_no_substring_false_positives(self):
        # "download" contains "down"; token matching must not fire.
        assert not OUTAGE_KEYWORDS.matches("my download finished quickly")

    def test_case_insensitive(self):
        assert OUTAGE_KEYWORDS.matches("OUTAGE in progress")

    def test_matched_terms(self):
        terms = OUTAGE_KEYWORDS.matched_terms("service is down, no signal")
        assert terms.get("down") == 1
        assert terms.get("no signal") == 1


class TestKeywordDictionary:
    def test_from_terms_lowercases(self):
        d = KeywordDictionary.from_terms("x", ["FOO", "bar baz"])
        assert "foo" in d.unigrams
        assert "bar baz" in d.phrases

    def test_rejects_empty(self):
        with pytest.raises(ExtractionError):
            KeywordDictionary.from_terms("x", [])

    def test_rejects_trigrams(self):
        with pytest.raises(ExtractionError):
            KeywordDictionary.from_terms("x", ["one two three"])

    @given(st.text(max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_count_non_negative(self, text):
        assert OUTAGE_KEYWORDS.count_matches(text) >= 0

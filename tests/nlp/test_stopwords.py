"""Tests for the stopword list."""

from repro.nlp.stopwords import STOPWORDS, is_stopword


class TestStopwords:
    def test_core_function_words_present(self):
        for word in ("the", "and", "is", "not", "with"):
            assert word in STOPWORDS

    def test_domain_words_present(self):
        """Domain ubiquities must be stop-listed so event words surface."""
        for word in ("starlink", "internet", "service", "dish"):
            assert word in STOPWORDS

    def test_signal_words_absent(self):
        """Words the cloud/trend analyses depend on must never be
        stop-listed.  ("down" IS stop-listed — it's a directional filler
        in clouds; the outage keyword matcher has its own dictionary and
        ignores stopwords entirely.)"""
        for word in ("outage", "roaming", "preorder", "delayed",
                     "speed", "email"):
            assert word not in STOPWORDS, word

    def test_keyword_matcher_immune_to_stopwords(self):
        from repro.nlp.keywords import OUTAGE_KEYWORDS

        assert OUTAGE_KEYWORDS.matches("everything is down")

    def test_is_stopword_case_insensitive(self):
        assert is_stopword("The")
        assert is_stopword("STARLINK")
        assert not is_stopword("Outage")

    def test_frozen(self):
        assert isinstance(STOPWORDS, frozenset)

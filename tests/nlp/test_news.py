"""Tests for the simulated news index."""

import datetime as dt

import pytest

from repro.errors import AnalysisError
from repro.nlp.news import NewsArticle, NewsIndex

DAY = dt.date(2022, 1, 7)


def article(date=DAY, headline="Starlink suffers global outage",
            body="Users worldwide reported no service."):
    return NewsArticle(date=date, headline=headline, body=body)


class TestNewsIndex:
    def test_search_matches_keyword_in_window(self):
        index = NewsIndex([article()])
        hits = index.search(["outage"], DAY, window_days=1)
        assert len(hits) == 1

    def test_search_misses_outside_window(self):
        index = NewsIndex([article(date=DAY - dt.timedelta(days=10))])
        assert index.search(["outage"], DAY, window_days=3) == []

    def test_search_any_keyword_semantics(self):
        index = NewsIndex([article()])
        hits = index.search(["nonsense", "outage"], DAY)
        assert hits

    def test_require_all(self):
        index = NewsIndex([article()])
        assert index.search(["outage", "starlink"], DAY, require_all=True)
        assert not index.search(["outage", "zebra"], DAY, require_all=True)

    def test_body_terms_searchable(self):
        index = NewsIndex([article()])
        assert index.search(["worldwide"], DAY)

    def test_empty_keywords_raise(self):
        index = NewsIndex([article()])
        with pytest.raises(AnalysisError):
            index.search([], DAY)

    def test_negative_window_raises(self):
        index = NewsIndex([article()])
        with pytest.raises(AnalysisError):
            index.search(["outage"], DAY, window_days=-1)

    def test_add_keeps_sorted(self):
        index = NewsIndex()
        index.add(article(date=DAY + dt.timedelta(days=5)))
        index.add(article(date=DAY))
        dates = [a.date for a in index.all_articles()]
        assert dates == sorted(dates)

    def test_len(self):
        assert len(NewsIndex([article(), article()])) == 2

"""The ε-contamination soak: contract, determinism, validation.

Small scale (120 calls, 2 corpus weeks) keeps the sweep fast; the CLI
defaults run the full grid.
"""

import pytest

from repro.errors import ConfigError
from repro.integrity import run_integrity_soak

SOAK_KW = dict(n_calls=120, mos_sample_rate=0.3, corpus_weeks=2)


@pytest.fixture(scope="module")
def report():
    return run_integrity_soak(seed=20231128, **SOAK_KW)


class TestContract:
    def test_sweep_proves_both_halves(self, report):
        assert not report.violations
        assert not report.ineffective
        assert report.exit_code == 0

    def test_naive_breaks_and_trust_holds_at_top_eps(self, report):
        top = report.rows[-1]
        assert top.eps == 0.2
        # Deviations are signed (fraud drags MOS down, spam drags
        # polarity negative); the bound is on the magnitude.
        assert abs(top.mos_naive_dev) > report.mos_bound
        assert abs(top.mos_trust_dev) <= report.mos_bound
        assert abs(top.polarity_naive_dev) > report.polarity_bound
        assert abs(top.polarity_trust_dev) <= report.polarity_bound

    def test_clean_row_flags_nothing(self, report):
        clean = report.rows[0]
        assert clean.eps == 0.0
        assert clean.n_fraud_flagged == 0
        assert clean.rating_contamination == 0.0
        assert clean.post_contamination <= 0.02
        assert clean.mos_naive_dev == 0.0

    def test_columnar_path_pinned_at_every_eps(self, report):
        assert all(row.columnar_match for row in report.rows)

    def test_boundary_leaked_nothing(self, report):
        assert sum(report.boundary_quarantined.values()) > 0
        assert report.boundary_dropped > 0
        assert "boundary leak" not in " ".join(report.violations)


class TestDeterminism:
    def test_counters_byte_identical_across_runs(self, report):
        import json

        again = run_integrity_soak(seed=20231128, **SOAK_KW)
        assert json.dumps(
            report.counters_dict(), sort_keys=True
        ) == json.dumps(again.counters_dict(), sort_keys=True)

    def test_different_seed_different_counters(self, report):
        other = run_integrity_soak(seed=7, **SOAK_KW)
        assert other.counters_dict() != report.counters_dict()


class TestRendering:
    def test_table_has_one_row_per_eps(self, report):
        lines = report.table().splitlines()
        data_lines = [l for l in lines if l.lstrip()[:1] in "0."]
        assert len(data_lines) >= len(report.eps_grid)

    def test_summary_states_the_verdict(self, report):
        assert "OK" in report.summary()


class TestValidation:
    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigError):
            run_integrity_soak(eps_grid=(), **SOAK_KW)

    def test_out_of_range_eps_rejected(self):
        with pytest.raises(ConfigError):
            run_integrity_soak(eps_grid=(0.0, 0.7), **SOAK_KW)

    def test_unsorted_grid_rejected(self):
        with pytest.raises(ConfigError):
            run_integrity_soak(eps_grid=(0.2, 0.1), **SOAK_KW)

"""Trust scoring: flags the planted adversaries, spares the organic."""

import numpy as np
import pytest

from repro.integrity import (
    contamination_estimate,
    fraud_rating_mask,
    post_weights,
    rated_weights,
    score_authors,
    score_raters,
    score_signal_units,
    text_fingerprint,
)
from repro.resilience.faults import DataFaultSpec, FaultPlan


@pytest.fixture(scope="module")
def fraud_calls(small_dataset_module):
    injector = FaultPlan(seed=7).data_faults(
        "trust-fraud", DataFaultSpec(fraud_fraction=0.15, fraud_rating=1)
    )
    return injector.contaminate_calls(small_dataset_module)


@pytest.fixture(scope="module")
def brigade_corpus(small_corpus_module):
    injector = FaultPlan(seed=7).data_faults(
        "trust-brigade", DataFaultSpec(brigade_fraction=0.1)
    )
    return injector.contaminate_corpus(small_corpus_module)


@pytest.fixture(scope="module")
def small_dataset_module():
    from repro.telemetry import CallDatasetGenerator, GeneratorConfig

    return CallDatasetGenerator(
        GeneratorConfig(n_calls=150, seed=42, mos_sample_rate=0.3)
    ).generate()


@pytest.fixture(scope="module")
def small_corpus_module():
    import datetime as dt

    from repro.social import CorpusConfig, CorpusGenerator

    return CorpusGenerator(CorpusConfig(
        seed=42,
        span_start=dt.date(2022, 1, 1),
        span_end=dt.date(2022, 2, 28),
    )).generate()


class TestFingerprint:
    def test_normalises_whitespace_and_case(self):
        assert text_fingerprint("Slow  Wifi\ttoday") == text_fingerprint(
            "slow wifi today"
        )

    def test_distinct_texts_differ(self):
        assert text_fingerprint("great call") != text_fingerprint("bad call")


class TestRaterScoring:
    def test_clean_dataset_flags_nobody(self, small_dataset_module):
        scores = score_raters(small_dataset_module)
        assert all(s.trust == 1.0 for s in scores.values())
        assert contamination_estimate(scores) == 0.0

    def test_fraud_cohort_flagged(self, fraud_calls):
        scores = score_raters(fraud_calls.dataset)
        flagged = {u for u, s in scores.items() if s.trust == 0.0}
        assert flagged
        # Every flagged unit is a planted shill, and the planted
        # cohort's high-volume members are caught.
        assert flagged <= set(fraud_calls.fraud_users)
        for unit in flagged:
            assert scores[unit].flags == ("rating_fraud",)
        assert contamination_estimate(scores) > 0.0

    def test_scores_are_unit_sorted(self, fraud_calls):
        units = list(score_raters(fraud_calls.dataset))
        assert units == sorted(units)


class TestAuthorScoring:
    def test_clean_corpus_low_false_positive_rate(self, small_corpus_module):
        scores = score_authors(small_corpus_module.posts())
        assert contamination_estimate(scores) <= 0.02

    def test_viral_template_is_not_a_ring(self):
        """Hundreds of organic authors reposting a template once or
        twice must not trip the concentration-gated ring test."""
        import datetime as dt
        from types import SimpleNamespace

        day = dt.date(2022, 5, 1)
        posts = [
            SimpleNamespace(
                author=f"organic-{i:03d}", date=day,
                full_text="Is Starlink down right now?",
            )
            for i in range(200)
        ] + [
            SimpleNamespace(
                author=f"organic-{i:03d}", date=day + dt.timedelta(days=1),
                full_text="Is Starlink down right now?",
            )
            for i in range(40)  # some repost it once more
        ]
        scores = score_authors(posts)
        assert all(
            "template_ring" not in s.flags for s in scores.values()
        )

    def test_ring_authors_flagged(self, brigade_corpus):
        scores = score_authors(brigade_corpus.corpus.posts())
        flagged = {a for a, s in scores.items() if s.trust == 0.0}
        assert set(brigade_corpus.ring_authors) <= flagged

    def test_ring_flag_names_the_ring(self, brigade_corpus):
        scores = score_authors(brigade_corpus.corpus.posts())
        for author in brigade_corpus.ring_authors:
            assert "template_ring" in scores[author].flags


class TestWeights:
    def test_rated_weights_align_with_rated_sessions(
        self, fraud_calls,
    ):
        scores = score_raters(fraud_calls.dataset)
        weights = rated_weights(fraud_calls.dataset, scores)
        n_rated = sum(
            1 for p in fraud_calls.dataset.participants()
            if p.rating is not None
        )
        assert weights.shape == (n_rated,)
        assert np.all((weights >= 0) & (weights <= 1))
        assert np.any(weights == 0.0)

    def test_post_weights_zero_for_ring(self, brigade_corpus):
        scores = score_authors(brigade_corpus.corpus.posts())
        weights = post_weights(brigade_corpus.corpus, scores)
        posts = list(brigade_corpus.corpus.posts())
        ring = set(brigade_corpus.ring_authors)
        for post, w in zip(posts, weights):
            if post.author in ring:
                assert w == 0.0

    def test_unknown_units_default_to_full_trust(self, small_corpus_module):
        weights = post_weights(small_corpus_module, {})
        assert np.all(weights == 1.0)


class TestSignalUnits:
    def test_flags_constant_extreme_rater(self):
        from repro.core.signals import Signal
        import datetime as dt

        base = dt.datetime(2022, 1, 1)
        signals = [
            Signal(
                kind="explicit", timestamp=base + dt.timedelta(hours=i),
                network="starlink", metric="rating", value=1.0,
                attrs=(("user", "shill"),),
            )
            for i in range(6)
        ] + [
            Signal(
                kind="explicit",
                timestamp=base + dt.timedelta(days=2 + i),
                network="starlink", metric="rating", value=float(3 + i % 3),
                attrs=(("user", f"organic-{i}"),),
            )
            for i in range(6)
        ]
        scores = score_signal_units(signals)
        assert scores["shill"].trust == 0.0
        assert "rating_fraud" in scores["shill"].flags
        assert all(
            scores[f"organic-{i}"].trust == 1.0 for i in range(6)
        )

    def test_signals_without_user_attr_skipped(self):
        from repro.core.signals import Signal
        import datetime as dt

        signals = [Signal(
            kind="implicit", timestamp=dt.datetime(2022, 1, 1),
            network="starlink", metric="latency_ms", value=40.0,
        )]
        assert score_signal_units(signals) == {}


class TestPredictionFilter:
    """fit_columns(exclude=...) keeps fraud out of the trainer."""

    def test_none_and_all_false_are_byte_identical(self, fraud_calls):
        from repro.perf.columnar import ParticipantColumns
        from repro.prediction import ColumnarMosPredictor

        cols = ParticipantColumns.from_dataset(fraud_calls.dataset)
        plain = ColumnarMosPredictor().fit_columns(cols)
        masked = ColumnarMosPredictor().fit_columns(
            cols, exclude=np.zeros(len(cols), dtype=bool)
        )
        for name, w in plain.weights().items():
            assert np.float64(w).tobytes() == np.float64(
                masked.weights()[name]
            ).tobytes()

    def test_fraud_mask_changes_the_fit(self, fraud_calls):
        from repro.perf.columnar import ParticipantColumns
        from repro.prediction import ColumnarMosPredictor

        cols = ParticipantColumns.from_dataset(fraud_calls.dataset)
        scores = score_raters(fraud_calls.dataset)
        mask = fraud_rating_mask(cols, scores)
        assert mask.any()
        plain = ColumnarMosPredictor().fit_columns(cols)
        filtered = ColumnarMosPredictor().fit_columns(cols, exclude=mask)
        assert plain.weights() != filtered.weights()

    def test_filtered_fit_matches_clean_reference_better(
        self, small_dataset_module, fraud_calls,
    ):
        """Dropping fraud rows pulls the intercept back toward clean."""
        from repro.perf.columnar import ParticipantColumns
        from repro.prediction import ColumnarMosPredictor

        clean_cols = ParticipantColumns.from_dataset(small_dataset_module)
        tainted_cols = ParticipantColumns.from_dataset(fraud_calls.dataset)
        scores = score_raters(fraud_calls.dataset)
        mask = fraud_rating_mask(tainted_cols, scores)

        clean_mean = float(np.nanmean(
            np.asarray(clean_cols.rating, dtype=float)
        ))
        naive_pred = ColumnarMosPredictor().fit_columns(tainted_cols)
        safe_pred = ColumnarMosPredictor().fit_columns(
            tainted_cols, exclude=mask
        )
        naive_mean = float(np.mean(naive_pred.predict_columns(clean_cols)))
        safe_mean = float(np.mean(safe_pred.predict_columns(clean_cols)))
        assert abs(safe_mean - clean_mean) < abs(naive_mean - clean_mean)

    def test_misshapen_mask_rejected(self, fraud_calls):
        from repro.errors import AnalysisError
        from repro.perf.columnar import ParticipantColumns
        from repro.prediction import ColumnarMosPredictor

        cols = ParticipantColumns.from_dataset(fraud_calls.dataset)
        with pytest.raises(AnalysisError):
            ColumnarMosPredictor().fit_columns(
                cols, exclude=np.zeros(3, dtype=bool)
            )

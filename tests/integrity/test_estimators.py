"""Property-style breakdown-point suite for the robust estimators.

For each documented estimator, contamination *below* its breakdown
point must move the estimate only boundedly, while the naive mean — at
breakdown point 0 — is dragged arbitrarily far by the same attack.
Seeds 101/202/303, same discipline as the columnar equality pins.
"""

import numpy as np
import pytest

from repro.core.stats import resolve_statistic
from repro.integrity import (
    ESTIMATORS,
    median_of_means,
    robust_mos,
    robust_mos_columns,
    robust_polarity,
    robust_polarity_columns,
    trimmed_mean,
    winsorized_mean,
)
from repro.rng import derive

SEEDS = (101, 202, 303)

OUTLIER = 1e6  # an adversarial value far outside any organic range


def _clean(seed, n=200):
    return derive(seed, "integrity", "breakdown").normal(3.8, 0.4, n)


@pytest.mark.parametrize("seed", SEEDS)
class TestBreakdownPoints:
    def test_mean_breaks_with_one_sample(self, seed):
        values = _clean(seed)
        clean = float(np.mean(values))
        attacked = np.append(values, OUTLIER)
        assert abs(float(np.mean(attacked)) - clean) > 100.0

    @pytest.mark.parametrize("estimator", [trimmed_mean, winsorized_mean])
    def test_trim_family_holds_below_trim_fraction(self, seed, estimator):
        values = _clean(seed)
        clean = estimator(values, trim=0.1)
        # Contaminate strictly below the trim fraction (8% < 10%).
        n_bad = int(0.08 * len(values))
        attacked = np.append(values, np.full(n_bad, OUTLIER))
        assert abs(estimator(attacked, trim=0.1) - clean) < 0.5

    @pytest.mark.parametrize("estimator", [trimmed_mean, winsorized_mean])
    def test_trim_family_breaks_above_trim_fraction(self, seed, estimator):
        values = _clean(seed)
        clean = estimator(values, trim=0.1)
        # 25% contamination overwhelms a 10% trim.
        n_bad = int(0.25 * len(values))
        attacked = np.append(values, np.full(n_bad, OUTLIER))
        assert abs(estimator(attacked, trim=0.1) - clean) > 100.0

    def test_median_of_means_survives_minority_blocks(self, seed):
        values = _clean(seed, n=100)
        clean = median_of_means(values, n_blocks=5)
        # Corrupt 2 of 5 contiguous blocks: fewer than ceil(5/2) = 3.
        attacked = np.array(values)
        attacked[:40] = OUTLIER
        poisoned = median_of_means(attacked, n_blocks=5)
        assert abs(poisoned - clean) < 1.0

    def test_median_of_means_breaks_at_majority_blocks(self, seed):
        values = _clean(seed, n=100)
        clean = median_of_means(values, n_blocks=5)
        attacked = np.array(values)
        attacked[:60] = OUTLIER  # 3 of 5 blocks: the median block lies
        assert abs(median_of_means(attacked, n_blocks=5) - clean) > 100.0


class TestEstimatorTable:
    def test_every_documented_estimator_resolves(self):
        for info in ESTIMATORS:
            reducer = resolve_statistic(info.statistic)
            assert callable(reducer)
            assert np.isfinite(reducer(np.array([1.0, 2.0, 3.0])))

    def test_table_covers_the_robust_family(self):
        names = {info.statistic for info in ESTIMATORS}
        assert {"mean", "trimmed_mean", "winsorized_mean",
                "median_of_means", "median"} <= names

    def test_bin_statistic_accepts_robust_names(self):
        from repro.core.stats import bin_statistic

        rng = derive(101, "integrity", "bins")
        key = rng.uniform(0, 10, 300)
        values = rng.normal(3.8, 0.4, 300)
        robust = bin_statistic(key, values, [0, 5, 10],
                               statistic="trimmed_mean")
        naive = bin_statistic(key, values, [0, 5, 10], statistic="mean")
        assert len(robust.stat) == len(naive.stat) == 2
        assert np.all(np.isfinite(robust.stat))


class TestRecordColumnarEquality:
    """The soak pins these per ε; here they are pinned in isolation."""

    @pytest.mark.parametrize("statistic",
                             ["mean", "trimmed_mean", "median_of_means"])
    def test_mos_paths_agree_exactly(self, small_dataset, statistic):
        from repro.perf.columnar import ParticipantColumns

        cols = ParticipantColumns.from_dataset(small_dataset)
        assert robust_mos(small_dataset, statistic) == robust_mos_columns(
            cols, statistic
        )

    def test_polarity_paths_agree_exactly(self, small_corpus):
        from repro.nlp.sentiment import SentimentAnalyzer
        from repro.perf.columnar import CorpusColumns

        analyzer = SentimentAnalyzer()
        cols = CorpusColumns.from_corpus(small_corpus)
        assert robust_polarity(
            small_corpus, analyzer, "trimmed_mean"
        ) == robust_polarity_columns(cols, analyzer, "trimmed_mean")

    def test_weighted_paths_agree_exactly(self, small_dataset):
        from repro.integrity import rated_weights, rated_weights_columns, score_raters
        from repro.perf.columnar import ParticipantColumns

        scores = score_raters(small_dataset)
        cols = ParticipantColumns.from_dataset(small_dataset)
        assert robust_mos(
            small_dataset, "mean",
            weights=rated_weights(small_dataset, scores),
        ) == robust_mos_columns(
            cols, "mean", weights=rated_weights_columns(cols, scores)
        )


class TestWeightPrefilter:
    def test_zero_weights_drop_samples(self):
        values = np.array([1.0, 5.0, 5.0, 5.0])
        from repro.integrity.estimators import _apply_weights

        kept = _apply_weights(values, np.array([0.0, 1.0, 1.0, 1.0]))
        assert kept.tolist() == [5.0, 5.0, 5.0]

    def test_misaligned_weights_rejected(self):
        from repro.errors import AnalysisError
        from repro.integrity.estimators import _apply_weights

        with pytest.raises(AnalysisError):
            _apply_weights(np.array([1.0, 2.0]), np.array([1.0]))

    def test_all_zero_weights_rejected(self):
        from repro.errors import AnalysisError
        from repro.integrity.estimators import _apply_weights

        with pytest.raises(AnalysisError):
            _apply_weights(np.array([1.0]), np.array([0.0]))

    def test_negative_weights_rejected(self):
        from repro.errors import AnalysisError
        from repro.integrity.estimators import _apply_weights

        with pytest.raises(AnalysisError):
            _apply_weights(np.array([1.0]), np.array([-0.5]))


class TestEngagementThreading:
    def test_mos_by_engagement_accepts_robust_statistic(self, small_dataset):
        from repro.engagement.mos_link import mos_by_engagement

        robust = mos_by_engagement(
            small_dataset.participants(), statistic="trimmed_mean"
        )
        naive = mos_by_engagement(small_dataset.participants())
        assert robust.n_rated == naive.n_rated
        for name, curve in robust.curves.items():
            # Bins under min_bin_count (default 5) are masked to NaN.
            kept = curve.stat[np.asarray(curve.counts) >= 5]
            assert np.all(np.isfinite(kept)), name

"""Data-fault injectors: seeded, pure, ground-truthed.

The soak's byte-identity guarantee rests on these properties — same
plan seed means identical contaminated artifacts, and the clean input
is never mutated.
"""

import datetime as dt

import pytest

from repro.errors import ConfigError
from repro.resilience.faults import (
    BRIGADE_TEMPLATES,
    DataFaultSpec,
    FaultPlan,
)


@pytest.fixture(scope="module")
def clean_dataset():
    from repro.telemetry import CallDatasetGenerator, GeneratorConfig

    return CallDatasetGenerator(
        GeneratorConfig(n_calls=120, seed=42, mos_sample_rate=0.3)
    ).generate()


@pytest.fixture(scope="module")
def clean_corpus():
    from repro.social import CorpusConfig, CorpusGenerator

    return CorpusGenerator(CorpusConfig(
        seed=42,
        span_start=dt.date(2022, 1, 1),
        span_end=dt.date(2022, 1, 28),
    )).generate()


def _brigade(seed, corpus, fraction=0.1):
    injector = FaultPlan(seed=seed).data_faults(
        "faults-test", DataFaultSpec(brigade_fraction=fraction)
    )
    return injector.contaminate_corpus(corpus)


def _fraud(seed, dataset, fraction=0.15):
    injector = FaultPlan(seed=seed).data_faults(
        "faults-test",
        DataFaultSpec(fraud_fraction=fraction, fraud_rating=1),
    )
    return injector.contaminate_calls(dataset)


class TestDeterminism:
    def test_same_seed_same_brigade(self, clean_corpus):
        a = _brigade(11, clean_corpus)
        b = _brigade(11, clean_corpus)
        assert a.injected_post_ids == b.injected_post_ids
        assert a.ring_authors == b.ring_authors
        assert [
            (p.post_id, p.created, p.author, p.full_text)
            for p in a.corpus.posts()
        ] == [
            (p.post_id, p.created, p.author, p.full_text)
            for p in b.corpus.posts()
        ]

    def test_different_seed_different_brigade(self, clean_corpus):
        a = _brigade(11, clean_corpus)
        b = _brigade(12, clean_corpus)
        assert [p.created for p in a.corpus.posts()] != [
            p.created for p in b.corpus.posts()
        ]

    def test_same_seed_same_fraud(self, clean_dataset):
        a = _fraud(11, clean_dataset)
        b = _fraud(11, clean_dataset)
        assert a.fraud_sessions == b.fraud_sessions
        assert a.drifted_sessions == b.drifted_sessions


class TestPurity:
    def test_corpus_input_not_mutated(self, clean_corpus):
        before = [(p.post_id, p.author) for p in clean_corpus.posts()]
        _brigade(11, clean_corpus)
        after = [(p.post_id, p.author) for p in clean_corpus.posts()]
        assert before == after

    def test_dataset_input_not_mutated(self, clean_dataset):
        before = [
            (p.user_id, p.rating) for p in clean_dataset.participants()
        ]
        _fraud(11, clean_dataset)
        after = [
            (p.user_id, p.rating) for p in clean_dataset.participants()
        ]
        assert before == after


class TestBrigadeGroundTruth:
    def test_injection_count_matches_fraction(self, clean_corpus):
        out = _brigade(11, clean_corpus, fraction=0.1)
        assert out.n_injected == round(0.1 * len(clean_corpus))
        assert len(out.corpus) == len(clean_corpus) + out.n_injected

    def test_ring_authors_wrote_every_injected_post(self, clean_corpus):
        out = _brigade(11, clean_corpus)
        injected = set(out.injected_post_ids)
        ring = set(out.ring_authors)
        by_id = {p.post_id: p for p in out.corpus.posts()}
        for post_id in injected:
            assert by_id[post_id].author in ring

    def test_injected_posts_cycle_templates(self, clean_corpus):
        out = _brigade(11, clean_corpus)
        templates = {text for _, text in BRIGADE_TEMPLATES}
        by_id = {p.post_id: p for p in out.corpus.posts()}
        for post_id in out.injected_post_ids:
            assert by_id[post_id].text in templates

    def test_zero_fraction_injects_nothing(self, clean_corpus):
        out = _brigade(11, clean_corpus, fraction=0.0)
        assert out.n_injected == 0
        assert out.ring_authors == ()
        assert len(out.corpus) == len(clean_corpus)


class TestFraudGroundTruth:
    def test_fraud_sessions_have_the_planted_rating(self, clean_dataset):
        out = _fraud(11, clean_dataset)
        assert out.n_fraud > 0
        by_user = {}
        for p in out.dataset.participants():
            by_user.setdefault(p.user_id, []).append(p.rating)
        for _, user in out.fraud_sessions:
            assert user in set(out.fraud_users)
            assert all(r == 1 for r in by_user[user])

    def test_drift_biases_the_metric(self, clean_dataset):
        injector = FaultPlan(seed=11).data_faults(
            "faults-test",
            DataFaultSpec(
                drift_fraction=0.3, drift_metric="latency_ms",
                drift_bias=40.0,
            ),
        )
        out = injector.contaminate_calls(clean_dataset)
        assert out.n_drifted > 0
        clean = {
            (c.call_id, p.user_id): p
            for c in clean_dataset for p in c.participants
        }
        drifted = set(out.drifted_sessions)
        for call in out.dataset:
            for p in call.participants:
                if (call.call_id, p.user_id) in drifted:
                    ref = clean[(call.call_id, p.user_id)]
                    if "latency_ms" in ref.network:
                        for stat, value in ref.network["latency_ms"].items():
                            assert p.network["latency_ms"][stat] == (
                                value + 40.0
                            )


class TestStreamMangling:
    def _records(self, n=200):
        return [
            {
                "event_time_s": float(i), "source": "telemetry",
                "metric": "latency_ms", "value": 40.0 + i % 5,
                "key": f"u{i % 7}",
            }
            for i in range(n)
        ]

    def test_counts_add_up(self):
        injector = FaultPlan(seed=11).data_faults(
            "faults-test",
            DataFaultSpec(malform_rate=0.1, drop_rate=0.05),
        )
        raw = self._records()
        out = injector.mangle_stream(raw)
        assert len(out.records) == len(raw) - out.dropped
        assert out.malformed > 0 and out.dropped > 0

    def test_mangled_records_fail_validation(self):
        from repro.integrity import parse_stream_dicts

        injector = FaultPlan(seed=11).data_faults(
            "faults-test", DataFaultSpec(malform_rate=0.2)
        )
        out = injector.mangle_stream(self._records())
        boundary = parse_stream_dicts(out.records)
        assert boundary.n_quarantined == out.malformed
        assert len(boundary.records) == len(out.records) - out.malformed

    def test_deterministic_per_seed(self):
        spec = DataFaultSpec(malform_rate=0.1, drop_rate=0.05)
        raw = self._records()
        a = FaultPlan(seed=11).data_faults("f", spec).mangle_stream(raw)
        b = FaultPlan(seed=11).data_faults("f", spec).mangle_stream(raw)
        assert a.records == b.records
        assert (a.dropped, a.malformed) == (b.dropped, b.malformed)


class TestSpecValidation:
    def test_fractions_must_be_probabilities(self):
        with pytest.raises(ConfigError):
            DataFaultSpec(brigade_fraction=1.5)
        with pytest.raises(ConfigError):
            DataFaultSpec(fraud_fraction=-0.1)

    def test_drop_plus_malform_bounded(self):
        with pytest.raises(ConfigError):
            DataFaultSpec(malform_rate=0.7, drop_rate=0.6)

    def test_fraud_rating_is_a_star_value(self):
        with pytest.raises(ConfigError):
            DataFaultSpec(fraud_rating=0)
        with pytest.raises(ConfigError):
            DataFaultSpec(fraud_rating=6)

"""IntegritySection downgrade rules and rendering."""

from repro.integrity import IntegritySection, build_section


def _section(n_flagged=0, contamination=0.0, naive=3.8, robust=3.8):
    return build_section(
        n_units=100,
        n_flagged=n_flagged,
        contamination=contamination,
        naive_value=naive,
        robust_value=robust,
        statistic="trimmed_mean",
        flags=("rating_fraud",) if n_flagged else (),
    )


class TestDowngradeRules:
    def test_clean_agreement_stays_intact(self):
        assert not _section().downgraded

    def test_flagged_plus_divergence_downgrades(self):
        section = _section(n_flagged=5, naive=2.0, robust=3.8)
        assert section.downgraded

    def test_divergence_alone_never_downgrades(self):
        """Robust estimators legitimately disagree on skewed clean data."""
        section = _section(n_flagged=0, naive=2.0, robust=3.8)
        assert section.divergence > 0.05
        assert not section.downgraded

    def test_flags_without_divergence_stay_intact(self):
        section = _section(n_flagged=2, naive=3.81, robust=3.8)
        assert not section.downgraded

    def test_contamination_alone_downgrades(self):
        section = _section(contamination=0.15)
        assert section.downgraded

    def test_contamination_at_threshold_stays_intact(self):
        assert not _section(contamination=0.10).downgraded


class TestDivergence:
    def test_relative_to_robust_value(self):
        section = _section(naive=4.18, robust=3.8)
        assert abs(section.divergence - 0.1) < 1e-9

    def test_near_zero_robust_does_not_explode(self):
        section = _section(naive=0.001, robust=0.0)
        assert section.divergence < float("inf")


class TestRendering:
    def test_table_lists_every_row(self):
        table = _section(n_flagged=5, naive=2.0, robust=3.8).table()
        for needle in ("contributors", "flagged", "contamination",
                       "naive mean", "robust (trimmed_mean)",
                       "divergence", "downgraded", "rating_fraud"):
            assert needle in table

    def test_summary_states_the_verdict(self):
        assert "DOWNGRADED" in _section(
            n_flagged=5, naive=2.0, robust=3.8
        ).summary()
        assert "[integrity] ok" in _section().summary()

    def test_section_is_frozen(self):
        import dataclasses

        section = _section()
        assert isinstance(section, IntegritySection)
        try:
            section.n_units = 1
        except dataclasses.FrozenInstanceError:
            return
        raise AssertionError("IntegritySection must be frozen")

"""OnlineTrustGate and the stream-boundary parser."""

import pytest

from repro.errors import ConfigError
from repro.integrity import OnlineTrustGate, parse_stream_dicts
from repro.integrity.online import BOUNDARY_REASONS
from repro.streaming.records import StreamRecord


def _record(t, source="telemetry", metric="latency_ms", value=40.0,
            key="u1"):
    return StreamRecord(
        event_time_s=t, source=source, metric=metric, value=value, key=key
    )


class TestBurst:
    def test_flood_quarantined_past_burst_limit(self):
        gate = OnlineTrustGate(window_s=60.0, burst_limit=5,
                               repeat_limit=100)
        verdicts = [
            gate.observe(_record(i * 0.1, value=float(i)))
            for i in range(10)
        ]
        # First burst_limit arrivals pass; everything past it inside
        # the window is quarantined.
        assert verdicts == [False] * 5 + [True] * 5
        assert gate.quarantined == 5
        assert gate.observed == 10

    def test_window_expiry_resets_the_count(self):
        gate = OnlineTrustGate(window_s=10.0, burst_limit=3,
                               repeat_limit=100)
        for i in range(3):
            assert not gate.observe(_record(float(i), value=float(i)))
        # Far enough in the future that the old arrivals left the window.
        assert not gate.observe(_record(100.0, value=99.0))

    def test_keys_are_independent(self):
        gate = OnlineTrustGate(window_s=60.0, burst_limit=2,
                               repeat_limit=100)
        for i in range(2):
            gate.observe(_record(float(i), key="flood", value=float(i)))
        assert gate.observe(_record(2.0, key="flood", value=2.0))
        assert not gate.observe(_record(2.0, key="organic", value=2.0))


class TestRepetition:
    def test_identical_payload_run_quarantined(self):
        gate = OnlineTrustGate(burst_limit=1000, repeat_limit=3)
        verdicts = [
            gate.observe(_record(float(i), value=999.0))
            for i in range(5)
        ]
        assert verdicts == [False, False, False, True, True]

    def test_varying_payload_resets_the_run(self):
        gate = OnlineTrustGate(burst_limit=1000, repeat_limit=3)
        for i in range(20):
            assert not gate.observe(
                _record(float(i), value=float(i % 2))
            )


class TestSuspectWindow:
    def test_burst_active_after_enough_quarantines(self):
        gate = OnlineTrustGate(
            burst_limit=1, repeat_limit=100,
            suspect_window_s=50.0, suspect_min_quarantined=3,
        )
        for i in range(10):
            gate.observe(_record(float(i), value=float(i)))
        assert gate.burst_active(10.0)
        # Far past the suspect window nothing recent is quarantined.
        for i in range(3):
            gate.observe(
                _record(200.0 + i, key="other", value=float(i))
            )
        assert not gate.burst_active(200.0)

    def test_quiet_gate_never_suspect(self):
        gate = OnlineTrustGate()
        for i in range(5):
            gate.observe(_record(float(i * 10), value=float(i)))
        assert not gate.burst_active(50.0)


class TestCheckpoint:
    def test_state_roundtrip_is_byte_identical(self):
        gate = OnlineTrustGate(burst_limit=5, repeat_limit=3)
        tail = [
            _record(10.0 + i * 0.1, value=float(i % 2), key=f"k{i % 3}")
            for i in range(30)
        ]
        for r in tail[:15]:
            gate.observe(r)
        resumed = OnlineTrustGate(burst_limit=5, repeat_limit=3)
        resumed.load_state(gate.state_dict())
        straight = [gate.observe(r) for r in tail[15:]]
        replayed = [resumed.observe(r) for r in tail[15:]]
        assert straight == replayed
        assert gate.state_dict() == resumed.state_dict()

    def test_load_tolerates_empty_state(self):
        gate = OnlineTrustGate()
        gate.load_state({})
        assert gate.observed == 0 and gate.quarantined == 0


class TestLru:
    def test_keys_evicted_beyond_max(self):
        gate = OnlineTrustGate(max_keys=4, burst_limit=1000,
                               repeat_limit=1000)
        for i in range(10):
            gate.observe(_record(float(i), key=f"k{i}", value=float(i)))
        assert len(gate.state_dict()["keys"]) == 4
        # The survivors are the most recently observed keys.
        kept = [entry[0] for entry in gate.state_dict()["keys"]]
        assert kept == [f"telemetry/k{i}" for i in (6, 7, 8, 9)]


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"window_s": 0.0},
        {"suspect_window_s": -1.0},
        {"burst_limit": 0},
        {"repeat_limit": 0},
        {"max_keys": 0},
        {"suspect_min_quarantined": 0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            OnlineTrustGate(**kwargs)


class TestBoundaryParser:
    def _good(self, t=1.0):
        return {
            "event_time_s": t, "source": "telemetry",
            "metric": "latency_ms", "value": 40.0, "key": "u1",
        }

    def test_clean_dicts_all_parse(self):
        report = parse_stream_dicts([self._good(float(i)) for i in range(5)])
        assert len(report.records) == 5
        assert report.n_quarantined == 0

    def test_reason_buckets(self):
        missing = self._good()
        missing.pop("value")
        bad_value = dict(self._good(), value="not-a-number")
        bad_time = dict(self._good(), event_time_s=-5.0)
        no_metric = dict(self._good())
        no_metric.pop("metric")
        report = parse_stream_dicts(
            [self._good(), missing, bad_value, bad_time, no_metric]
        )
        assert len(report.records) == 1
        assert report.quarantined["missing_field"] == 2
        assert report.quarantined["bad_value"] == 1
        assert report.quarantined["bad_event_time"] == 1
        assert report.n_quarantined == 4

    def test_every_bucket_is_a_documented_reason(self):
        report = parse_stream_dicts([])
        assert set(report.quarantined) == set(BOUNDARY_REASONS)

    def test_summary_names_the_counts(self):
        bad = dict(self._good(), value=None)
        report = parse_stream_dicts([self._good(), bad])
        assert "parsed=1" in report.summary()
        assert "quarantined=1" in report.summary()

"""Shared fixtures.

The expensive artefacts (a call dataset, a social corpus) are generated
once per session at reduced scale; individual tests that need different
parameters build their own small instances.
"""

from __future__ import annotations

import datetime as dt

import pytest

from repro.rng import derive
from repro.social import CorpusConfig, CorpusGenerator
from repro.telemetry import CallDatasetGenerator, GeneratorConfig


@pytest.fixture(scope="session")
def rng():
    return derive(1234, "tests")


@pytest.fixture()
def fresh_rng():
    return derive(99, "tests", "fresh")


@pytest.fixture(scope="session")
def small_dataset():
    """~150 calls with oversampled ratings (for MOS analyses)."""
    config = GeneratorConfig(n_calls=150, seed=42, mos_sample_rate=0.3)
    return CallDatasetGenerator(config).generate()


@pytest.fixture(scope="session")
def small_corpus():
    """Six corpus months covering the 2022 headline outages and roaming."""
    config = CorpusConfig(
        seed=42,
        span_start=dt.date(2022, 1, 1),
        span_end=dt.date(2022, 6, 30),
        author_pool_size=800,
    )
    return CorpusGenerator(config).generate()


@pytest.fixture(scope="session")
def full_corpus():
    """The full two-year corpus (shared by the §4 pipeline tests)."""
    return CorpusGenerator(CorpusConfig(seed=42, author_pool_size=1500)).generate()

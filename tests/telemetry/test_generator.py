"""Tests for the end-to-end call-dataset generator."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.netsim.link import LinkProfile
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.generator import focal_participants, sweep_value_of
from repro.telemetry.schema import NETWORK_METRICS


class TestGeneratorConfig:
    def test_rejects_negative_calls(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(n_calls=-1)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ConfigError):
            GeneratorConfig(mos_sample_rate=1.5)


class TestGenerate:
    def test_deterministic(self):
        config = GeneratorConfig(n_calls=20, seed=77)
        a = CallDatasetGenerator(config).generate()
        b = CallDatasetGenerator(config).generate()
        assert len(a) == len(b)
        for call_a, call_b in zip(a, b):
            assert call_a.call_id == call_b.call_id
            for pa, pb in zip(call_a.participants, call_b.participants):
                assert pa.presence_pct == pb.presence_pct
                assert pa.network == pb.network

    def test_seed_changes_output(self):
        a = CallDatasetGenerator(GeneratorConfig(n_calls=10, seed=1)).generate()
        b = CallDatasetGenerator(GeneratorConfig(n_calls=10, seed=2)).generate()
        pa = next(a.participants())
        pb = next(b.participants())
        assert pa.network != pb.network

    def test_records_valid(self, small_dataset):
        for call in small_dataset:
            assert call.size >= 2
            for p in call.participants:
                assert 0 <= p.presence_pct <= 100
                assert 0 <= p.cam_on_pct <= 100
                assert 0 <= p.mic_on_pct <= 100
                for metric in NETWORK_METRICS:
                    agg = p.network[metric]
                    assert agg["median"] <= agg["p95"] * 1.0001

    def test_presence_capped_and_anchored(self, small_dataset):
        """At least one participant per call sits at the median → 100."""
        for call in list(small_dataset)[:30]:
            presences = [p.presence_pct for p in call.participants]
            assert max(presences) == pytest.approx(100.0)

    def test_ratings_sparse_but_present(self, small_dataset):
        rated = small_dataset.rated_participants()
        assert 0 < len(rated) < small_dataset.n_participants

    def test_platform_mix(self, small_dataset):
        platforms = {p.platform for p in small_dataset.participants()}
        assert "windows_pc" in platforms
        assert len(platforms) >= 3


class TestOutageInjection:
    def test_rejects_bad_severity(self):
        import datetime as dt

        with pytest.raises(ConfigError):
            GeneratorConfig(outage_days={dt.date(2022, 1, 7): 1.5})

    def test_outage_day_sessions_degraded(self):
        import datetime as dt

        from repro.telemetry.meetings import MeetingScheduler

        day = dt.date(2022, 2, 15)
        scheduler = MeetingScheduler(
            span_start=dt.date(2022, 2, 1), span_end=dt.date(2022, 2, 28)
        )
        with_outage = CallDatasetGenerator(
            GeneratorConfig(n_calls=250, seed=21, outage_days={day: 0.9}),
            scheduler=scheduler,
        ).generate()
        hit = [p for c in with_outage if c.start.date() == day
               for p in c.participants]
        spared = [p for c in with_outage if c.start.date() != day
                  for p in c.participants]
        assert hit and spared
        hit_loss = np.mean([p.metric("loss_pct") for p in hit])
        spared_loss = np.mean([p.metric("loss_pct") for p in spared])
        assert hit_loss > spared_loss + 2.0
        hit_drop = np.mean([p.dropped_early for p in hit])
        spared_drop = np.mean([p.dropped_early for p in spared])
        assert hit_drop > spared_drop + 0.15


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep_dataset(self):
        gen = CallDatasetGenerator(GeneratorConfig(n_calls=0, seed=13))
        base = LinkProfile(base_latency_ms=20, loss_rate=0.001, jitter_ms=2,
                           bandwidth_mbps=3.5)
        return gen.generate_sweep(base, "latency", [10.0, 200.0],
                                  calls_per_value=12)

    def test_sweep_value_recoverable(self, sweep_dataset):
        values = {sweep_value_of(c) for c in sweep_dataset}
        assert values == {10.0, 200.0}

    def test_focal_participants_forced(self, sweep_dataset):
        for call in sweep_dataset:
            focal = call.participants[0]
            target = sweep_value_of(call)
            # Mean latency includes queueing; must sit near the forced base.
            assert focal.metric("latency_ms") == pytest.approx(target, rel=0.6)

    def test_focal_selector(self, sweep_dataset):
        focal = focal_participants(sweep_dataset)
        assert len(focal) == len(sweep_dataset)
        assert all(p.user_id.endswith("-u000") for p in focal)

    def test_non_focal_unforced(self, sweep_dataset):
        """Other participants should NOT all share the forced profile."""
        high_lat_calls = [c for c in sweep_dataset if sweep_value_of(c) == 200.0]
        others = [
            p.metric("latency_ms")
            for c in high_lat_calls
            for p in c.participants[1:]
        ]
        assert others, "sweep calls should have non-focal participants"
        assert min(others) < 100  # somebody has a normal network

    def test_sweep_value_survives_scientific_notation(self):
        """Regression: '1e-05' formats with an embedded '-' which used
        to truncate the parsed value to '1e' and raise ConfigError."""
        gen = CallDatasetGenerator(GeneratorConfig(n_calls=0, seed=5))
        base = LinkProfile(base_latency_ms=20, loss_rate=0.001, jitter_ms=2,
                           bandwidth_mbps=3.5)
        dataset = gen.generate_sweep(
            base, "loss", [1e-05, 2.5e-06, 0.02], calls_per_value=1
        )
        assert {sweep_value_of(c) for c in dataset} == {1e-05, 2.5e-06, 0.02}

    def test_sweep_value_rejects_non_sweep_ids(self):
        gen = CallDatasetGenerator(GeneratorConfig(n_calls=2, seed=5))
        for call in gen.generate():
            with pytest.raises(ConfigError):
                sweep_value_of(call)

    def test_rejects_unknown_metric(self):
        gen = CallDatasetGenerator(GeneratorConfig(n_calls=0))
        base = LinkProfile(base_latency_ms=20, loss_rate=0.001, jitter_ms=2,
                           bandwidth_mbps=3.5)
        with pytest.raises(ConfigError):
            gen.generate_sweep(base, "rtt", [1.0], calls_per_value=1)

    def test_mitigation_ablation_changes_outcomes(self):
        base = LinkProfile(base_latency_ms=20, loss_rate=0.015, jitter_ms=2,
                           bandwidth_mbps=3.5)
        on = CallDatasetGenerator(
            GeneratorConfig(n_calls=0, seed=3, mitigation_enabled=True)
        ).generate_sweep(base, "loss", [0.015], calls_per_value=25)
        off = CallDatasetGenerator(
            GeneratorConfig(n_calls=0, seed=3, mitigation_enabled=False)
        ).generate_sweep(base, "loss", [0.015], calls_per_value=25)
        drop_on = np.mean([p.dropped_early for c in on for p in [c.participants[0]]])
        drop_off = np.mean([p.dropped_early for c in off for p in [c.participants[0]]])
        assert drop_off > drop_on

"""Tests for the telemetry record schema."""

import datetime as dt

import pytest

from repro.errors import SchemaError
from repro.telemetry.schema import CallRecord, ParticipantRecord


def network_agg(latency=20.0):
    return {
        metric: {"mean": latency, "median": latency, "p95": latency}
        for metric in ("latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps")
    }


def participant(call_id="c1", rating=None, presence=80.0):
    return ParticipantRecord(
        call_id=call_id,
        user_id="u1",
        platform="windows_pc",
        country="US",
        session_duration_s=600.0,
        presence_pct=presence,
        cam_on_pct=50.0,
        mic_on_pct=40.0,
        dropped_early=False,
        network=network_agg(),
        rating=rating,
    )


class TestParticipantRecord:
    def test_valid(self):
        p = participant()
        assert p.metric("latency_ms") == 20.0
        assert p.engagement("presence_pct") == 80.0

    def test_rejects_presence_above_100(self):
        with pytest.raises(SchemaError):
            participant(presence=120.0)

    def test_rejects_bad_rating(self):
        with pytest.raises(SchemaError):
            participant(rating=6)

    def test_accepts_valid_rating(self):
        assert participant(rating=5).rating == 5

    def test_rejects_missing_metric(self):
        agg = network_agg()
        del agg["jitter_ms"]
        with pytest.raises(SchemaError):
            ParticipantRecord(
                call_id="c", user_id="u", platform="p", country="US",
                session_duration_s=1, presence_pct=1, cam_on_pct=1,
                mic_on_pct=1, dropped_early=False, network=agg,
            )

    def test_rejects_missing_stat(self):
        agg = network_agg()
        del agg["loss_pct"]["p95"]
        with pytest.raises(SchemaError):
            ParticipantRecord(
                call_id="c", user_id="u", platform="p", country="US",
                session_duration_s=1, presence_pct=1, cam_on_pct=1,
                mic_on_pct=1, dropped_early=False, network=agg,
            )

    def test_metric_unknown_raises(self):
        with pytest.raises(SchemaError):
            participant().metric("rtt_ms")

    def test_engagement_unknown_raises(self):
        with pytest.raises(SchemaError):
            participant().engagement("smile_pct")


class TestCallRecord:
    def test_valid(self):
        call = CallRecord(
            call_id="c1",
            start=dt.datetime(2022, 3, 1, 10, 0),
            scheduled_duration_s=1800,
            is_enterprise=True,
            participants=[participant(), participant()],
        )
        assert call.size == 2
        assert call.countries == ["US"]

    def test_rejects_mismatched_call_id(self):
        with pytest.raises(SchemaError):
            CallRecord(
                call_id="c1",
                start=dt.datetime(2022, 3, 1, 10, 0),
                scheduled_duration_s=1800,
                is_enterprise=True,
                participants=[participant(call_id="c2")],
            )

    @pytest.mark.parametrize("when,expected", [
        (dt.datetime(2022, 3, 1, 10, 0), True),    # Tuesday 10am
        (dt.datetime(2022, 3, 1, 8, 0), False),    # before 9
        (dt.datetime(2022, 3, 1, 20, 0), False),   # 8pm boundary excluded
        (dt.datetime(2022, 3, 5, 10, 0), False),   # Saturday
    ])
    def test_business_hours(self, when, expected):
        call = CallRecord(
            call_id="c", start=when, scheduled_duration_s=600,
            is_enterprise=True, participants=[],
        )
        assert call.is_business_hours() is expected

"""Tests for the call dataset store and persistence."""

import pytest

from repro.errors import SchemaError
from repro.telemetry.store import CallDataset


class TestCallDataset:
    def test_len_and_iteration(self, small_dataset):
        assert len(small_dataset) == 150
        assert sum(1 for _ in small_dataset) == 150

    def test_participants_count(self, small_dataset):
        assert small_dataset.n_participants == sum(
            c.size for c in small_dataset
        )

    def test_append_rejects_non_call(self):
        with pytest.raises(SchemaError):
            CallDataset().append("nope")

    def test_filter_calls(self, small_dataset):
        big = small_dataset.filter_calls(lambda c: c.size >= 5)
        assert all(c.size >= 5 for c in big)
        assert len(big) < len(small_dataset)

    def test_rated_participants_all_have_ratings(self, small_dataset):
        assert all(
            p.rating is not None for p in small_dataset.rated_participants()
        )


class TestJsonlRoundTrip:
    def test_round_trip_preserves_everything(self, small_dataset, tmp_path):
        path = tmp_path / "calls.jsonl"
        small_dataset.to_jsonl(path)
        loaded = CallDataset.from_jsonl(path)
        assert len(loaded) == len(small_dataset)
        for a, b in zip(small_dataset, loaded):
            assert a.call_id == b.call_id
            assert a.start == b.start
            assert a.is_enterprise == b.is_enterprise
            for pa, pb in zip(a.participants, b.participants):
                assert pa.user_id == pb.user_id
                assert pa.presence_pct == pb.presence_pct
                assert pa.network == pb.network
                assert pa.rating == pb.rating

    def test_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"call_id": "x"\n')
        with pytest.raises(SchemaError, match="1"):
            CallDataset.from_jsonl(path)

    def test_blank_lines_skipped(self, small_dataset, tmp_path):
        path = tmp_path / "gaps.jsonl"
        small_dataset.to_jsonl(path)
        content = path.read_text()
        path.write_text("\n" + content + "\n\n")
        loaded = CallDataset.from_jsonl(path)
        assert len(loaded) == len(small_dataset)

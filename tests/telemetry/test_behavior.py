"""Tests for the behaviour engine — the §3 causal mechanism."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.netsim.mitigation import MitigationStack
from repro.netsim.qoe import QoeModel
from repro.netsim.vectorized import mitigate_arrays, qoe_arrays
from repro.rng import derive
from repro.telemetry.behavior import BehaviorModel, BehaviorParams, SessionOutcome
from repro.telemetry.platforms import PLATFORMS


def quality_for(latency=20.0, loss=0.0, jitter=2.0, bw=3.5, n=240):
    """Constant-condition quality/effective arrays for n intervals."""
    stack, model = MitigationStack(), QoeModel()
    eff = mitigate_arrays(
        stack,
        np.full(n, latency), np.full(n, loss),
        np.full(n, jitter), np.full(n, bw),
        0.3,
    )
    return qoe_arrays(model, eff), eff


def run_sessions(model, platform, n_sessions=60, conditioning=0.8, size=5,
                 **conditions):
    quality, eff = quality_for(**conditions)
    outcomes = []
    for i in range(n_sessions):
        rng = derive(900 + i, "behavior")
        outcomes.append(
            model.simulate_session(rng, quality, eff, platform, size, conditioning)
        )
    return outcomes


class TestBehaviorParams:
    def test_defaults_valid(self):
        BehaviorParams()

    @pytest.mark.parametrize("kwargs", [
        dict(mic_floor=1.5),
        dict(base_leave_hazard=-0.1),
        dict(cam_floor=0.5, cam_video_weight=0.5, cam_inter_weight=0.5),
        dict(early_leave_share=-0.1),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            BehaviorParams(**kwargs)


class TestSessionOutcome:
    def test_rejects_zero_attendance(self):
        with pytest.raises(SimulationError):
            SessionOutcome(attended_intervals=0, mic_on_frac=0.5,
                           cam_on_frac=0.5, dropped_early=False)

    def test_rejects_bad_fraction(self):
        with pytest.raises(SimulationError):
            SessionOutcome(attended_intervals=10, mic_on_frac=1.5,
                           cam_on_frac=0.5, dropped_early=False)


class TestBehaviorModel:
    def test_outcome_shape(self):
        model = BehaviorModel()
        outcomes = run_sessions(model, PLATFORMS["windows_pc"], n_sessions=5)
        for o in outcomes:
            assert 1 <= o.attended_intervals <= 240
            assert 0 <= o.mic_on_frac <= 1
            assert 0 <= o.cam_on_frac <= 1

    def test_latency_suppresses_mic(self):
        model = BehaviorModel()
        platform = PLATFORMS["windows_pc"]
        clean = run_sessions(model, platform, latency=15.0)
        laggy = run_sessions(model, platform, latency=300.0)
        assert np.mean([o.mic_on_frac for o in laggy]) < np.mean(
            [o.mic_on_frac for o in clean]
        ) * 0.9

    def test_jitter_suppresses_camera(self):
        model = BehaviorModel()
        platform = PLATFORMS["windows_pc"]
        clean = run_sessions(model, platform, jitter=1.0)
        jittery = run_sessions(model, platform, jitter=12.0)
        assert np.mean([o.cam_on_frac for o in jittery]) < np.mean(
            [o.cam_on_frac for o in clean]
        ) * 0.92

    def test_heavy_loss_drives_drop_off(self):
        model = BehaviorModel()
        platform = PLATFORMS["windows_pc"]
        clean = run_sessions(model, platform, loss=0.05)
        lossy = run_sessions(model, platform, loss=4.0)
        clean_drop = np.mean([o.dropped_early for o in clean])
        lossy_drop = np.mean([o.dropped_early for o in lossy])
        assert lossy_drop > clean_drop + 0.10  # §3.2: >10 points at 3%+

    def test_in_budget_loss_barely_matters(self):
        """Loss within the FEC budget costs <10% engagement (Fig. 1)."""
        model = BehaviorModel()
        platform = PLATFORMS["windows_pc"]
        clean = run_sessions(model, platform, loss=0.05)
        mild = run_sessions(model, platform, loss=1.5)
        for metric in ("mic_on_frac", "cam_on_frac"):
            clean_mean = np.mean([getattr(o, metric) for o in clean])
            mild_mean = np.mean([getattr(o, metric) for o in mild])
            assert mild_mean > clean_mean * 0.90

    def test_mobile_drops_sooner_than_pc(self):
        model = BehaviorModel()
        pc = run_sessions(model, PLATFORMS["windows_pc"], latency=250.0, loss=2.5)
        mobile = run_sessions(model, PLATFORMS["android_mobile"], latency=250.0, loss=2.5)
        assert np.mean([o.dropped_early for o in mobile]) > np.mean(
            [o.dropped_early for o in pc]
        )

    def test_meeting_size_raises_mute_rate(self):
        model = BehaviorModel()
        platform = PLATFORMS["windows_pc"]
        small = run_sessions(model, platform, size=3)
        large = run_sessions(model, platform, size=25)
        assert np.mean([o.mic_on_frac for o in large]) < np.mean(
            [o.mic_on_frac for o in small]
        )

    def test_conditioning_damps_reaction(self):
        """Users accustomed to bad networks react less (§6, weak effect)."""
        model = BehaviorModel()
        platform = PLATFORMS["windows_pc"]
        sensitive = run_sessions(model, platform, conditioning=1.0, latency=280.0)
        hardened = run_sessions(model, platform, conditioning=0.0, latency=280.0)
        assert np.mean([o.mic_on_frac for o in hardened]) > np.mean(
            [o.mic_on_frac for o in sensitive]
        )

    def test_rejects_bad_conditioning(self):
        model = BehaviorModel()
        quality, eff = quality_for(n=10)
        with pytest.raises(ConfigError):
            model.simulate_session(
                derive(1, "x"), quality, eff, PLATFORMS["windows_pc"], 3, 2.0
            )

    def test_rejects_bad_meeting_size(self):
        model = BehaviorModel()
        quality, eff = quality_for(n=10)
        with pytest.raises(ConfigError):
            model.simulate_session(
                derive(1, "x"), quality, eff, PLATFORMS["windows_pc"], 0, 0.5
            )

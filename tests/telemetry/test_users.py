"""Tests for persistent users and dynamic conditioning."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rng import derive
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.users import User, UserPopulation


class TestUser:
    def _user(self, conditioning=0.5):
        from repro.netsim.link import LinkProfile
        from repro.telemetry.platforms import PLATFORMS

        return User(
            user_id="u1",
            platform=PLATFORMS["windows_pc"],
            home_profile=LinkProfile(base_latency_ms=20, loss_rate=0.001,
                                     jitter_ms=2, bandwidth_mbps=3.5),
            conditioning=conditioning,
        )

    def test_good_experience_raises_expectations(self):
        user = self._user(conditioning=0.5)
        for _ in range(20):
            user.record_session(4.8)
        assert user.conditioning > 0.8

    def test_bad_experience_hardens(self):
        user = self._user(conditioning=0.8)
        for _ in range(20):
            user.record_session(2.0)
        assert user.conditioning < 0.4

    def test_mean_quality_tracked(self):
        user = self._user()
        assert user.mean_experienced_quality is None
        user.record_session(4.0)
        user.record_session(2.0)
        assert user.mean_experienced_quality == pytest.approx(3.0)
        assert user.n_sessions == 2

    def test_rejects_bad_inputs(self):
        user = self._user()
        with pytest.raises(ConfigError):
            user.record_session(0.5)
        with pytest.raises(ConfigError):
            user.record_session(4.0, adaptation=0)


class TestUserPopulation:
    def test_deterministic(self):
        a = UserPopulation(size=50, seed=3)
        b = UserPopulation(size=50, seed=3)
        assert [u.home_profile for u in a] == [u.home_profile for u in b]

    def test_sample_distinct(self, fresh_rng):
        population = UserPopulation(size=100, seed=4)
        users = population.sample(fresh_rng, 20)
        assert len({u.user_id for u in users}) == 20

    def test_sample_rejects_oversize(self, fresh_rng):
        with pytest.raises(ConfigError):
            UserPopulation(size=10, seed=4).sample(fresh_rng, 11)

    def test_mobile_users_on_mobile_networks(self):
        """The platform/network correlation carries into home profiles."""
        population = UserPopulation(size=800, seed=5)
        mobile_lat = [u.home_profile.base_latency_ms for u in population
                      if u.platform.is_mobile]
        pc_lat = [u.home_profile.base_latency_ms for u in population
                  if not u.platform.is_mobile]
        assert np.mean(mobile_lat) > np.mean(pc_lat)

    def test_by_id(self):
        population = UserPopulation(size=20, seed=6)
        user = next(iter(population))
        assert population.by_id(user.user_id) is user
        with pytest.raises(ConfigError):
            population.by_id("ghost")


class TestPersistentGeneration:
    @pytest.fixture(scope="class")
    def persistent_dataset(self):
        generator = CallDatasetGenerator(GeneratorConfig(
            n_calls=250, seed=31, persistent_users=True,
            population_size=300,
        ))
        return generator.generate(), generator

    def test_user_ids_recur_across_calls(self, persistent_dataset):
        dataset, _ = persistent_dataset
        ids = [p.user_id for p in dataset.participants()]
        assert len(set(ids)) < len(ids)  # somebody attended twice

    def test_same_user_same_platform(self, persistent_dataset):
        dataset, _ = persistent_dataset
        platform_of = {}
        for p in dataset.participants():
            assert platform_of.setdefault(p.user_id, p.platform) == p.platform

    def test_conditioning_evolves(self, persistent_dataset):
        """After many sessions, conditioning reflects experienced quality:
        users on good home networks end up with higher expectations."""
        dataset, generator = persistent_dataset
        population = generator.population
        experienced = [
            (u.conditioning, u.mean_experienced_quality)
            for u in population
            if u.n_sessions >= 3
        ]
        assert len(experienced) > 30
        conditioning = np.array([e[0] for e in experienced])
        quality = np.array([e[1] for e in experienced])
        r = np.corrcoef(conditioning, quality)[0, 1]
        # Adaptation is deliberately slow (0.1/session) and users average
        # only ~4 sessions here, so the correlation is moderate — but it
        # must be clearly positive: experience sets expectations.
        assert r > 0.25

    def test_default_mode_unchanged(self):
        """persistent_users=False keeps the original anonymous ids."""
        dataset = CallDatasetGenerator(
            GeneratorConfig(n_calls=5, seed=31)
        ).generate()
        for p in dataset.participants():
            assert p.user_id.startswith("call-")

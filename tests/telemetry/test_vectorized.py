"""Equivalence and determinism pins for the vectorized call engine.

The contract (see :mod:`repro.telemetry.vectorized`): output is
*statistically* equivalent to the record path — same population model,
same per-call substreams, documented different draw order — and
*byte-identical* within the vectorized path across worker counts and
cache round-trips.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.perf.cache import ArtifactCache
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.vectorized import VectorizedCallEngine

SEEDS = (101, 202, 303)


def columns_for(seed, n_calls=60, workers=1, **kwargs):
    config = GeneratorConfig(
        n_calls=n_calls, seed=seed, workers=workers, **kwargs
    )
    return CallDatasetGenerator(config).generate_columns()


def assert_columns_identical(a, b):
    assert a.call_id == b.call_id
    assert a.user_id == b.user_id
    assert a.platform == b.platform
    assert a.country == b.country
    assert a.call_start == b.call_start
    for name in ("session_duration_s", "presence_pct", "cam_on_pct",
                 "mic_on_pct", "conditioning", "dropped_early", "rating"):
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), name
    assert a.network.keys() == b.network.keys()
    for metric, stats in a.network.items():
        for stat, values in stats.items():
            assert values.tobytes() == b.network[metric][stat].tobytes(), (
                metric, stat,
            )


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        assert_columns_identical(columns_for(101), columns_for(101))

    def test_seed_changes_output(self):
        a, b = columns_for(101), columns_for(202)
        assert a.session_duration_s.tobytes() != b.session_duration_s.tobytes()

    @pytest.mark.parametrize("workers", [2, 3])
    def test_workers_are_invisible(self, workers):
        assert_columns_identical(
            columns_for(101), columns_for(101, workers=workers)
        )

    def test_cache_round_trip_is_byte_identical(self, tmp_path):
        config = GeneratorConfig(n_calls=24, seed=101)
        cache = ArtifactCache(tmp_path / "cache")
        gen = CallDatasetGenerator(config)
        built = gen.generate_columns(cache=cache)
        loaded = gen.generate_columns(cache=cache)
        assert_columns_identical(built, loaded)

    def test_persistent_users_rejected(self):
        config = GeneratorConfig(n_calls=4, seed=1, persistent_users=True)
        with pytest.raises(ConfigError):
            VectorizedCallEngine(config)


class TestRecordEquivalence:
    """Population statistics must match the record path across seeds."""

    @pytest.fixture(scope="class")
    def pairs(self):
        out = []
        for seed in SEEDS:
            config = GeneratorConfig(n_calls=200, seed=seed)
            gen = CallDatasetGenerator(config)
            dataset = gen.generate()
            cols = gen.generate_columns()
            out.append((dataset, cols))
        return out

    def test_row_counts_match_exactly(self, pairs):
        # Meetings (and so call widths) come from the same substream on
        # both engines: participant counts are draw-identical.
        for dataset, cols in pairs:
            assert len(cols) == dataset.n_participants
            assert sorted(set(cols.call_id)) == sorted(
                call.call_id for call in dataset
            )

    def test_platform_mix_matches(self, pairs):
        for dataset, cols in pairs:
            rec = {}
            for call in dataset:
                for p in call.participants:
                    rec[p.platform] = rec.get(p.platform, 0) + 1
            vec = {}
            for platform in cols.platform:
                vec[platform] = vec.get(platform, 0) + 1
            for platform, n in rec.items():
                assert vec.get(platform, 0) == pytest.approx(n, rel=0.35), (
                    platform
                )

    def test_behavioral_means_match(self, pairs):
        for dataset, cols in pairs:
            participants = [
                p for call in dataset for p in call.participants
            ]
            rec_presence = np.mean([p.presence_pct for p in participants])
            rec_mic = np.mean([p.mic_on_pct for p in participants])
            rec_duration = np.mean(
                [p.session_duration_s for p in participants]
            )
            assert cols.presence_pct.mean() == pytest.approx(
                rec_presence, rel=0.05
            )
            assert cols.mic_on_pct.mean() == pytest.approx(rec_mic, rel=0.10)
            # Session duration carries the most variance (hazard leave
            # times); independent draws at this scale sit within ~3%,
            # so 7% holds with margin without masking real drift.
            assert cols.session_duration_s.mean() == pytest.approx(
                rec_duration, rel=0.07
            )

    def test_rating_sparsity_matches_sample_rate(self, pairs):
        for dataset, cols in pairs:
            rated = np.count_nonzero(~np.isnan(cols.rating))
            # mos_sample_rate=0.005 over a few thousand rows: just pin
            # the order of magnitude (sparse, not absent-by-bug).
            assert rated <= max(8, 0.05 * len(cols))

    def test_network_summaries_match(self, pairs):
        for dataset, cols in pairs:
            participants = [
                p for call in dataset for p in call.participants
            ]
            rec_latency = np.mean([
                p.network["latency_ms"]["mean"] for p in participants
            ])
            vec_latency = cols.network["latency_ms"]["mean"].mean()
            assert vec_latency == pytest.approx(rec_latency, rel=0.10)
            rec_loss = np.mean([
                p.network["loss_pct"]["mean"] for p in participants
            ])
            vec_loss = cols.network["loss_pct"]["mean"].mean()
            assert vec_loss == pytest.approx(rec_loss, rel=0.35)

"""Tests for the platform catalog."""

import pytest

from repro.errors import ConfigError
from repro.netsim.mitigation import MitigationStack
from repro.telemetry.platforms import PLATFORMS, Platform, platform_for


class TestCatalog:
    def test_four_platforms(self):
        assert len(PLATFORMS) == 4  # matches Fig. 3's four curves

    def test_population_shares_sum_to_one(self):
        total = sum(p.population_share for p in PLATFORMS.values())
        assert total == pytest.approx(1.0)

    def test_mobile_more_drop_sensitive_than_pc(self):
        pc = max(
            p.drop_sensitivity for p in PLATFORMS.values() if not p.is_mobile
        )
        mobile = min(
            p.drop_sensitivity for p in PLATFORMS.values() if p.is_mobile
        )
        assert mobile > pc

    def test_mobile_weaker_mitigation(self):
        for platform in PLATFORMS.values():
            if platform.is_mobile:
                assert platform.mitigation_strength < 1.0

    def test_lookup(self):
        assert platform_for("windows_pc").key == "windows_pc"

    def test_lookup_unknown_raises(self):
        with pytest.raises(ConfigError):
            platform_for("blackberry")


class TestPlatform:
    def test_mitigation_stack_scaled(self):
        android = PLATFORMS["android_mobile"]
        base = MitigationStack()
        scaled = android.mitigation_stack(base)
        assert scaled.fec_efficiency == pytest.approx(
            base.fec_efficiency * android.mitigation_strength
        )
        assert scaled.audio_concealment < base.audio_concealment

    def test_full_strength_stack_unchanged(self):
        windows = PLATFORMS["windows_pc"]
        base = MitigationStack()
        assert windows.mitigation_stack(base) == base

    def test_rejects_invalid_rates(self):
        with pytest.raises(ConfigError):
            Platform(
                key="x", is_mobile=False, base_cam_rate=1.5, base_mic_rate=0.5,
                drop_sensitivity=1, engagement_sensitivity=1,
                mitigation_strength=1, population_share=0.1,
            )

    def test_rejects_mitigation_above_one(self):
        with pytest.raises(ConfigError):
            Platform(
                key="x", is_mobile=False, base_cam_rate=0.5, base_mic_rate=0.5,
                drop_sensitivity=1, engagement_sensitivity=1,
                mitigation_strength=1.2, population_share=0.1,
            )

"""Tests for the star-rating feedback model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rng import derive
from repro.telemetry.feedback import FeedbackModel


class TestFeedbackModel:
    def test_sampling_rate_respected(self):
        rng = derive(41, "fb")
        model = FeedbackModel(sample_rate=0.02, response_rate=1.0)
        ratings = [
            model.maybe_rating(rng, 4.0, False) for _ in range(20000)
        ]
        rate = np.mean([r is not None for r in ratings])
        assert rate == pytest.approx(0.02, abs=0.005)

    def test_always_sampled_when_rate_one(self):
        rng = derive(42, "fb")
        model = FeedbackModel(sample_rate=1.0, response_rate=1.0)
        assert all(
            model.maybe_rating(rng, 4.0, False) is not None for _ in range(50)
        )

    def test_ratings_in_range(self):
        rng = derive(43, "fb")
        model = FeedbackModel(sample_rate=1.0, response_rate=1.0)
        for mos in (1.0, 2.5, 4.9):
            for _ in range(100):
                rating = model.maybe_rating(rng, mos, False)
                assert rating in (1, 2, 3, 4, 5)

    def test_good_calls_rate_higher(self):
        rng = derive(44, "fb")
        model = FeedbackModel(sample_rate=1.0, response_rate=1.0)
        good = np.mean([model.maybe_rating(rng, 4.6, False) for _ in range(400)])
        bad = np.mean([model.maybe_rating(rng, 1.8, False) for _ in range(400)])
        assert good > bad + 1.0

    def test_drop_penalty_lowers_rating(self):
        rng_a = derive(45, "fb-a")
        rng_b = derive(45, "fb-b")
        model = FeedbackModel(sample_rate=1.0, response_rate=1.0)
        stayed = np.mean([model.maybe_rating(rng_a, 3.5, False) for _ in range(500)])
        dropped = np.mean([model.maybe_rating(rng_b, 3.5, True) for _ in range(500)])
        assert dropped < stayed

    def test_rejects_out_of_range_mos(self):
        model = FeedbackModel()
        with pytest.raises(ConfigError):
            model.maybe_rating(derive(1, "x"), 0.5, False)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ConfigError):
            FeedbackModel(sample_rate=2.0)

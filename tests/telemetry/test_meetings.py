"""Tests for the meeting scheduler."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rng import derive
from repro.telemetry.meetings import Meeting, MeetingScheduler


class TestMeeting:
    def test_rejects_country_mismatch(self):
        with pytest.raises(ConfigError):
            Meeting(
                call_id="c", start=dt.datetime(2022, 1, 3, 10),
                scheduled_duration_s=600, size=3, is_enterprise=True,
                countries=("US", "US"),
            )

    def test_rejects_zero_size(self):
        with pytest.raises(ConfigError):
            Meeting(
                call_id="c", start=dt.datetime(2022, 1, 3, 10),
                scheduled_duration_s=600, size=0, is_enterprise=True,
                countries=(),
            )


class TestMeetingScheduler:
    def test_deterministic(self):
        a = MeetingScheduler().sample_many(derive(3, "m"), 10)
        b = MeetingScheduler().sample_many(derive(3, "m"), 10)
        assert [m.start for m in a] == [m.start for m in b]

    def test_count_and_ids(self):
        meetings = MeetingScheduler().sample_many(derive(4, "m"), 25, id_prefix="x")
        assert len(meetings) == 25
        assert len({m.call_id for m in meetings}) == 25
        assert meetings[0].call_id.startswith("x-")

    def test_mostly_weekday_business_hours(self):
        meetings = MeetingScheduler().sample_many(derive(5, "m"), 400)
        weekday = np.mean([m.start.weekday() < 5 for m in meetings])
        business = np.mean([9 <= m.start.hour < 20 for m in meetings])
        assert weekday > 0.85
        assert business > 0.80

    def test_some_off_cohort_meetings_exist(self):
        """The cohort filter needs something to remove."""
        meetings = MeetingScheduler().sample_many(derive(6, "m"), 600)
        assert any(m.start.weekday() >= 5 for m in meetings)
        assert any(not m.is_enterprise for m in meetings)
        assert any(m.size < 3 for m in meetings)
        assert any(set(m.countries) != {"US"} for m in meetings)

    def test_spans_respected(self):
        start, end = dt.date(2022, 2, 1), dt.date(2022, 2, 28)
        scheduler = MeetingScheduler(span_start=start, span_end=end)
        meetings = scheduler.sample_many(derive(7, "m"), 100)
        assert all(start <= m.start.date() <= end for m in meetings)

    def test_rejects_reversed_span(self):
        with pytest.raises(ConfigError):
            MeetingScheduler(
                span_start=dt.date(2022, 2, 1), span_end=dt.date(2022, 1, 1)
            )

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigError):
            MeetingScheduler().sample_many(derive(8, "m"), -1)

"""Tests for the decorrelating profile sampler."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rng import derive
from repro.telemetry.network_profiles import ProfileSampler


class TestProfileSampler:
    def test_rejects_bad_decorrelate(self):
        with pytest.raises(ConfigError):
            ProfileSampler(decorrelate=1.5)

    def test_deterministic(self):
        a = ProfileSampler(0.5).sample(derive(9, "p"))
        b = ProfileSampler(0.5).sample(derive(9, "p"))
        assert a == b

    def test_profiles_valid(self):
        rng = derive(10, "p")
        sampler = ProfileSampler(0.5)
        for _ in range(200):
            p = sampler.sample(rng)
            assert p.base_latency_ms > 0
            assert 0 <= p.loss_rate <= 0.2
            assert p.bandwidth_mbps > 0

    def test_full_decorrelation_reduces_metric_correlation(self):
        """decorrelate=1 must give (near) independent metrics."""
        def corr(decorrelate, seed_key):
            rng = derive(11, seed_key)
            sampler = ProfileSampler(decorrelate)
            profiles = [sampler.sample(rng) for _ in range(800)]
            lat = np.log([p.base_latency_ms for p in profiles])
            loss = np.log([p.loss_rate for p in profiles])
            return abs(np.corrcoef(lat, loss)[0, 1])

        assert corr(1.0, "ind") < corr(0.0, "tier")

    def test_full_decorrelation_covers_axes(self):
        """Wide support: high-latency + low-loss sessions must exist."""
        rng = derive(12, "p")
        sampler = ProfileSampler(1.0)
        profiles = [sampler.sample(rng) for _ in range(1500)]
        assert any(
            p.base_latency_ms > 200 and p.loss_rate < 0.002 for p in profiles
        )
        assert any(
            p.base_latency_ms < 40 and p.loss_rate > 0.02 for p in profiles
        )

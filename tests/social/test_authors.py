"""Tests for the author population."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rng import derive
from repro.social.authors import Author, AuthorPool


class TestAuthor:
    def test_rejects_bad_optimism(self):
        with pytest.raises(ConfigError):
            Author(handle="x", joined=dt.date(2021, 1, 1), is_subscriber=True,
                   optimism=2.0, extremity=0.5, verbosity=1.0,
                   country="US", waiting_preorder=False)

    def test_rejects_zero_verbosity(self):
        with pytest.raises(ConfigError):
            Author(handle="x", joined=dt.date(2021, 1, 1), is_subscriber=True,
                   optimism=0.0, extremity=0.5, verbosity=0.0,
                   country="US", waiting_preorder=False)


class TestAuthorPool:
    def test_deterministic(self):
        a = AuthorPool(size=50, seed=3)
        b = AuthorPool(size=50, seed=3)
        assert [x.handle for x in a.active_on(dt.date(2022, 1, 1))] == [
            x.handle for x in b.active_on(dt.date(2022, 1, 1))
        ]

    def test_population_grows(self):
        pool = AuthorPool(size=500, seed=4)
        early = len(pool.active_on(dt.date(2021, 2, 1)))
        late = len(pool.active_on(dt.date(2022, 11, 1)))
        assert early < late <= 500

    def test_sample_respects_activity(self):
        pool = AuthorPool(size=200, seed=5)
        day = dt.date(2021, 6, 1)
        sampled = pool.sample(derive(6, "authors"), day, 50)
        assert len(sampled) == 50
        assert all(a.joined <= day for a in sampled)

    def test_sample_subscriber_returns_subscriber(self):
        pool = AuthorPool(size=200, seed=7)
        author = pool.sample_subscriber(derive(8, "authors"), dt.date(2022, 6, 1))
        assert author.is_subscriber

    def test_verbosity_weighting(self):
        pool = AuthorPool(size=300, seed=9)
        day = dt.date(2022, 6, 1)
        sampled = pool.sample(derive(10, "authors"), day, 3000)
        counts = {}
        for a in sampled:
            counts[a.handle] = counts.get(a.handle, 0) + 1
        by_handle = {a.handle: a.verbosity for a in pool.active_on(day)}
        talkative = max(by_handle, key=lambda h: by_handle[h])
        quiet = min(by_handle, key=lambda h: by_handle[h])
        assert counts.get(talkative, 0) >= counts.get(quiet, 0)

    def test_rejects_tiny_pool(self):
        with pytest.raises(ConfigError):
            AuthorPool(size=5)

    def test_country_diversity(self):
        pool = AuthorPool(size=500, seed=11)
        countries = {a.country for a in pool.active_on(dt.date(2022, 12, 1))}
        assert "US" in countries
        assert len(countries) >= 10  # enough for the 14-country outage story

"""Tests for template text generation."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nlp.sentiment import SentimentAnalyzer
from repro.rng import derive
from repro.social.textgen import (
    TextGenerator,
    _TEMPLATES,
    band_for,
    compile_template,
    outage_comment,
    render_template,
)


class TestBandFor:
    @pytest.mark.parametrize("sentiment,band", [
        (-0.9, "strong_neg"),
        (-0.3, "mild_neg"),
        (0.0, "neutral"),
        (0.3, "mild_pos"),
        (0.9, "strong_pos"),
    ])
    def test_mapping(self, sentiment, band):
        assert band_for(sentiment) == band

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigError):
            band_for(2.0)


class TestTextGenerator:
    def test_rejects_unknown_topic(self, fresh_rng):
        with pytest.raises(ConfigError):
            TextGenerator().generate(fresh_rng, "memes", 0.0)

    def test_all_topics_all_bands_render(self, fresh_rng):
        gen = TextGenerator()
        topics = ("experience_report", "speed_test_share", "outage_report",
                  "question", "setup_story", "event_reaction", "roaming")
        for topic in topics:
            for sentiment in (-0.9, -0.3, 0.0, 0.3, 0.9):
                title, body = gen.generate(
                    fresh_rng, topic, sentiment,
                    vocabulary=("roaming",),
                    context={"dl": 80, "ul": 10, "lat": 40,
                             "provider": "Ookla", "country": "US"},
                )
                assert title and body
                assert "{" not in title and "{" not in body

    def test_analyzer_recovers_intended_polarity(self):
        """The generation→analysis inverse problem must be solvable."""
        gen = TextGenerator()
        analyzer = SentimentAnalyzer()
        rng = derive(77, "textgen")
        for target in (-0.9, 0.9):
            polarities = []
            for _ in range(40):
                title, body = gen.generate(rng, "experience_report", target)
                polarities.append(analyzer.score(f"{title}. {body}").polarity)
            mean = np.mean(polarities)
            assert np.sign(mean) == np.sign(target)
            assert abs(mean) > 0.3

    def test_strong_templates_mostly_cross_strong_threshold(self):
        gen = TextGenerator()
        analyzer = SentimentAnalyzer()
        rng = derive(78, "textgen")
        strong = 0
        n = 60
        for _ in range(n):
            title, body = gen.generate(rng, "outage_report", -0.9,
                                       context={"country": "US"})
            if analyzer.score(f"{title}. {body}").is_strong_negative:
                strong += 1
        assert strong / n > 0.6

    def test_speed_context_embedded(self, fresh_rng):
        gen = TextGenerator()
        title, body = gen.generate(
            fresh_rng, "speed_test_share", 0.0,
            context={"dl": 123.4, "ul": 15.5, "lat": 37, "provider": "Ookla"},
        )
        assert "123.4" in f"{title} {body}"

    def test_neutral_band_fallback(self, fresh_rng):
        """question has only neutral templates; any sentiment must work."""
        title, body = TextGenerator().generate(fresh_rng, "question", -0.9)
        assert title and body


class TestOutageComment:
    def test_mentions_country(self, fresh_rng):
        comment = outage_comment(fresh_rng, "NZ")
        assert ("NZ" in comment) or ("down" in comment.lower()
                                     or "offline" in comment.lower()
                                     or "outage" in comment.lower())


class TestCompiledTemplates:
    """compile_template/render_template must be a drop-in for str.format:
    the corpus engines (record and vectorized) both render through the
    precompiled form, so any drift here is a corpus-content bug."""

    def test_every_template_renders_byte_identical_to_format(self):
        slots = {
            "provider": "Ookla", "dl": "44.2", "ul": "3.8", "lat": "37",
            "place": "the kitchen", "pos": "great", "pos2": "superb",
            "mpos": "decent", "neg": "awful", "neg2": "dreadful",
            "mneg": "meh", "feel": "frustrated", "noun": "nightmare",
            "country": "US", "event": "an outage", "vocab": "weekend",
        }
        checked = 0
        for topic, bands in _TEMPLATES.items():
            for band, pairs in bands.items():
                for title, body in pairs:
                    for template in (title, body):
                        parts = compile_template(template)
                        used = {
                            field: slots[field]
                            for _, field in parts if field is not None
                        }
                        assert render_template(parts, used) == \
                            template.format(**used), (topic, band)
                        checked += 1
        assert checked > 50  # the corpus's whole template inventory

    def test_rejects_format_specs_and_conversions(self):
        with pytest.raises(ConfigError):
            compile_template("speed {dl:.1f} down")
        with pytest.raises(ConfigError):
            compile_template("hello {name!r}")

    def test_generator_precompiles_on_init(self):
        gen = TextGenerator()
        for bands in gen._compiled.values():
            for pairs in bands.values():
                for title_parts, body_parts in pairs:
                    assert isinstance(title_parts, tuple)
                    assert isinstance(body_parts, tuple)

"""Tests for the event calendar and news-index construction."""

import datetime as dt

import pytest

from repro.errors import ConfigError
from repro.social.events import (
    DELAY_EVENT,
    PREORDER_EVENT,
    ROAMING_DISCOVERY,
    Event,
    EventCalendar,
    build_news_index,
    outage_event,
)
from repro.starlink.coverage import HEADLINE_OUTAGES


class TestScheduledEvents:
    def test_preorder_date_and_polarity(self):
        assert PREORDER_EVENT.date == dt.date(2021, 2, 9)
        assert PREORDER_EVENT.sentiment > 0.5
        assert PREORDER_EVENT.in_news

    def test_delay_email_date_and_polarity(self):
        assert DELAY_EVENT.date == dt.date(2021, 11, 24)
        assert DELAY_EVENT.sentiment < -0.5
        assert DELAY_EVENT.in_news

    def test_roaming_discovery_precedes_announcement(self):
        """§4.1: detected ~2 weeks before the CEO tweet (4 Mar '22)."""
        announcement = dt.date(2022, 3, 4)
        lead = (announcement - ROAMING_DISCOVERY.date).days
        assert 12 <= lead <= 21
        assert not ROAMING_DISCOVERY.in_news


class TestEventIntensity:
    def test_announcement_decays_geometrically(self):
        assert PREORDER_EVENT.intensity_on(PREORDER_EVENT.date) == 1.0
        next_day = PREORDER_EVENT.intensity_on(
            PREORDER_EVENT.date + dt.timedelta(days=1)
        )
        assert next_day == pytest.approx(0.5)

    def test_discovery_sustains(self):
        mid = ROAMING_DISCOVERY.intensity_on(
            ROAMING_DISCOVERY.date + dt.timedelta(days=10)
        )
        assert mid == pytest.approx(0.35)

    def test_intensity_zero_outside_window(self):
        before = PREORDER_EVENT.date - dt.timedelta(days=1)
        after = PREORDER_EVENT.date + dt.timedelta(days=30)
        assert PREORDER_EVENT.intensity_on(before) == 0.0
        assert PREORDER_EVENT.intensity_on(after) == 0.0

    def test_in_news_requires_headline(self):
        with pytest.raises(ConfigError):
            Event(date=dt.date(2022, 1, 1), key="x", kind="announcement",
                  sentiment=0, volume_boost=2, decay_days=1,
                  vocabulary=("x",), in_news=True, headline=None)


class TestOutageEvents:
    def test_uncovered_outage_boosted_more(self):
        jan = next(o for o in HEADLINE_OUTAGES if o.date == dt.date(2022, 1, 7))
        apr = next(o for o in HEADLINE_OUTAGES if o.date == dt.date(2022, 4, 22))
        jan_event = outage_event(jan)
        apr_event = outage_event(apr)
        # April was smaller but uncovered; its Reddit boost must exceed
        # the bigger-but-covered January event's.
        assert apr_event.volume_boost > jan_event.volume_boost

    def test_negative_polarity(self):
        event = outage_event(HEADLINE_OUTAGES[0])
        assert event.sentiment < -0.5
        assert event.kind == "outage"


class TestEventCalendar:
    def test_events_sorted(self):
        events = EventCalendar().events()
        dates = [e.date for e in events]
        assert dates == sorted(dates)

    def test_volume_multiplier_peaks_on_event_days(self):
        calendar = EventCalendar()
        quiet = calendar.volume_multiplier(dt.date(2021, 7, 10))
        preorder = calendar.volume_multiplier(dt.date(2021, 2, 9))
        assert quiet == pytest.approx(1.0)
        assert preorder > 5.0

    def test_active_on(self):
        active = EventCalendar().active_on(dt.date(2022, 4, 22))
        assert any(e.kind == "outage" for e in active)


class TestNewsIndex:
    def test_covered_events_present(self):
        index = build_news_index(EventCalendar())
        assert index.search(["preorders"], dt.date(2021, 2, 9))
        assert index.search(["delivery"], dt.date(2021, 11, 24))

    def test_april_outage_absent(self):
        index = build_news_index(EventCalendar())
        hits = index.search(
            ["outage", "down", "offline"], dt.date(2022, 4, 22), window_days=3
        )
        assert hits == []

    def test_january_outage_present(self):
        index = build_news_index(EventCalendar())
        assert index.search(["outage"], dt.date(2022, 1, 7), window_days=3)

    def test_launch_wire_copy_included(self):
        index = build_news_index(EventCalendar(), launches_as_news=True)
        assert index.search(["satellites"], dt.date(2021, 3, 15), window_days=5)

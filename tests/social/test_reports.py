"""Tests for speed-test sampling and share sentiment."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rng import derive
from repro.social.reports import sample_provider, sample_speed_test, share_sentiment


class TestSampleSpeedTest:
    def test_valid_share(self, fresh_rng):
        share = sample_speed_test(fresh_rng, 70.0)
        assert share.download_mbps > 0
        assert share.upload_mbps < share.download_mbps
        assert 18 <= share.latency_ms <= 150

    def test_median_tracks_network(self):
        rng = derive(55, "reports")
        downloads = [sample_speed_test(rng, 70.0).download_mbps for _ in range(800)]
        assert np.median(downloads) == pytest.approx(70.0, rel=0.1)

    def test_rejects_bad_median(self, fresh_rng):
        with pytest.raises(ConfigError):
            sample_speed_test(fresh_rng, 0.0)

    def test_provider_mix(self):
        rng = derive(56, "reports")
        providers = {sample_provider(rng) for _ in range(200)}
        assert {"ookla", "fast", "starlink_app"} <= providers


class TestShareSentiment:
    def test_community_satisfaction_drives_sign(self):
        happy = share_sentiment(70, 70, 0.85)
        unhappy = share_sentiment(70, 70, 0.15)
        assert happy > 0.3
        assert unhappy < -0.3

    def test_personal_result_modulates(self):
        above = share_sentiment(140, 70, 0.5)
        below = share_sentiment(35, 70, 0.5)
        assert above > 0 > below

    def test_bounded(self):
        assert -1 <= share_sentiment(1, 300, 0.0) <= 1
        assert -1 <= share_sentiment(300, 1, 1.0) <= 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            share_sentiment(0, 70, 0.5)
        with pytest.raises(ConfigError):
            share_sentiment(70, 70, 1.5)

"""Tests for comment-thread expansion."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nlp.sentiment import SentimentAnalyzer
from repro.social.threads import ThreadExpander, thread_polarity


@pytest.fixture(scope="module")
def expanded(small_corpus):
    return ThreadExpander(seed=3).expand(small_corpus)


class TestThreadExpander:
    def test_busy_threads_gain_bodies(self, small_corpus, expanded):
        before = sum(
            1 for p in small_corpus
            if p.comment_texts or p.n_comments < 10
        )
        gained = [
            p for p in expanded
            if p.comment_texts and p.n_comments >= 10
        ]
        assert gained
        assert len(gained) > 50

    def test_comment_counts_preserved(self, small_corpus, expanded):
        by_id = {p.post_id: p for p in expanded}
        for post in small_corpus:
            assert by_id[post.post_id].n_comments == post.n_comments
            assert by_id[post.post_id].upvotes == post.upvotes

    def test_outage_confirmations_untouched(self, small_corpus, expanded):
        by_id = {p.post_id: p for p in expanded}
        for post in small_corpus:
            if post.comment_texts:
                assert by_id[post.post_id].comment_texts == post.comment_texts

    def test_bodies_never_exceed_count(self, expanded):
        for post in expanded:
            assert len(post.comment_texts) <= post.n_comments

    def test_deterministic(self, small_corpus):
        a = ThreadExpander(seed=3).expand(small_corpus)
        b = ThreadExpander(seed=3).expand(small_corpus)
        assert [p.comment_texts for p in a] == [p.comment_texts for p in b]

    def test_agreement_dominates(self, expanded):
        """Comments on strongly polarised posts mostly share its sign."""
        analyzer = SentimentAnalyzer()
        agree = disagree = 0
        for post in expanded:
            if not post.comment_texts:
                continue
            post_polarity = analyzer.score(post.full_text).polarity
            if abs(post_polarity) < 0.3:
                continue
            for comment in post.comment_texts:
                comment_polarity = analyzer.score(comment).polarity
                if abs(comment_polarity) < 0.05:
                    continue
                if np.sign(comment_polarity) == np.sign(post_polarity):
                    agree += 1
                else:
                    disagree += 1
        assert agree > disagree

    @pytest.mark.parametrize("kwargs", [
        dict(min_comments=0),
        dict(max_bodies=0),
        dict(agreement=1.5),
        dict(neutral_share=-0.1),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            ThreadExpander(**kwargs)


class TestThreadPolarity:
    def test_crowd_pulls_polarity(self, expanded):
        analyzer = SentimentAnalyzer()
        for post in expanded:
            if len(post.comment_texts) >= 4:
                whole = thread_polarity(post, analyzer)
                assert -1 <= whole <= 1
                return
        pytest.skip("no thread with enough comments")

    def test_fig6_benefits_from_expansion(self, small_corpus, expanded):
        """Expanded threads carry at least as much outage-keyword mass."""
        from repro.nlp.keywords import OUTAGE_KEYWORDS

        def mass(corpus):
            return sum(
                OUTAGE_KEYWORDS.count_matches(p.thread_text) for p in corpus
            )

        assert mass(expanded) >= mass(small_corpus)

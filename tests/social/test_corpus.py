"""Tests for the corpus generator."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.social.corpus import CorpusConfig, CorpusGenerator


class TestCorpusConfig:
    def test_rejects_reversed_span(self):
        with pytest.raises(ConfigError):
            CorpusConfig(span_start=dt.date(2022, 1, 1),
                         span_end=dt.date(2021, 1, 1))

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigError):
            CorpusConfig(posts_per_week=0)

    def test_rejects_unknown_conditioning_mode(self):
        with pytest.raises(ConfigError):
            CorpusConfig(conditioning_mode="vibes")

    def test_single_mode_generates(self):
        config = CorpusConfig(
            seed=4,
            span_start=dt.date(2022, 3, 1),
            span_end=dt.date(2022, 3, 14),
            author_pool_size=150,
            conditioning_mode="single",
        )
        corpus = CorpusGenerator(config).generate()
        assert len(corpus) > 0


class TestGeneratedCorpus:
    def test_deterministic(self):
        config = CorpusConfig(
            seed=8,
            span_start=dt.date(2022, 3, 1),
            span_end=dt.date(2022, 3, 31),
            author_pool_size=200,
        )
        a = CorpusGenerator(config).generate()
        b = CorpusGenerator(config).generate()
        assert len(a) == len(b)
        assert [p.text for p in a][:20] == [p.text for p in b][:20]

    def test_posts_within_span(self, small_corpus):
        start = small_corpus.config.span_start
        end = small_corpus.config.span_end
        assert all(start <= p.date <= end for p in small_corpus)

    def test_posts_sorted_by_time(self, small_corpus):
        times = [p.created for p in small_corpus]
        assert times == sorted(times)

    def test_unique_post_ids(self, small_corpus):
        ids = [p.post_id for p in small_corpus]
        assert len(ids) == len(set(ids))

    def test_weekly_volume_near_target(self, full_corpus):
        """§4.1: 372 posts / 8190 upvotes / 5702 comments per week."""
        stats = full_corpus.weekly_stats()
        assert stats["posts_per_week"] == pytest.approx(372, rel=0.15)
        assert stats["upvotes_per_week"] == pytest.approx(8190, rel=0.5)
        assert stats["comments_per_week"] == pytest.approx(5702, rel=0.5)

    def test_speed_share_count_near_target(self, full_corpus):
        """§4.2: ~1750 shared speed tests over the two years."""
        assert len(full_corpus.speed_shares()) == pytest.approx(1750, rel=0.2)

    def test_event_days_busier(self, small_corpus):
        outage_day = len(small_corpus.posts_on(dt.date(2022, 4, 22)))
        quiet_day = len(small_corpus.posts_on(dt.date(2022, 3, 16)))
        assert outage_day > 2 * quiet_day

    def test_outage_day_dominated_by_outage_posts(self, small_corpus):
        posts = small_corpus.posts_on(dt.date(2022, 1, 7))
        outage_share = np.mean([p.topic == "outage_report" for p in posts])
        assert outage_share > 0.3

    def test_roaming_posts_exist_before_announcement(self, small_corpus):
        early = [
            p for p in small_corpus
            if p.topic == "roaming" and p.date < dt.date(2022, 3, 4)
        ]
        assert early

    def test_outage_threads_have_confirmation_comments(self, small_corpus):
        posts = [
            p for p in small_corpus.posts_on(dt.date(2022, 1, 7))
            if p.topic == "outage_report"
        ]
        assert any(p.comment_texts for p in posts)

    def test_big_outage_confirmed_from_many_countries(self, small_corpus):
        """§4.1: Redditors from 14 countries confirmed the Apr 22 outage."""
        posts = [
            p for p in small_corpus.posts_on(dt.date(2022, 4, 22))
            if p.topic == "outage_report"
        ]
        countries = set()
        for p in posts:
            for comment in p.comment_texts:
                for token in comment.replace(",", " ").replace(".", " ").split():
                    if token.isupper() and len(token) == 2:
                        countries.add(token)
        assert len(countries) >= 10

    def test_speed_shares_have_ground_truth(self, small_corpus):
        for post in small_corpus.speed_shares():
            assert post.speed_test is not None
            assert post.topic == "speed_test_share"

    def test_daily_counts_sum_to_total(self, small_corpus):
        series = small_corpus.daily_counts()
        assert series.values.sum() == len(small_corpus)


class TestQueryIndexMemo:
    """posts_on / speed_shares ride one lazily-built by-day index."""

    def test_index_is_built_once_and_reused(self, small_corpus):
        small_corpus.__dict__.pop("_query_index_cache", None)
        small_corpus.posts_on(dt.date(2022, 3, 2))
        memo = small_corpus.__dict__["_query_index_cache"]
        small_corpus.posts_on(dt.date(2022, 3, 3))
        small_corpus.speed_shares()
        assert small_corpus.__dict__["_query_index_cache"] is memo

    def test_results_match_a_linear_scan(self, small_corpus):
        day = dt.date(2022, 4, 22)
        assert small_corpus.posts_on(day) == [
            p for p in small_corpus if p.date == day
        ]
        assert small_corpus.speed_shares() == [
            p for p in small_corpus if p.speed_test is not None
        ]

    def test_missing_day_returns_empty_list(self, small_corpus):
        assert small_corpus.posts_on(dt.date(1999, 1, 1)) == []

    def test_callers_get_fresh_lists(self, small_corpus):
        day = dt.date(2022, 4, 22)
        first = small_corpus.posts_on(day)
        first.clear()
        assert small_corpus.posts_on(day) != []
        shares = small_corpus.speed_shares()
        shares.clear()
        assert small_corpus.speed_shares() != []

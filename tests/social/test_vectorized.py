"""Equivalence and determinism pins for the vectorized corpus engine.

Contract (see :mod:`repro.social.vectorized`): per-day substreams keep
the daily post counts draw-identical to the record path; everything
downstream of the first two draws is re-ordered into block form, so the
corpus is *statistically* equivalent — and *byte-identical* within the
vectorized path across worker counts and cache round-trips.
"""

import datetime as dt
from collections import Counter

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.perf.cache import ArtifactCache
from repro.perf.columnar import CorpusColumns
from repro.social.corpus import CorpusConfig, CorpusGenerator

SPAN = dict(span_start=dt.date(2022, 3, 1), span_end=dt.date(2022, 4, 30))


def config_for(seed, workers=1, **kwargs):
    kwargs.setdefault("author_pool_size", 200)
    return CorpusConfig(seed=seed, workers=workers, **SPAN, **kwargs)


def columns_for(seed, workers=1, cache=None, **kwargs):
    gen = CorpusGenerator(config_for(seed, workers=workers, **kwargs))
    return gen.generate_columns(cache=cache)


def assert_columns_identical(a, b):
    assert (a.span_start, a.span_end) == (b.span_start, b.span_end)
    for name in ("post_id", "author", "topic", "full_text", "created",
                 "month"):
        assert getattr(a, name) == getattr(b, name), name
    for name in ("day_index", "popularity", "speed_indices"):
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), name


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        assert_columns_identical(columns_for(11), columns_for(11))

    def test_seed_changes_output(self):
        assert columns_for(11).post_id != columns_for(12).post_id

    def test_workers_are_invisible(self):
        assert_columns_identical(columns_for(11), columns_for(11, workers=3))

    def test_cache_round_trip_preserves_columns_without_posts(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        built = columns_for(11, cache=cache)
        loaded = columns_for(11, cache=cache)
        assert_columns_identical(built, loaded)
        # The vectorized path never materializes Post objects; the cache
        # must round-trip that honestly rather than inventing them.
        assert built.posts is None and loaded.posts is None
        with pytest.raises(SchemaError):
            loaded.speed_share_posts()


class TestRecordEquivalence:
    @pytest.fixture(scope="class")
    def pair(self):
        gen = CorpusGenerator(config_for(21))
        return gen.generate(), gen.generate_columns()

    def test_daily_counts_are_draw_identical(self, pair):
        # n_posts comes off each day's substream before the paths
        # diverge, so per-day counts match exactly — not just in
        # distribution.
        corpus, cols = pair
        rec = Counter(p.date for p in corpus)
        start = cols.span_start
        vec = Counter(
            start + dt.timedelta(days=int(d)) for d in cols.day_index
        )
        assert rec == vec
        assert len(cols) == len(corpus)

    def test_sorted_by_created_with_unique_ids(self, pair):
        _, cols = pair
        assert cols.created == sorted(cols.created)
        assert len(set(cols.post_id)) == len(cols)

    def test_speed_indices_point_at_speed_posts(self, pair):
        corpus, cols = pair
        topics = np.array(cols.topic)
        assert set(topics[cols.speed_indices]) == {"speed_test_share"}
        # Internally exact: every speed post is indexed, none missed.
        assert len(cols.speed_indices) == int(
            np.count_nonzero(topics == "speed_test_share")
        )
        # Vs record only statistical — topic draws sit after the paths
        # diverge, so counts agree in distribution, not draw-for-draw.
        assert len(cols.speed_indices) == pytest.approx(
            len(corpus.speed_shares()), rel=0.10
        )

    def test_topic_mix_matches(self, pair):
        corpus, cols = pair
        rec = Counter(p.topic for p in corpus)
        vec = Counter(cols.topic)
        for topic, n in rec.items():
            if n < 30:  # rare topics are too noisy to pin tightly
                continue
            assert vec.get(topic, 0) == pytest.approx(n, rel=0.25), topic

    def test_popularity_mean_matches(self, pair):
        corpus, cols = pair
        rec = np.mean([p.popularity for p in corpus])
        assert cols.popularity.mean() == pytest.approx(rec, rel=0.15)


class TestConcat:
    def _chunk(self, day0, n, speed_at=()):
        created = [
            dt.datetime(2022, 3, 1 + day0, 10 + i % 6, 0) for i in range(n)
        ]
        return CorpusColumns(
            span_start=dt.date(2022, 3, 1),
            span_end=dt.date(2022, 3, 10),
            post_id=[f"d{day0}_{i}" for i in range(n)],
            author=["a"] * n,
            topic=["experience"] * n,
            full_text=["text"] * n,
            created=created,
            day_index=np.full(n, day0, dtype=np.int64),
            month=[(2022, 3)] * n,
            popularity=np.arange(n, dtype=float),
            speed_indices=np.array(sorted(speed_at), dtype=np.int64),
        )

    def test_rejects_empty_chunk_list(self):
        with pytest.raises(SchemaError):
            CorpusColumns.concat([])

    def test_rejects_span_mismatch(self):
        a = self._chunk(0, 2)
        b = self._chunk(1, 2)
        b.span_end = dt.date(2022, 3, 11)
        with pytest.raises(SchemaError):
            CorpusColumns.concat([a, b])

    def test_single_chunk_passthrough(self):
        a = self._chunk(0, 3)
        assert CorpusColumns.concat([a]) is a

    def test_speed_indices_are_reoffset(self):
        a = self._chunk(0, 3, speed_at=(1,))
        b = self._chunk(1, 4, speed_at=(0, 2))
        merged = CorpusColumns.concat([a, b])
        assert len(merged) == 7
        assert merged.speed_indices.tolist() == [1, 3, 5]
        assert merged.post_id == a.post_id + b.post_id

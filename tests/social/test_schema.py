"""Tests for the social schema."""

import datetime as dt

import pytest

from repro.errors import SchemaError
from repro.social.schema import Post, SpeedTestShare


def post(**overrides):
    defaults = dict(
        post_id="t3_1",
        created=dt.datetime(2022, 4, 22, 9, 30),
        author="redditor_1",
        title="Outage?",
        text="Is it down for anyone else?",
        upvotes=10,
        n_comments=4,
        topic="outage_report",
    )
    defaults.update(overrides)
    return Post(**defaults)


class TestSpeedTestShare:
    def test_valid(self):
        share = SpeedTestShare(provider="ookla", download_mbps=90,
                               upload_mbps=12, latency_ms=40)
        assert share.download_mbps == 90

    def test_rejects_unknown_provider(self):
        with pytest.raises(SchemaError):
            SpeedTestShare(provider="dialup", download_mbps=1,
                           upload_mbps=1, latency_ms=1)

    def test_rejects_nonpositive_values(self):
        with pytest.raises(SchemaError):
            SpeedTestShare(provider="ookla", download_mbps=0,
                           upload_mbps=1, latency_ms=1)


class TestPost:
    def test_valid(self):
        p = post()
        assert p.date == dt.date(2022, 4, 22)
        assert p.popularity == 14.0

    def test_rejects_unknown_topic(self):
        with pytest.raises(SchemaError):
            post(topic="memes")

    def test_rejects_negative_popularity(self):
        with pytest.raises(SchemaError):
            post(upvotes=-1)

    def test_rejects_excess_comment_texts(self):
        with pytest.raises(SchemaError):
            post(n_comments=1, comment_texts=("a", "b"))

    def test_rejects_empty_content(self):
        with pytest.raises(SchemaError):
            post(title="", text="")

    def test_full_text_joins_title_and_body(self):
        p = post()
        assert "Outage?" in p.full_text
        assert "anyone else" in p.full_text

    def test_thread_text_includes_comments(self):
        p = post(n_comments=2, comment_texts=("Down here too.",))
        assert "Down here too." in p.thread_text

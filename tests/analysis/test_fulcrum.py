"""Tests for the §4.2 shifting-fulcrum analysis."""

import numpy as np
import pytest

from repro.analysis.fulcrum import pos_vs_speed
from repro.analysis.sentiment_timeline import sentiment_timeline
from repro.analysis.speed_tracker import track_speeds
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def fulcrum(full_corpus):
    timeline = sentiment_timeline(full_corpus)
    track = track_speeds(full_corpus)
    return pos_vs_speed(full_corpus, track.median, scores=timeline.scores)


class TestPosVsSpeed:
    def test_pos_bounded(self, fulcrum):
        finite = fulcrum.pos.values[~np.isnan(fulcrum.pos.values)]
        assert (finite >= 0).all() and (finite <= 1).all()
        assert len(finite) >= 15

    def test_pos_broadly_follows_speed(self, fulcrum):
        assert fulcrum.correlation() > 0.1

    def test_dec21_vs_apr21_exception(self, fulcrum):
        """Higher speed, drastically lower Pos — conditioning at work."""
        numbers = fulcrum.exception_dec21_vs_apr21()
        assert numbers["speed_dec21"] > numbers["speed_apr21"]
        assert numbers["pos_dec21"] < numbers["pos_apr21"] - 0.05

    def test_2022_inversion(self, fulcrum):
        """Speeds fall Mar–Dec '22 while Pos recovers."""
        trends = fulcrum.inversion_2022()
        assert trends["speed_trend"] < 0
        assert trends["pos_trend"] > 0

    def test_rejects_empty_months(self, small_corpus, fulcrum):
        with pytest.raises(AnalysisError):
            pos_vs_speed(small_corpus, fulcrum.speed, min_strong_posts=10_000)

"""Tests for the Fig. 6 outage-keyword monitor."""

import datetime as dt

import pytest

from repro.analysis.outage_monitor import outage_keyword_series
from repro.analysis.sentiment_timeline import sentiment_timeline
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def scored(full_corpus):
    return sentiment_timeline(full_corpus)


@pytest.fixture(scope="module")
def series(full_corpus, scored):
    return outage_keyword_series(full_corpus, scores=scored.scores)


class TestOutageSeries:
    def test_top_spikes_are_jan7_and_aug30(self, series):
        """Fig. 6: the two largest keyword spikes."""
        spikes = {day for day, _ in series.top_spike_days(2)}
        assert spikes == {dt.date(2022, 1, 7), dt.date(2022, 8, 30)}

    def test_april22_present_but_below_top2(self, series):
        top2_floor = min(v for _, v in series.top_spike_days(2))
        april = series.occurrences[dt.date(2022, 4, 22)]
        assert 0 < april < top2_floor

    def test_transient_peaks_numerous(self, series):
        """"numerous shorter peaks ... correspond to local transient
        outages" — well above what the three headline events explain."""
        headline_value = min(v for _, v in series.top_spike_days(2))
        transients = series.transient_peak_days(
            spike_threshold=headline_value * 0.3, floor=3.0
        )
        assert len(transients) > 50

    def test_negative_filter_reduces_counts(self, full_corpus, scored):
        filtered = outage_keyword_series(full_corpus, scores=scored.scores,
                                         negative_only=True)
        unfiltered = outage_keyword_series(full_corpus, scores=scored.scores,
                                           negative_only=False)
        assert unfiltered.occurrences.values.sum() > (
            filtered.occurrences.values.sum()
        )

    def test_threads_counted(self, series):
        assert series.threads[dt.date(2022, 1, 7)] > 10

    def test_transient_validation(self, series):
        with pytest.raises(AnalysisError):
            series.transient_peak_days(spike_threshold=1.0, floor=2.0)

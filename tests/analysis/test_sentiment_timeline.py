"""Tests for the Fig. 5a pipeline."""

import datetime as dt

import pytest

from repro.analysis.sentiment_timeline import sentiment_timeline
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def timeline(full_corpus):
    return sentiment_timeline(full_corpus)


class TestSentimentTimeline:
    def test_series_span_matches_corpus(self, timeline, full_corpus):
        assert timeline.strong_positive.start == full_corpus.config.span_start
        assert timeline.strong_positive.end == full_corpus.config.span_end

    def test_every_post_scored(self, timeline, full_corpus):
        assert len(timeline.scores) == len(full_corpus)

    def test_counts_consistent_with_scores(self, timeline, full_corpus):
        strong_pos = sum(
            1 for s in timeline.scores.values() if s.is_strong_positive
        )
        assert timeline.strong_positive.values.sum() == strong_pos

    def test_top3_peaks_are_the_paper_events(self, timeline):
        """The headline claim of §4.1."""
        peaks = {day for day, _ in timeline.top_peaks(3)}
        assert peaks == {
            dt.date(2021, 2, 9),
            dt.date(2021, 11, 24),
            dt.date(2022, 4, 22),
        }

    def test_peak_polarities(self, timeline):
        assert timeline.peak_polarity(dt.date(2021, 2, 9)) == "positive"
        assert timeline.peak_polarity(dt.date(2021, 11, 24)) == "negative"
        assert timeline.peak_polarity(dt.date(2022, 4, 22)) == "negative"

    def test_polarity_rejects_empty_day(self, timeline, full_corpus):
        # Find a day with zero strong posts.
        for day, value in timeline.combined().items():
            if value == 0:
                with pytest.raises(AnalysisError):
                    timeline.peak_polarity(day)
                return
        pytest.skip("every day had strong posts")

    def test_scoring_unit_ablation(self, small_corpus):
        """Post-only vs whole-thread scoring ranks the same worst days.

        The paper scores posts; an alternative unit is the full thread.
        The headline outage days must dominate either way."""
        import datetime as dt

        from repro.nlp.sentiment import SentimentAnalyzer
        from repro.social.threads import ThreadExpander

        expanded = ThreadExpander(seed=1).expand(small_corpus)
        analyzer = SentimentAnalyzer()

        def worst_days(corpus, text_of):
            daily = {}
            for post in corpus:
                if analyzer.score(text_of(post)).is_strong_negative:
                    daily[post.date] = daily.get(post.date, 0) + 1
            return {
                d for d, _ in sorted(daily.items(), key=lambda kv: -kv[1])[:2]
            }

        post_unit = worst_days(expanded, lambda p: p.full_text)
        thread_unit = worst_days(expanded, lambda p: p.thread_text)
        headline = {dt.date(2022, 1, 7), dt.date(2022, 4, 22)}
        assert post_unit == headline
        assert thread_unit == headline

    def test_combined_is_sum(self, timeline):
        combined = timeline.combined()
        total = (
            timeline.strong_positive.values + timeline.strong_negative.values
        )
        assert (combined.values == total).all()

"""Tests for peak annotation (word clouds + news)."""

import datetime as dt

import pytest

from repro.analysis.peak_annotation import annotate_peak
from repro.errors import AnalysisError
from repro.social.events import EventCalendar, build_news_index


@pytest.fixture(scope="module")
def index():
    return build_news_index(EventCalendar())


class TestAnnotatePeak:
    def test_preorder_peak_explained(self, full_corpus, index):
        annotation = annotate_peak(full_corpus, index, dt.date(2021, 2, 9))
        assert annotation.explained_by_news
        assert "preorders" in annotation.headline.lower()

    def test_delay_peak_explained(self, full_corpus, index):
        annotation = annotate_peak(full_corpus, index, dt.date(2021, 11, 24))
        assert annotation.explained_by_news

    def test_april_outage_unexplained(self, full_corpus, index):
        """The paper's negative result: a clear peak, no news."""
        annotation = annotate_peak(full_corpus, index, dt.date(2022, 4, 22))
        assert not annotation.explained_by_news
        assert annotation.headline is None

    def test_april_cloud_contains_outage_in_top3(self, full_corpus, index):
        """Fig. 5b: 'outage' among the top cloud words on 22 Apr '22."""
        annotation = annotate_peak(full_corpus, index, dt.date(2022, 4, 22))
        assert "outage" in annotation.search_keywords

    def test_keywords_are_top_cloud_unigrams(self, full_corpus, index):
        annotation = annotate_peak(full_corpus, index, dt.date(2021, 2, 9))
        top = [w for w, _ in annotation.cloud.top_unigrams(3)]
        assert list(annotation.search_keywords) == top

    def test_empty_day_raises(self, index, small_corpus):
        with pytest.raises(AnalysisError):
            # Day before the small corpus starts has no posts.
            annotate_peak(small_corpus, index, dt.date(2021, 6, 1))

"""Tests for the Fig. 7 OCR speed-tracking pipeline."""

import numpy as np
import pytest

from repro.analysis.speed_tracker import track_speeds
from repro.errors import AnalysisError
from repro.ocr.noise import NoiseModel


@pytest.fixture(scope="module")
def track(full_corpus):
    return track_speeds(full_corpus)


class TestTrackSpeeds:
    def test_funnel_counts(self, track):
        assert track.n_shared > 1000
        assert 0 < track.n_extracted <= track.n_shared
        assert track.extraction_rate > 0.8

    def test_monthly_medians_cover_span(self, track):
        populated = sum(1 for _, v in track.median.items() if not np.isnan(v))
        assert populated >= 20  # nearly all 24 months

    def test_speeds_rise_then_fall(self, track):
        assert track.median.slice((2021, 1), (2021, 9)).trend() > 0
        assert track.median.slice((2021, 9), (2022, 12)).trend() < 0

    def test_subsample_stability(self, track):
        """§4.2: medians with 95%/90% of the data closely follow."""
        assert set(track.subsampled) == {0.95, 0.90}
        assert track.max_subsample_deviation() < 0.15

    def test_extracted_medians_track_truth(self, track, full_corpus):
        """OCR noise must not bias the medians (medians are robust)."""
        truth = {}
        for post in full_corpus.speed_shares():
            month = (post.date.year, post.date.month)
            truth.setdefault(month, []).append(post.speed_test.download_mbps)
        for month, values in truth.items():
            if len(values) < 20:
                continue
            measured = track.median[month]
            if np.isnan(measured):
                continue
            assert measured == pytest.approx(float(np.median(values)), rel=0.15)

    def test_provider_breakdown_present(self, track):
        assert {"ookla", "starlink_app"} <= set(track.by_provider)

    def test_providers_agree(self, track):
        """Pooling across providers is sound: no provider's monthly
        median strays far from the pooled one.

        The bound is statistical, not exact: across seeds the agreement
        statistic lands around 0.33–0.38 (per-provider monthly medians
        are sparse), so 0.45 flags genuine divergence without pinning
        one RNG draw.
        """
        assert track.provider_agreement() < 0.45

    def test_provider_series_share_span(self, track):
        for series in track.by_provider.values():
            assert series.start == track.median.start
            assert series.end == track.median.end

    def test_clean_noise_model_higher_extraction(self, full_corpus, track):
        clean = track_speeds(full_corpus, noise=NoiseModel.clean())
        assert clean.extraction_rate >= track.extraction_rate

    def test_rejects_corpus_without_shares(self, small_corpus):
        class Empty:
            config = small_corpus.config

            @staticmethod
            def speed_shares():
                return []

        with pytest.raises(AnalysisError):
            track_speeds(Empty())

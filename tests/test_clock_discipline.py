"""Tier-1 wiring for the clock lint (tools/check_clock_discipline.py)."""

import importlib.util
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TOOL = REPO / "tools" / "check_clock_discipline.py"


def _load_tool():
    spec = importlib.util.spec_from_file_location("check_clock_discipline",
                                                  TOOL)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _covered(tmp_path, source, subdir=("repro", "serving")):
    target = tmp_path.joinpath(*subdir)
    target.mkdir(parents=True, exist_ok=True)
    path = target / "x.py"
    path.write_text(source)
    return path


def test_src_tree_is_clean():
    tool = _load_tool()
    violations = tool.check_tree(REPO / "src")
    assert violations == [], "\n".join(
        f"{p}:{line}: {msg}" for p, line, msg in violations
    )


def test_detects_module_attribute_calls(tmp_path):
    tool = _load_tool()
    for call in ("time.time()", "time.monotonic()", "time.sleep(1)",
                 "time.perf_counter()"):
        path = _covered(tmp_path, f"import time\nx = {call}\n")
        violations = tool.check_file(path)
        assert len(violations) == 1, call
        assert "injected Clock" in violations[0][2]


def test_detects_aliased_imports(tmp_path):
    tool = _load_tool()
    path = _covered(tmp_path, "import time as t\nt.sleep(1)\n")
    assert len(tool.check_file(path)) == 1
    path = _covered(tmp_path, "from time import sleep\nsleep(1)\n")
    assert len(tool.check_file(path)) == 1
    path = _covered(tmp_path, "from time import monotonic as now\nnow()\n")
    assert len(tool.check_file(path)) == 1


def test_every_covered_package_is_checked(tmp_path):
    tool = _load_tool()
    for subdir in (("repro", "serving"), ("repro", "resilience"),
                   ("repro", "streaming"), ("repro", "prediction"),
                   ("repro", "core", "usaas")):
        path = _covered(tmp_path, "import time\ntime.time()\n", subdir)
        assert len(tool.check_file(path)) == 1, subdir


def test_cluster_modules_are_covered_anywhere_under_repro(tmp_path):
    """cluster*.py is deterministic-by-contract: covered even outside
    the covered directories, so a refactor can't silently drop it."""
    tool = _load_tool()
    for subdir, name in (
        (("repro", "serving"), "cluster.py"),
        (("repro", "serving"), "cluster_soak.py"),
        (("repro",), "cluster.py"),
        (("repro", "future_pkg"), "cluster_router.py"),
    ):
        target = tmp_path.joinpath(*subdir)
        target.mkdir(parents=True, exist_ok=True)
        path = target / name
        path.write_text("import time\ntime.time()\n")
        assert len(tool.check_file(path)) == 1, (subdir, name)


def test_vectorized_modules_are_covered_anywhere_under_repro(tmp_path):
    """vectorized*.py shares the cluster contract (byte-identical output
    per seed), so the block engines stay covered wherever they live."""
    tool = _load_tool()
    for subdir, name in (
        (("repro", "netsim"), "vectorized.py"),
        (("repro", "telemetry"), "vectorized.py"),
        (("repro", "social"), "vectorized.py"),
        (("repro", "future_pkg"), "vectorized_corpus.py"),
    ):
        target = tmp_path.joinpath(*subdir)
        target.mkdir(parents=True, exist_ok=True)
        path = target / name
        path.write_text("import time\ntime.time()\n")
        assert len(tool.check_file(path)) == 1, (subdir, name)


def test_cluster_stem_outside_repro_is_not_covered(tmp_path):
    tool = _load_tool()
    target = tmp_path / "scripts"
    target.mkdir(parents=True)
    path = target / "cluster.py"
    path.write_text("import time\ntime.time()\n")
    assert tool.check_file(path) == []


def test_clock_seam_is_exempt(tmp_path):
    """repro/resilience/clock.py is the one sanctioned wall-clock user."""
    tool = _load_tool()
    target = tmp_path / "repro" / "resilience"
    target.mkdir(parents=True)
    seam = target / "clock.py"
    seam.write_text("import time\n\ndef now():\n    return time.monotonic()\n")
    assert tool.check_file(seam) == []


def test_uncovered_code_may_use_time(tmp_path):
    tool = _load_tool()
    target = tmp_path / "repro" / "telemetry"
    target.mkdir(parents=True)
    ok = target / "x.py"
    ok.write_text("import time\ntime.time()\n")
    assert tool.check_file(ok) == []


def test_clock_methods_are_not_flagged(tmp_path):
    """clock.sleep()/clock.now() on an injected Clock are the fix, not
    a violation — only the *time module's* attributes are banned."""
    tool = _load_tool()
    path = _covered(
        tmp_path,
        "def f(clock):\n    clock.sleep(1)\n    return clock.now()\n",
    )
    assert tool.check_file(path) == []


def test_cli_entrypoint(tmp_path):
    tool = _load_tool()
    _covered(tmp_path, "import time\ntime.time()\n")
    assert tool.main(["prog", str(tmp_path)]) == 1
    _covered(tmp_path, "x = 1\n")
    assert tool.main(["prog", str(tmp_path)]) == 0
    assert tool.main(["prog", str(tmp_path / "missing")]) == 2

"""Tests for repro.core.timeline."""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.timeline import (
    DailySeries,
    MonthlySeries,
    align_series,
    iter_days,
    iter_months,
    month_of,
)
from repro.errors import AnalysisError

JAN1 = dt.date(2022, 1, 1)
JAN31 = dt.date(2022, 1, 31)


class TestIterators:
    def test_iter_days_inclusive(self):
        days = list(iter_days(JAN1, dt.date(2022, 1, 3)))
        assert len(days) == 3
        assert days[0] == JAN1 and days[-1] == dt.date(2022, 1, 3)

    def test_iter_days_rejects_reversed(self):
        with pytest.raises(AnalysisError):
            list(iter_days(JAN31, JAN1))

    def test_iter_months_crosses_year(self):
        months = list(iter_months((2021, 11), (2022, 2)))
        assert months == [(2021, 11), (2021, 12), (2022, 1), (2022, 2)]

    def test_month_of(self):
        assert month_of(dt.date(2022, 4, 22)) == (2022, 4)


class TestDailySeries:
    def test_zeros_and_indexing(self):
        s = DailySeries.zeros(JAN1, JAN31)
        assert len(s) == 31
        assert s[JAN1] == 0.0
        s[JAN1] = 5.0
        assert s[JAN1] == 5.0

    def test_add_accumulates(self):
        s = DailySeries.zeros(JAN1, JAN31)
        s.add(JAN1)
        s.add(JAN1, 2.0)
        assert s[JAN1] == 3.0

    def test_out_of_span_raises(self):
        s = DailySeries.zeros(JAN1, JAN31)
        with pytest.raises(AnalysisError):
            s[dt.date(2022, 2, 1)]

    def test_contains(self):
        s = DailySeries.zeros(JAN1, JAN31)
        assert JAN1 in s
        assert dt.date(2021, 12, 31) not in s

    def test_from_mapping(self):
        s = DailySeries.from_mapping({JAN1: 3.0, JAN31: 7.0})
        assert s.start == JAN1 and s.end == JAN31
        assert s[dt.date(2022, 1, 15)] == 0.0

    def test_from_empty_mapping_needs_span(self):
        with pytest.raises(AnalysisError):
            DailySeries.from_mapping({})
        s = DailySeries.from_mapping({}, start=JAN1, end=JAN31)
        assert len(s) == 31

    def test_top_peaks_respects_separation(self):
        s = DailySeries.zeros(JAN1, JAN31)
        s[dt.date(2022, 1, 10)] = 100
        s[dt.date(2022, 1, 11)] = 90  # neighbour must be suppressed
        s[dt.date(2022, 1, 25)] = 80
        peaks = s.top_peaks(2, min_separation_days=7)
        days = [d for d, _ in peaks]
        assert dt.date(2022, 1, 10) in days
        assert dt.date(2022, 1, 25) in days
        assert dt.date(2022, 1, 11) not in days

    def test_weekly_average(self):
        s = DailySeries.zeros(JAN1, dt.date(2022, 1, 14))  # exactly 2 weeks
        for day, _ in s.items():
            s[day] = 1.0
        assert s.weekly_average() == pytest.approx(7.0)

    def test_monthly_rollup(self):
        s = DailySeries.zeros(JAN1, dt.date(2022, 2, 28))
        s[JAN1] = 10
        s[dt.date(2022, 2, 1)] = 20
        monthly = s.monthly("sum")
        assert monthly[(2022, 1)] == 10
        assert monthly[(2022, 2)] == 20

    def test_monthly_rejects_unknown_reducer(self):
        s = DailySeries.zeros(JAN1, JAN31)
        with pytest.raises(AnalysisError):
            s.monthly("max")

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_length_matches_span(self, n_days):
        end = JAN1 + dt.timedelta(days=n_days - 1)
        s = DailySeries.zeros(JAN1, end)
        assert len(s) == n_days
        assert len(s.days()) == n_days


class TestMonthlySeries:
    def test_indexing_roundtrip(self):
        s = MonthlySeries.zeros((2021, 1), (2021, 12))
        s[(2021, 6)] = 42.0
        assert s[(2021, 6)] == 42.0
        assert len(s) == 12

    def test_slice(self):
        s = MonthlySeries.from_mapping({(2021, m): float(m) for m in range(1, 13)})
        sub = s.slice((2021, 3), (2021, 5))
        assert len(sub) == 3
        assert sub[(2021, 4)] == 4.0

    def test_slice_rejects_out_of_span(self):
        s = MonthlySeries.zeros((2021, 1), (2021, 3))
        with pytest.raises(AnalysisError):
            s.slice((2020, 12), (2021, 2))

    def test_trend_sign(self):
        rising = MonthlySeries.from_mapping(
            {(2021, m): float(m) for m in range(1, 7)}
        )
        falling = MonthlySeries.from_mapping(
            {(2021, m): float(-m) for m in range(1, 7)}
        )
        assert rising.trend() > 0
        assert falling.trend() < 0

    def test_trend_ignores_nan(self):
        s = MonthlySeries.zeros((2021, 1), (2021, 4))
        s[(2021, 1)] = 1.0
        s[(2021, 4)] = 4.0
        assert s.trend() == pytest.approx(1.0)

    def test_trend_needs_two_points(self):
        s = MonthlySeries.zeros((2021, 1), (2021, 3))
        s[(2021, 2)] = 1.0
        with pytest.raises(AnalysisError):
            s.trend()


class TestAlign:
    def test_align_drops_nan_months(self):
        a = MonthlySeries.from_mapping({(2021, 1): 1.0, (2021, 2): 2.0})
        b = MonthlySeries.zeros((2021, 1), (2021, 2))
        b[(2021, 1)] = 10.0  # Feb stays NaN
        months, av, bv = align_series(a, b)
        assert months == [(2021, 1)]
        assert av.tolist() == [1.0]
        assert bv.tolist() == [10.0]

    def test_align_disjoint_spans(self):
        a = MonthlySeries.from_mapping({(2021, 1): 1.0})
        b = MonthlySeries.from_mapping({(2022, 1): 1.0})
        months, av, bv = align_series(a, b)
        assert months == [] and len(av) == 0 and len(bv) == 0

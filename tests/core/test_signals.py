"""Tests for repro.core.signals."""

import datetime as dt

import pytest

from repro.core.signals import (
    ExplicitSignal,
    ImplicitSignal,
    Signal,
    SignalKind,
    SignalSeries,
)
from repro.errors import SchemaError

TS = dt.datetime(2022, 3, 1, 10, 0)


def make_signal(metric="presence", value=80.0, **attrs):
    return ImplicitSignal(TS, "starlink", metric, value, service="teams", **attrs)


class TestSignal:
    def test_constructors_set_kind(self):
        assert make_signal().kind is SignalKind.IMPLICIT
        assert ExplicitSignal(TS, "starlink", "rating", 4.0).kind is SignalKind.EXPLICIT

    def test_attrs_sorted_and_readable(self):
        s = make_signal(platform="ios", country="US")
        assert s.attr("platform") == "ios"
        assert s.attr("country") == "US"
        assert s.attr("missing") is None
        assert s.attr("missing", "x") == "x"

    def test_requires_network_and_metric(self):
        with pytest.raises(SchemaError):
            Signal(SignalKind.IMPLICIT, TS, "", "m", 1.0)
        with pytest.raises(SchemaError):
            Signal(SignalKind.IMPLICIT, TS, "net", "", 1.0)

    def test_rejects_negative_weight(self):
        with pytest.raises(SchemaError):
            Signal(SignalKind.IMPLICIT, TS, "net", "m", 1.0, weight=-1)

    def test_date_property(self):
        assert make_signal().date == dt.date(2022, 3, 1)


class TestSignalSeries:
    def test_append_and_len(self):
        series = SignalSeries()
        series.append(make_signal())
        assert len(series) == 1

    def test_append_rejects_non_signal(self):
        with pytest.raises(SchemaError):
            SignalSeries().append("not a signal")

    def test_filter_by_kind_network_metric(self):
        series = SignalSeries([
            make_signal("presence"),
            make_signal("cam_on"),
            ExplicitSignal(TS, "starlink", "rating", 5.0),
            ImplicitSignal(TS, "fiber", "presence", 90.0),
        ])
        assert len(series.filter(metric="presence")) == 2
        assert len(series.filter(network="starlink", metric="presence")) == 1
        assert len(series.filter(kind=SignalKind.EXPLICIT)) == 1

    def test_filter_by_time(self):
        early = ImplicitSignal(TS, "n", "m", 1.0)
        late = ImplicitSignal(TS + dt.timedelta(days=5), "n", "m", 2.0)
        series = SignalSeries([early, late])
        assert len(series.filter(start=TS + dt.timedelta(days=1))) == 1
        assert len(series.filter(end=TS + dt.timedelta(days=1))) == 1

    def test_filter_by_attr(self):
        series = SignalSeries([
            make_signal(platform="ios"),
            make_signal(platform="windows"),
        ])
        assert len(series.filter(platform="ios")) == 1

    def test_metrics_sorted_unique(self):
        series = SignalSeries([make_signal("b"), make_signal("a"), make_signal("a")])
        assert series.metrics() == ["a", "b"]

    def test_weighted_mean(self):
        series = SignalSeries([
            ImplicitSignal(TS, "n", "m", 10.0, weight=1.0),
            ImplicitSignal(TS, "n", "m", 20.0, weight=3.0),
        ])
        assert series.weighted_mean() == pytest.approx(17.5)

    def test_weighted_mean_rejects_empty(self):
        with pytest.raises(SchemaError):
            SignalSeries().weighted_mean()

    def test_weighted_mean_rejects_all_zero_weights(self):
        series = SignalSeries([ImplicitSignal(TS, "n", "m", 1.0, weight=0.0)])
        with pytest.raises(SchemaError):
            series.weighted_mean()

    def test_daily_mean_groups_by_date(self):
        other_day = TS + dt.timedelta(days=1)
        series = SignalSeries([
            ImplicitSignal(TS, "n", "m", 10.0),
            ImplicitSignal(TS.replace(hour=20), "n", "m", 30.0),
            ImplicitSignal(other_day, "n", "m", 50.0),
        ])
        daily = series.daily_mean()
        assert daily[TS.date()] == pytest.approx(20.0)
        assert daily[other_day.date()] == pytest.approx(50.0)

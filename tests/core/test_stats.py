"""Tests for repro.core.stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    BinnedCurve,
    bin_statistic,
    bootstrap_ci,
    pearson,
    percentile,
    spearman,
)
from repro.errors import AnalysisError


class TestBinStatistic:
    def test_means_land_in_right_bins(self):
        curve = bin_statistic(
            key=[0.5, 0.6, 1.5, 1.6, 2.5],
            values=[10, 20, 30, 50, 100],
            edges=[0, 1, 2, 3],
        )
        assert curve.n_bins == 3
        assert curve.stat[0] == pytest.approx(15.0)
        assert curve.stat[1] == pytest.approx(40.0)
        assert curve.stat[2] == pytest.approx(100.0)
        assert list(curve.counts) == [2, 2, 1]

    def test_out_of_range_keys_dropped(self):
        curve = bin_statistic([-5, 0.5, 99], [1, 2, 3], [0, 1])
        assert curve.counts[0] == 1
        assert curve.stat[0] == pytest.approx(2.0)

    def test_right_edge_inclusive(self):
        curve = bin_statistic([1.0], [7], [0, 0.5, 1.0])
        assert curve.counts[1] == 1

    def test_empty_bin_is_nan(self):
        curve = bin_statistic([0.5], [1], [0, 1, 2])
        assert np.isnan(curve.stat[1])

    def test_median_and_p95(self):
        values = list(range(101))
        keys = [0.5] * 101
        median = bin_statistic(keys, values, [0, 1], statistic="median")
        p95 = bin_statistic(keys, values, [0, 1], statistic="p95")
        assert median.stat[0] == pytest.approx(50.0)
        assert p95.stat[0] == pytest.approx(95.0)

    def test_rejects_unknown_statistic(self):
        with pytest.raises(AnalysisError):
            bin_statistic([1], [1], [0, 2], statistic="mode")

    def test_rejects_unsorted_edges(self):
        with pytest.raises(AnalysisError):
            bin_statistic([1], [1], [2, 0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(AnalysisError):
            bin_statistic([1, 2], [1], [0, 3])

    def test_nonempty_strips_empty_bins(self):
        curve = bin_statistic([0.5, 2.5], [1, 2], [0, 1, 2, 3])
        stripped = curve.nonempty()
        assert stripped.n_bins == 2
        assert not np.isnan(stripped.stat).any()

    @given(
        st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_counts_never_exceed_samples(self, keys):
        values = [1.0] * len(keys)
        curve = bin_statistic(keys, values, np.linspace(0, 10, 6))
        assert curve.counts.sum() <= len(keys)


class TestBinnedCurve:
    def test_validates_edge_count(self):
        with pytest.raises(AnalysisError):
            BinnedCurve(
                edges=np.array([0, 1]),
                centers=np.array([0.5, 1.5]),
                stat=np.array([1.0, 2.0]),
                counts=np.array([1, 1]),
            )

    def test_as_rows(self):
        curve = bin_statistic([0.5], [3.0], [0, 1])
        rows = curve.as_rows()
        assert rows == [(0.5, 3.0, 1)]


class TestCorrelations:
    def test_pearson_perfect_positive(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_pearson_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_pearson_constant_input_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_spearman_monotone_nonlinear(self):
        x = [1, 2, 3, 4, 5]
        y = [1, 8, 27, 64, 125]
        assert spearman(x, y) == pytest.approx(1.0)

    def test_spearman_handles_ties(self):
        r = spearman([1, 1, 2, 3], [1, 2, 3, 4])
        assert -1 <= r <= 1

    def test_rejects_single_sample(self):
        with pytest.raises(AnalysisError):
            pearson([1], [1])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=-100, max_value=100),
            ),
            min_size=2,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_correlations_bounded(self, pairs):
        x = [p[0] for p in pairs]
        y = [p[1] for p in pairs]
        assert -1.0001 <= pearson(x, y) <= 1.0001
        assert -1.0001 <= spearman(x, y) <= 1.0001


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3], 50) == 2.0

    def test_rejects_bad_q(self):
        with pytest.raises(AnalysisError):
            percentile([1], 101)

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            percentile([], 50)


class TestBootstrap:
    def test_ci_contains_estimate(self, fresh_rng):
        values = list(range(100))
        result = bootstrap_ci(values, rng=fresh_rng)
        assert result.low <= result.estimate <= result.high
        assert result.contains(result.estimate)

    def test_narrow_for_constant_data(self, fresh_rng):
        result = bootstrap_ci([5.0] * 50, rng=fresh_rng)
        assert result.width == 0.0
        assert result.estimate == 5.0

    def test_rejects_empty(self, fresh_rng):
        with pytest.raises(AnalysisError):
            bootstrap_ci([], rng=fresh_rng)

    def test_rejects_bad_confidence(self, fresh_rng):
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0], confidence=1.5, rng=fresh_rng)

"""Tests for ASCII table rendering."""

import pytest

from repro.errors import AnalysisError
from repro.io.tables import format_series, format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            ["metric", "value"],
            [["latency", 42.0], ["loss", 0.5]],
            title="Fig. 1",
        )
        lines = text.splitlines()
        assert lines[0] == "Fig. 1"
        assert "metric" in lines[1]
        assert "-" in lines[2]
        assert "42.00" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["x", 1], ["longer", 2]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[1])  # header matches rule width

    def test_mismatched_row_raises(self):
        with pytest.raises(AnalysisError):
            format_table(["a", "b"], [["only one"]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_floats_formatted(self):
        text = format_table(["v"], [[3.14159]])
        assert "3.14" in text and "3.14159" not in text


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series([(1, 10.0), (2, 20.0)], "month", "mbps")
        assert "month" in text and "mbps" in text
        assert "20.00" in text

"""Tests for JSONL helpers."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.io.jsonl import iter_jsonl, read_jsonl, write_jsonl


class TestRoundTrip:
    def test_basic(self, tmp_path):
        path = tmp_path / "x.jsonl"
        records = [{"a": 1}, {"b": [1, 2]}, "plain", 42]
        assert write_jsonl(path, records) == 4
        assert read_jsonl(path) == records

    def test_dates_serialised(self, tmp_path):
        path = tmp_path / "d.jsonl"
        write_jsonl(path, [{"day": dt.date(2022, 4, 22)}])
        assert read_jsonl(path) == [{"day": "2022-04-22"}]

    def test_numpy_scalars_serialised(self, tmp_path):
        path = tmp_path / "n.jsonl"
        write_jsonl(path, [{"v": np.float64(1.5), "i": np.int64(3)}])
        assert read_jsonl(path) == [{"v": 1.5, "i": 3}]

    def test_unserialisable_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        with pytest.raises(TypeError):
            write_jsonl(path, [{"f": object()}])

    def test_bad_line_reports_number(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(SchemaError, match="2"):
            read_jsonl(path)

    def test_iter_streams(self, tmp_path):
        path = tmp_path / "s.jsonl"
        write_jsonl(path, [{"i": i} for i in range(5)])
        assert sum(r["i"] for r in iter_jsonl(path)) == 10

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "b.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert len(read_jsonl(path)) == 2


class TestSalvage:
    def _mixed_file(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"ok": 1}\n'
            'not json at all\n'
            '{"ok": 2}\n'
            '{"truncated": \n'
            '\n'
            '{"ok": 3}\n'
        )
        return path

    def test_strict_read_still_aborts(self, tmp_path):
        from repro.io.jsonl import read_jsonl

        with pytest.raises(SchemaError, match="2"):
            read_jsonl(self._mixed_file(tmp_path))

    def test_salvage_keeps_good_lines_and_counts_bad(self, tmp_path):
        from repro.io.jsonl import salvage_jsonl

        result = salvage_jsonl(self._mixed_file(tmp_path))
        assert result.records == ({"ok": 1}, {"ok": 2}, {"ok": 3})
        assert result.n_bad == 2
        assert [line for line, _ in result.bad_lines] == [2, 4]
        assert not result.clean

    def test_salvage_quarantines_raw_lines(self, tmp_path):
        from repro.io.jsonl import salvage_jsonl

        quarantine = tmp_path / "bad.quarantine"
        result = salvage_jsonl(self._mixed_file(tmp_path), quarantine=quarantine)
        assert result.quarantine_path == str(quarantine)
        assert quarantine.read_text().splitlines() == [
            "not json at all",
            '{"truncated": ',
        ]

    def test_salvage_clean_file(self, tmp_path):
        from repro.io.jsonl import salvage_jsonl, write_jsonl

        path = tmp_path / "clean.jsonl"
        write_jsonl(path, [{"i": i} for i in range(3)])
        result = salvage_jsonl(path, quarantine=tmp_path / "q")
        assert result.clean
        assert result.quarantine_path is None
        assert not (tmp_path / "q").exists()

    def test_salvage_ceiling_rejects_garbage_files(self, tmp_path):
        from repro.io.jsonl import salvage_jsonl

        path = tmp_path / "garbage.jsonl"
        path.write_text("junk\nmore junk\n{\"ok\": 1}\n")
        with pytest.raises(SchemaError, match="ceiling"):
            salvage_jsonl(path, max_bad_fraction=0.5)

    def test_salvage_of_fault_injected_export(self, tmp_path):
        """End-to-end: chaos-corrupted JSONL -> salvage recovers the rest."""
        from repro.io.jsonl import salvage_jsonl, write_jsonl
        from repro.resilience import FaultPlan, FaultSpec

        path = tmp_path / "export.jsonl"
        write_jsonl(path, [{"i": i, "pad": "x" * 40} for i in range(40)])
        plan = FaultPlan(seed=21)
        corrupted = plan.corrupt_jsonl_lines(
            "export", path.read_text().splitlines(),
            FaultSpec(corrupt_rate=0.25),
        )
        path.write_text("\n".join(corrupted) + "\n")

        result = salvage_jsonl(path)
        assert 0 < result.n_bad < 40
        assert len(result.records) == 40 - result.n_bad
        # Determinism: the same seed corrupts the same lines.
        assert result.n_bad == len(
            [a for a in plan.log if a == ("export", "corrupt")]
        )


class TestAtomicWrite:
    def test_write_jsonl_is_atomic(self, tmp_path):
        from repro.io.jsonl import write_jsonl

        path = tmp_path / "out.jsonl"
        write_jsonl(path, [{"a": 1}])
        with pytest.raises(TypeError):
            write_jsonl(path, [{"a": 1}, {"bad": object()}])
        assert read_jsonl(path) == [{"a": 1}]
        assert not (tmp_path / "out.jsonl.tmp").exists()


@pytest.mark.chaos
class TestTornWriteSalvage:
    """A mid-write crash can tear the final line — even mid-character."""

    def _export_bytes(self, records) -> bytes:
        import json

        return "".join(json.dumps(r) + "\n" for r in records).encode("utf-8")

    def test_torn_final_line_is_quarantined(self, tmp_path):
        from repro.io.jsonl import salvage_jsonl
        from repro.resilience import FaultPlan

        records = [{"i": i, "pad": "x" * 30} for i in range(20)]
        data = self._export_bytes(records)
        path = tmp_path / "torn.jsonl"
        plan = FaultPlan(seed=5)
        cut = plan.torn_write("export", path, data)
        assert 0 < cut < len(data)
        assert ("export", "torn") in plan.log

        result = salvage_jsonl(path, quarantine=tmp_path / "torn.bad")
        # Every fully-written line survives; only the torn tail is lost.
        n_complete = data[:cut].count(b"\n")
        assert len(result.records) >= n_complete
        assert result.records[:n_complete] == tuple(records[:n_complete])
        assert result.n_bad <= 1

    def test_torn_multibyte_character_does_not_raise(self, tmp_path):
        """The regression: text-mode reads died with UnicodeDecodeError."""
        from repro.io.jsonl import salvage_jsonl

        good = b'{"i": 0}\n{"i": 1}\n'
        # "é" is the two bytes c3 a9 in UTF-8; cutting after c3 leaves a
        # torn multibyte character at EOF.
        torn = '{"word": "café"}'.encode("utf-8")[:-3]
        assert torn.endswith(b"\xc3")
        path = tmp_path / "torn.jsonl"
        path.write_bytes(good + torn)

        result = salvage_jsonl(path, quarantine=tmp_path / "torn.bad")
        assert result.records == ({"i": 0}, {"i": 1})
        assert result.n_bad == 1
        assert "undecodable" in result.bad_lines[0][1] or "invalid JSON" in result.bad_lines[0][1]
        assert (tmp_path / "torn.bad").exists()

    def test_torn_write_is_deterministic(self, tmp_path):
        from repro.resilience import FaultPlan

        data = self._export_bytes([{"i": i} for i in range(50)])
        cuts = []
        for run in range(2):
            path = tmp_path / f"torn-{run}.jsonl"
            cuts.append(FaultPlan(seed=9).torn_write("export", path, data))
        assert cuts[0] == cuts[1]
        assert (tmp_path / "torn-0.jsonl").read_bytes() == (
            tmp_path / "torn-1.jsonl"
        ).read_bytes()


class TestTailOnlySalvage:
    """salvage_jsonl(tail_only=True): the append-only journal contract."""

    def test_torn_tail_accepted(self, tmp_path):
        from repro.io.jsonl import salvage_jsonl

        path = tmp_path / "log.jsonl"
        path.write_text('{"ok": 1}\n{"ok": 2}\n{"torn": ')
        result = salvage_jsonl(path, tail_only=True)
        assert list(result.records) == [{"ok": 1}, {"ok": 2}]
        assert result.n_bad == 1

    def test_clean_file_accepted(self, tmp_path):
        from repro.io.jsonl import salvage_jsonl, write_jsonl

        path = tmp_path / "log.jsonl"
        write_jsonl(path, [{"ok": 1}, {"ok": 2}])
        result = salvage_jsonl(path, tail_only=True)
        assert result.n_bad == 0

    def test_mid_file_damage_refused(self, tmp_path):
        """A bad line followed by a good one cannot be a torn tail."""
        from repro.io.jsonl import salvage_jsonl

        path = tmp_path / "log.jsonl"
        path.write_text('{"ok": 1}\nnot json\n{"ok": 2}\n')
        with pytest.raises(SchemaError, match="not a torn tail"):
            salvage_jsonl(path, tail_only=True)

    def test_default_mode_still_tolerates_mid_file_damage(self, tmp_path):
        from repro.io.jsonl import salvage_jsonl

        path = tmp_path / "log.jsonl"
        path.write_text('{"ok": 1}\nnot json\n{"ok": 2}\n')
        result = salvage_jsonl(path)  # tail_only defaults off
        assert list(result.records) == [{"ok": 1}, {"ok": 2}]
        assert result.n_bad == 1

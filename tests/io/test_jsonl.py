"""Tests for JSONL helpers."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.io.jsonl import iter_jsonl, read_jsonl, write_jsonl


class TestRoundTrip:
    def test_basic(self, tmp_path):
        path = tmp_path / "x.jsonl"
        records = [{"a": 1}, {"b": [1, 2]}, "plain", 42]
        assert write_jsonl(path, records) == 4
        assert read_jsonl(path) == records

    def test_dates_serialised(self, tmp_path):
        path = tmp_path / "d.jsonl"
        write_jsonl(path, [{"day": dt.date(2022, 4, 22)}])
        assert read_jsonl(path) == [{"day": "2022-04-22"}]

    def test_numpy_scalars_serialised(self, tmp_path):
        path = tmp_path / "n.jsonl"
        write_jsonl(path, [{"v": np.float64(1.5), "i": np.int64(3)}])
        assert read_jsonl(path) == [{"v": 1.5, "i": 3}]

    def test_unserialisable_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        with pytest.raises(TypeError):
            write_jsonl(path, [{"f": object()}])

    def test_bad_line_reports_number(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(SchemaError, match="2"):
            read_jsonl(path)

    def test_iter_streams(self, tmp_path):
        path = tmp_path / "s.jsonl"
        write_jsonl(path, [{"i": i} for i in range(5)])
        assert sum(r["i"] for r in iter_jsonl(path)) == 10

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "b.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert len(read_jsonl(path)) == 2

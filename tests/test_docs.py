"""Documentation integrity tests: the docs must not drift from the code."""

import py_compile
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


class TestDesignIndex:
    def test_every_bench_target_exists(self):
        """DESIGN.md's experiment index must point at real files."""
        text = (ROOT / "DESIGN.md").read_text()
        targets = set(re.findall(r"`benchmarks/(test_bench_[a-z0-9_]+\.py)`", text))
        assert targets, "no bench targets found in DESIGN.md"
        for target in targets:
            assert (ROOT / "benchmarks" / target).exists(), target

    def test_every_bench_file_is_indexed(self):
        """Conversely: no orphan benchmark without a DESIGN.md row."""
        text = (ROOT / "DESIGN.md").read_text()
        for path in (ROOT / "benchmarks").glob("test_bench_*.py"):
            assert path.name in text, f"{path.name} missing from DESIGN.md"

    def test_inventory_modules_exist(self):
        """Module paths named in the DESIGN inventory must import."""
        text = (ROOT / "DESIGN.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", text))
        assert modules
        import importlib

        for module in modules:
            importlib.import_module(module)


class TestReadme:
    def test_referenced_files_exist(self):
        text = (ROOT / "README.md").read_text()
        for rel in re.findall(r"\]\(((?:docs|examples)/[A-Za-z_./]+)\)", text):
            assert (ROOT / rel).exists(), rel

    def test_example_table_matches_directory(self):
        text = (ROOT / "README.md").read_text()
        for path in (ROOT / "examples").glob("*.py"):
            assert path.name in text, f"{path.name} missing from README"


class TestExamples:
    @pytest.mark.parametrize("script", sorted(
        (ROOT / "examples").glob("*.py"), key=lambda p: p.name,
        ), ids=lambda p: p.name)
    def test_examples_compile(self, script):
        py_compile.compile(str(script), doraise=True)

    def test_at_least_five_examples(self):
        assert len(list((ROOT / "examples").glob("*.py"))) >= 5


class TestDocstrings:
    def test_every_public_module_documented(self):
        import importlib
        import pkgutil

        import repro

        undocumented = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(info.name)
        assert undocumented == []

"""Tests for the jitter process."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.netsim.jitter import JitterProcess
from repro.rng import derive


class TestJitterProcess:
    def test_zero_scale_is_zero(self, fresh_rng):
        j = JitterProcess(scale_ms=0.0)
        assert j.sample_interval(fresh_rng) == 0.0

    def test_mean_tracks_scale(self):
        rng = derive(21, "jitter")
        j = JitterProcess(scale_ms=5.0, spike_prob=0.0)
        samples = [j.sample_interval(rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(5.0, rel=0.15)

    def test_samples_positive(self):
        rng = derive(22, "jitter-pos")
        j = JitterProcess(scale_ms=1.0)
        assert all(j.sample_interval(rng) > 0 for _ in range(500))

    def test_spikes_raise_tail(self):
        base_rng = derive(23, "jitter-base")
        spiky_rng = derive(23, "jitter-spiky")
        calm = JitterProcess(scale_ms=5.0, spike_prob=0.0)
        spiky = JitterProcess(scale_ms=5.0, spike_prob=0.3, spike_factor=4.0)
        calm_p99 = np.percentile([calm.sample_interval(base_rng) for _ in range(2000)], 99)
        spiky_p99 = np.percentile([spiky.sample_interval(spiky_rng) for _ in range(2000)], 99)
        assert spiky_p99 > calm_p99

    def test_temporal_correlation(self):
        rng = derive(24, "jitter-corr")
        j = JitterProcess(scale_ms=5.0, persistence=0.9, spike_prob=0.0)
        samples = np.array([j.sample_interval(rng) for _ in range(3000)])
        lag1 = np.corrcoef(samples[:-1], samples[1:])[0, 1]
        assert lag1 > 0.5  # AR(1) with persistence 0.9 is strongly autocorrelated

    def test_reset_forgets_state(self, fresh_rng):
        j = JitterProcess(scale_ms=5.0)
        j.sample_interval(fresh_rng)
        j.reset()
        assert not j._initialised

    @pytest.mark.parametrize("kwargs", [
        dict(scale_ms=-1),
        dict(scale_ms=1, persistence=1.0),
        dict(scale_ms=1, spike_prob=2.0),
        dict(scale_ms=1, spike_factor=0.5),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            JitterProcess(**kwargs)

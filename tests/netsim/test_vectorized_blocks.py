"""Equivalence pins for the block condition layer (PR 7 tentpole).

The block engine (:func:`repro.netsim.vectorized.condition_blocks`)
replaces the per-session processes of
:func:`repro.netsim.trace.generate_condition_arrays` with batched
``(rows, n_intervals)`` arithmetic, and its loss model replaces the
packet-by-packet Gilbert–Elliott chain with a compound-Poisson run
approximation.  These tests pin the documented equivalence contract:

* **exact** — a multi-block ``condition_blocks_from_draws`` evaluation
  is byte-identical to evaluating each block alone (the bucketing seam
  the telemetry engine relies on), and the 2-D mitigate/QoE seam is
  byte-identical to row-by-row 1-D calls;
* **statistical** — the block loss process matches the scalar chain's
  stationary mean and marginal dispersion, the AR(1) jitter matches
  the scalar autocorrelation, and full block traces match the record
  path's per-metric means across seeds 101 / 202 / 303.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.netsim.link import NETWORK_TIERS
from repro.netsim.loss import GilbertElliottLoss
from repro.netsim.mitigation import MitigationStack
from repro.netsim.qoe import QoeModel
from repro.netsim.trace import generate_condition_arrays
from repro.netsim.vectorized import (
    LinkProfileArrays,
    condition_blocks,
    condition_blocks_from_draws,
    condition_draws,
    loss_pct_block,
    mitigate_arrays,
    qoe_arrays,
)

SEEDS = (101, 202, 303)


def profile_arrays(profiles):
    return LinkProfileArrays(
        base_latency_ms=np.array([p.base_latency_ms for p in profiles]),
        loss_rate=np.array([p.loss_rate for p in profiles]),
        jitter_ms=np.array([p.jitter_ms for p in profiles]),
        bandwidth_mbps=np.array([p.bandwidth_mbps for p in profiles]),
        burstiness=np.array([p.burstiness for p in profiles]),
    )


TIER_PROFILES = [profile for profile, _ in NETWORK_TIERS.values()]


class TestDrawSplitIdentity:
    """condition_blocks == draws + arithmetic, block composition exact."""

    def test_single_block_identity(self):
        profiles = profile_arrays(TIER_PROFILES)
        a = condition_blocks(
            np.random.default_rng(101), profiles, n_intervals=64
        )
        draws = condition_draws(
            np.random.default_rng(101), profiles, n_intervals=64
        )
        b = condition_blocks_from_draws([draws])
        for key in a:
            assert a[key].tobytes() == b[key].tobytes(), key

    def test_multi_block_rows_match_per_block_evaluation(self):
        profiles = [profile_arrays(TIER_PROFILES[:3]),
                    profile_arrays(TIER_PROFILES[3:])]
        draws = [
            condition_draws(np.random.default_rng(seed), block, 48)
            for seed, block in zip((7, 11), profiles)
        ]
        merged = condition_blocks_from_draws(draws)
        separate = [condition_blocks_from_draws([d]) for d in draws]
        for key in merged:
            stacked = np.vstack([s[key] for s in separate])
            assert merged[key].tobytes() == stacked.tobytes(), key

    def test_rejects_empty_and_mixed_widths(self):
        profiles = profile_arrays(TIER_PROFILES[:2])
        with pytest.raises(SimulationError):
            condition_blocks_from_draws([])
        d1 = condition_draws(np.random.default_rng(0), profiles, 16)
        d2 = condition_draws(np.random.default_rng(1), profiles, 32)
        with pytest.raises(SimulationError):
            condition_blocks_from_draws([d1, d2])


class TestMitigateQoe2dSeam:
    """The shared 1-D formulas applied to a 2-D block must be identical
    to applying them row by row — the seam both engines run through."""

    def test_block_rows_equal_per_row_calls(self):
        stack, model = MitigationStack(), QoeModel()
        rng = np.random.default_rng(5)
        latency = rng.uniform(10, 300, size=(6, 40))
        loss = rng.uniform(0, 15, size=(6, 40))
        jitter = rng.uniform(0, 25, size=(6, 40))
        bw = rng.uniform(0.4, 5.0, size=(6, 40))
        eff2d = mitigate_arrays(stack, latency, loss, jitter, bw, 0.4)
        q2d = qoe_arrays(model, eff2d)
        for r in range(6):
            eff1d = mitigate_arrays(
                stack, latency[r], loss[r], jitter[r], bw[r], 0.4
            )
            q1d = qoe_arrays(model, eff1d)
            assert eff2d.delay_ms[r].tobytes() == eff1d.delay_ms.tobytes()
            assert (
                eff2d.residual_audio_loss_pct[r].tobytes()
                == eff1d.residual_audio_loss_pct.tobytes()
            )
            assert q2d.overall_mos[r].tobytes() == q1d.overall_mos.tobytes()
            assert q2d.audio_mos[r].tobytes() == q1d.audio_mos.tobytes()


class TestLossEquivalence:
    """Compound-Poisson block loss vs the packet-level scalar chain."""

    @pytest.mark.parametrize("rate,burstiness", [
        (0.003, 0.3), (0.010, 0.6), (0.035, 0.8),
    ])
    def test_stationary_mean_matches_scalar_chain(self, rate, burstiness):
        rows, n = 400, 120
        block = loss_pct_block(
            np.random.default_rng(101),
            np.full(rows, rate), np.full(rows, burstiness), n,
        )
        chain = GilbertElliottLoss(rate=rate, burstiness=burstiness)
        rng = np.random.default_rng(202)
        scalar = np.concatenate([
            chain.interval_loss_rates(rng, n, 5.0) * 100 for _ in range(60)
        ])
        # Stationary means agree with each other and with the configured
        # rate (the block form is exact in expectation).
        assert block.mean() == pytest.approx(rate * 100, rel=0.15)
        assert block.mean() == pytest.approx(scalar.mean(), rel=0.2)

    def test_marginal_dispersion_matches_scalar_chain(self):
        rate, burstiness, n = 0.010, 0.6, 120
        block = loss_pct_block(
            np.random.default_rng(303),
            np.full(600, rate), np.full(600, burstiness), n,
        )
        chain = GilbertElliottLoss(rate=rate, burstiness=burstiness)
        rng = np.random.default_rng(404)
        scalar = np.concatenate([
            chain.interval_loss_rates(rng, n, 5.0) * 100 for _ in range(80)
        ])
        # Bursty loss is heavily over-dispersed relative to Bernoulli;
        # the run approximation must reproduce that marginal spread.
        assert block.std() == pytest.approx(scalar.std(), rel=0.25)
        assert block.std() > rate * 100  # over-dispersed, not Poisson-thin

    def test_zero_rate_rows_stay_zero(self):
        block = loss_pct_block(
            np.random.default_rng(1),
            np.array([0.0, 0.01]), np.array([0.3, 0.3]), 50,
        )
        assert np.all(block[0] == 0.0)
        assert block[1].max() > 0.0


class TestBlockTraceStatistics:
    """Full block traces vs the record path, across seeds 101/202/303."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_metric_means_match_record_path(self, seed):
        profile = NETWORK_TIERS["congested_broadband"][0]
        rows, n = 300, 90
        block = condition_blocks(
            np.random.default_rng(seed),
            profile_arrays([profile] * rows), n,
        )
        rng = np.random.default_rng(seed + 1)
        record = {key: [] for key in block}
        for _ in range(120):
            arrays = generate_condition_arrays(profile, rng, n)
            for key, values in arrays.items():
                record[key].append(values)
        for key in block:
            rec = np.concatenate(record[key])
            assert block[key].mean() == pytest.approx(
                rec.mean(), rel=0.05
            ), key

    @pytest.mark.parametrize("seed", SEEDS)
    def test_jitter_autocorrelation_matches_ar1(self, seed):
        profile = NETWORK_TIERS["mobile_lte"][0]
        rows, n = 400, 120
        block = condition_blocks(
            np.random.default_rng(seed),
            profile_arrays([profile] * rows), n,
        )
        jitter = block["jitter_ms"]
        centered = jitter - jitter.mean(axis=1, keepdims=True)
        lag1 = (centered[:, 1:] * centered[:, :-1]).sum() / (
            centered * centered
        ).sum()
        # AR(1) with persistence 0.7; spikes dilute the measured lag-1
        # autocorrelation a little, exactly as on the scalar path.
        rng = np.random.default_rng(seed + 1)
        rec = np.vstack([
            generate_condition_arrays(profile, rng, n)["jitter_ms"]
            for _ in range(120)
        ])
        rc = rec - rec.mean(axis=1, keepdims=True)
        rec_lag1 = (rc[:, 1:] * rc[:, :-1]).sum() / (rc * rc).sum()
        assert lag1 == pytest.approx(rec_lag1, abs=0.07)
        assert 0.35 < lag1 < 0.85

    def test_qoe_through_block_conditions_matches_record_path(self):
        """End-to-end: block conditions -> shared mitigate/QoE arrays vs
        the record path's conditions through the scalar-shaped seam."""
        profile = NETWORK_TIERS["average_broadband"][0]
        stack, model = MitigationStack(), QoeModel()
        rows, n = 300, 90
        block = condition_blocks(
            np.random.default_rng(101), profile_arrays([profile] * rows), n
        )
        q_block = qoe_arrays(model, mitigate_arrays(
            stack, block["latency_ms"], block["loss_pct"],
            block["jitter_ms"], block["bandwidth_mbps"],
            profile.burstiness,
        ))
        rng = np.random.default_rng(102)
        mos = []
        for _ in range(120):
            arrays = generate_condition_arrays(profile, rng, n)
            q = qoe_arrays(model, mitigate_arrays(
                stack, arrays["latency_ms"], arrays["loss_pct"],
                arrays["jitter_ms"], arrays["bandwidth_mbps"],
                profile.burstiness,
            ))
            mos.append(q.overall_mos)
        assert q_block.overall_mos.mean() == pytest.approx(
            np.concatenate(mos).mean(), rel=0.02
        )

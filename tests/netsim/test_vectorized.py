"""Scalar and vector mitigation/QoE implementations must agree.

This test is the contract that keeps the fast path honest: the telemetry
generator runs exclusively on the vectorised code, so any change to the
scalar models must be mirrored here or these assertions fail.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.mitigation import MitigationStack
from repro.netsim.qoe import QoeModel
from repro.netsim.trace import ConditionSample
from repro.netsim.vectorized import mitigate_arrays, qoe_arrays

CONDITIONS = st.tuples(
    st.floats(min_value=1, max_value=400),     # latency
    st.floats(min_value=0, max_value=20),      # loss pct
    st.floats(min_value=0, max_value=30),      # jitter
    st.floats(min_value=0.3, max_value=5.0),   # bandwidth
    st.floats(min_value=0, max_value=1),       # burstiness
)


def _scalar_and_vector(latency, loss, jitter, bw, burstiness, stack, model):
    sample = ConditionSample(t_s=0, latency_ms=latency, loss_pct=loss,
                             jitter_ms=jitter, bandwidth_mbps=bw)
    scalar_eff = stack.apply(sample, burstiness)
    scalar_scores = model.score(scalar_eff)
    vector_eff = mitigate_arrays(
        stack,
        np.array([latency]), np.array([loss]),
        np.array([jitter]), np.array([bw]),
        burstiness,
    )
    vector_scores = qoe_arrays(model, vector_eff)
    return scalar_eff, scalar_scores, vector_eff, vector_scores


class TestScalarVectorParity:
    @given(CONDITIONS)
    @settings(max_examples=150, deadline=None)
    def test_parity_default_stack(self, conditions):
        latency, loss, jitter, bw, burstiness = conditions
        stack, model = MitigationStack(), QoeModel()
        s_eff, s_scores, v_eff, v_scores = _scalar_and_vector(
            latency, loss, jitter, bw, burstiness, stack, model
        )
        assert v_eff.delay_ms[0] == pytest.approx(s_eff.delay_ms)
        assert v_eff.residual_audio_loss_pct[0] == pytest.approx(
            s_eff.residual_audio_loss_pct
        )
        assert v_eff.residual_video_loss_pct[0] == pytest.approx(
            s_eff.residual_video_loss_pct
        )
        assert v_scores.audio_mos[0] == pytest.approx(s_scores.audio_mos, abs=1e-9)
        assert v_scores.video_mos[0] == pytest.approx(s_scores.video_mos, abs=1e-9)
        assert v_scores.interactivity[0] == pytest.approx(
            s_scores.interactivity, abs=1e-9
        )
        assert v_scores.overall_mos[0] == pytest.approx(
            s_scores.overall_mos, abs=1e-9
        )

    @given(CONDITIONS)
    @settings(max_examples=60, deadline=None)
    def test_parity_disabled_stack(self, conditions):
        latency, loss, jitter, bw, burstiness = conditions
        stack, model = MitigationStack.disabled(), QoeModel()
        s_eff, s_scores, v_eff, v_scores = _scalar_and_vector(
            latency, loss, jitter, bw, burstiness, stack, model
        )
        assert v_eff.residual_audio_loss_pct[0] == pytest.approx(
            s_eff.residual_audio_loss_pct
        )
        assert v_scores.overall_mos[0] == pytest.approx(
            s_scores.overall_mos, abs=1e-9
        )

    def test_vector_shapes_preserved(self):
        stack, model = MitigationStack(), QoeModel()
        n = 37
        eff = mitigate_arrays(
            stack,
            np.linspace(10, 300, n), np.linspace(0, 5, n),
            np.linspace(0, 15, n), np.linspace(0.5, 4, n),
            0.3,
        )
        scores = qoe_arrays(model, eff)
        for arr in (scores.audio_mos, scores.video_mos,
                    scores.interactivity, scores.overall_mos):
            assert arr.shape == (n,)
            assert np.isfinite(arr).all()

    def test_vector_bounds(self):
        stack, model = MitigationStack(), QoeModel()
        eff = mitigate_arrays(
            stack,
            np.array([1.0, 500.0]), np.array([0.0, 90.0]),
            np.array([0.0, 60.0]), np.array([0.1, 5.0]),
            1.0,
        )
        scores = qoe_arrays(model, eff)
        assert (scores.audio_mos >= 1).all() and (scores.audio_mos <= 5).all()
        assert (scores.video_mos >= 1).all() and (scores.video_mos <= 5).all()
        assert (scores.interactivity >= 0).all() and (scores.interactivity <= 1).all()
        assert (scores.overall_mos >= 1).all() and (scores.overall_mos <= 5).all()

"""Tests for trace generation and aggregation."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.netsim.link import LinkProfile
from repro.netsim.trace import (
    SAMPLE_INTERVAL_S,
    ConditionSample,
    ConditionTrace,
    TraceGenerator,
    generate_condition_arrays,
)
from repro.rng import derive


def profile(lat=30, loss=0.005, jit=3, bw=3.0):
    return LinkProfile(base_latency_ms=lat, loss_rate=loss, jitter_ms=jit,
                       bandwidth_mbps=bw)


def sample(t=0.0, lat=20, loss=0.5, jit=2, bw=3.0):
    return ConditionSample(t_s=t, latency_ms=lat, loss_pct=loss,
                           jitter_ms=jit, bandwidth_mbps=bw)


class TestConditionSample:
    def test_valid(self):
        assert sample().latency_ms == 20

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            sample(lat=-1)

    def test_rejects_loss_over_100(self):
        with pytest.raises(ConfigError):
            sample(loss=150)


class TestConditionTrace:
    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            ConditionTrace([])

    def test_duration(self):
        trace = ConditionTrace([sample(t=i * 5.0) for i in range(12)])
        assert trace.duration_s == 60.0

    def test_aggregate_stats(self):
        trace = ConditionTrace([sample(lat=v) for v in (10, 20, 30)])
        agg = trace.aggregate()
        assert agg["latency_ms"]["mean"] == pytest.approx(20.0)
        assert agg["latency_ms"]["median"] == pytest.approx(20.0)
        assert set(agg) == {"latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps"}

    def test_metric_rejects_unknown(self):
        trace = ConditionTrace([sample()])
        with pytest.raises(SimulationError):
            trace.metric("rtt")

    def test_truncated_prefix(self):
        trace = ConditionTrace([sample(t=i * 5.0, lat=i) for i in range(10)])
        prefix = trace.truncated(25.0)
        assert len(prefix) == 5
        assert prefix[4].latency_ms == 4


class TestTraceGenerator:
    def test_generates_expected_sample_count(self, fresh_rng):
        trace = TraceGenerator(profile()).generate(fresh_rng, 600)
        assert len(trace) == int(600 / SAMPLE_INTERVAL_S)

    def test_rejects_nonpositive_duration(self, fresh_rng):
        with pytest.raises(SimulationError):
            TraceGenerator(profile()).generate(fresh_rng, 0)

    def test_latency_anchored_to_profile(self):
        rng = derive(31, "trace")
        trace = TraceGenerator(profile(lat=100, jit=1)).generate(rng, 1800)
        mean = trace.aggregate()["latency_ms"]["mean"]
        assert 100 <= mean <= 115  # baseline plus queueing, never below

    def test_loss_rate_tracks_profile(self):
        rng = derive(32, "trace-loss")
        trace = TraceGenerator(profile(loss=0.02)).generate(rng, 3600)
        assert trace.aggregate()["loss_pct"]["mean"] == pytest.approx(2.0, abs=0.8)


class TestGenerateConditionArrays:
    def test_shapes_and_keys(self, fresh_rng):
        arrays = generate_condition_arrays(profile(), fresh_rng, 100)
        assert set(arrays) == {"latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps"}
        assert all(v.shape == (100,) for v in arrays.values())

    def test_rejects_zero_intervals(self, fresh_rng):
        with pytest.raises(SimulationError):
            generate_condition_arrays(profile(), fresh_rng, 0)

    def test_statistics_match_scalar_generator(self):
        """Fast path and scalar path agree on per-session aggregates."""
        p = profile(lat=60, loss=0.01, jit=6, bw=2.0)
        fast_rng = derive(33, "arrays")
        slow_rng = derive(34, "scalar")
        arrays = generate_condition_arrays(p, fast_rng, 720)
        trace = TraceGenerator(p).generate(slow_rng, 720 * SAMPLE_INTERVAL_S)
        agg = trace.aggregate()
        assert arrays["latency_ms"].mean() == pytest.approx(
            agg["latency_ms"]["mean"], rel=0.1
        )
        assert arrays["jitter_ms"].mean() == pytest.approx(
            agg["jitter_ms"]["mean"], rel=0.3
        )
        assert arrays["loss_pct"].mean() == pytest.approx(
            agg["loss_pct"]["mean"], abs=0.5
        )

    def test_bandwidth_clipped_to_band(self, fresh_rng):
        arrays = generate_condition_arrays(profile(bw=2.0), fresh_rng, 500)
        assert arrays["bandwidth_mbps"].min() >= 0.6 - 1e-9
        assert arrays["bandwidth_mbps"].max() <= 3.0 + 1e-9

    def test_zero_jitter_profile(self, fresh_rng):
        p = LinkProfile(base_latency_ms=10, loss_rate=0.0, jitter_ms=0.0,
                        bandwidth_mbps=1.0)
        arrays = generate_condition_arrays(p, fresh_rng, 50)
        assert (arrays["jitter_ms"] == 0).all()
        assert (arrays["loss_pct"] == 0).all()

"""Tests for per-cohort mitigation tuning (§6)."""

import pytest

from repro.errors import ConfigError
from repro.netsim.link import LinkProfile
from repro.netsim.mitigation import MitigationStack
from repro.netsim.tuning import MitigationTuner, tuning_gain


JITTERY = LinkProfile(base_latency_ms=15, loss_rate=0.003, jitter_ms=14,
                      bandwidth_mbps=3.0, burstiness=0.4)
HIGH_LATENCY = LinkProfile(base_latency_ms=150, loss_rate=0.002, jitter_ms=1.5,
                           bandwidth_mbps=2.5, burstiness=0.3)
LOSSY = LinkProfile(base_latency_ms=40, loss_rate=0.025, jitter_ms=5,
                    bandwidth_mbps=1.5, burstiness=0.6)


class TestMitigationTuner:
    def test_recommendation_never_below_default(self):
        tuner = MitigationTuner()
        for profile in (JITTERY, HIGH_LATENCY, LOSSY):
            result = tuner.tune(profile)
            assert result.score >= result.default_score

    def test_jittery_path_wants_deeper_buffer(self):
        result = MitigationTuner().tune(JITTERY)
        assert result.stack.jitter_buffer_ms > MitigationStack().jitter_buffer_ms
        assert result.gain > 0.05

    def test_interactivity_objective_prefers_shallow_buffer(self):
        """Optimising turn-taking on a high-latency path must not burn
        extra delay on buffering it doesn't need."""
        deep_ok = MitigationTuner(objective="video").tune(JITTERY)
        shallow = MitigationTuner(objective="interactivity").tune(HIGH_LATENCY)
        assert shallow.stack.jitter_buffer_ms <= deep_ok.stack.jitter_buffer_ms

    def test_lossy_path_wants_bigger_fec_budget(self):
        tuner = MitigationTuner(fec_budgets_pct=(1.0, 2.0, 4.0, 6.0))
        result = tuner.tune(LOSSY)
        assert result.stack.fec_budget_pct >= 4.0

    def test_deterministic(self):
        a = MitigationTuner(seed=3).tune(JITTERY)
        b = MitigationTuner(seed=3).tune(JITTERY)
        assert a.stack == b.stack
        assert a.score == b.score

    def test_candidates_cartesian(self):
        tuner = MitigationTuner(buffer_depths_ms=(0, 4), fec_budgets_pct=(1, 2))
        assert len(tuner.candidates(MitigationStack())) == 4

    @pytest.mark.parametrize("kwargs", [
        dict(buffer_depths_ms=()),
        dict(buffer_depths_ms=(-1,)),
        dict(objective="loudness"),
        dict(n_intervals=5),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            MitigationTuner(**kwargs)


class TestTuningGain:
    def test_per_cohort_results(self):
        results = tuning_gain({"jittery": JITTERY, "latency": HIGH_LATENCY})
        assert set(results) == {"jittery", "latency"}
        assert all(r.gain >= 0 for r in results.values())

    def test_different_cohorts_different_knobs(self):
        """The §6 point: one-size-fits-all leaves engagement on the table."""
        results = tuning_gain(
            {"jittery": JITTERY, "latency": HIGH_LATENCY},
            MitigationTuner(buffer_depths_ms=(0.0, 2.0, 4.0, 16.0, 32.0)),
        )
        assert (
            results["jittery"].stack.jitter_buffer_ms
            != results["latency"].stack.jitter_buffer_ms
        )

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            tuning_gain({})

"""Tests for the loss processes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.netsim.loss import BernoulliLoss, GilbertElliottLoss
from repro.rng import derive


class TestBernoulli:
    def test_zero_rate_is_lossless(self, fresh_rng):
        loss = BernoulliLoss(rate=0.0)
        assert loss.interval_loss_rate(fresh_rng) == 0.0

    def test_mean_rate_converges(self):
        rng = derive(7, "bernoulli")
        loss = BernoulliLoss(rate=0.02)
        rates = [loss.interval_loss_rate(rng) for _ in range(400)]
        assert np.mean(rates) == pytest.approx(0.02, abs=0.004)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigError):
            BernoulliLoss(rate=1.5)

    def test_burst_fraction_equals_rate(self):
        assert BernoulliLoss(rate=0.05).burst_fraction() == 0.05


class TestGilbertElliott:
    def test_zero_rate_is_lossless(self, fresh_rng):
        chain = GilbertElliottLoss(rate=0.0)
        assert chain.interval_loss_rate(fresh_rng) == 0.0
        assert chain.interval_loss_rates(fresh_rng, 10).sum() == 0.0

    def test_mean_rate_converges(self):
        rng = derive(11, "ge")
        chain = GilbertElliottLoss(rate=0.02, burstiness=0.3)
        rates = [chain.interval_loss_rate(rng) for _ in range(600)]
        assert np.mean(rates) == pytest.approx(0.02, abs=0.006)

    def test_fast_path_matches_mean(self):
        rng = derive(12, "ge-fast")
        chain = GilbertElliottLoss(rate=0.02, burstiness=0.3)
        rates = chain.interval_loss_rates(rng, 2000)
        assert rates.mean() == pytest.approx(0.02, abs=0.006)

    def test_fast_path_shape_and_bounds(self, fresh_rng):
        chain = GilbertElliottLoss(rate=0.05, burstiness=0.5)
        rates = chain.interval_loss_rates(fresh_rng, 50)
        assert rates.shape == (50,)
        assert (rates >= 0).all() and (rates <= 1).all()

    def test_burstiness_increases_variance(self):
        smooth_rng = derive(13, "ge-smooth")
        bursty_rng = derive(13, "ge-bursty")
        smooth = GilbertElliottLoss(rate=0.02, burstiness=0.0)
        bursty = GilbertElliottLoss(rate=0.02, burstiness=0.9)
        var_smooth = smooth.interval_loss_rates(smooth_rng, 1500).var()
        var_bursty = bursty.interval_loss_rates(bursty_rng, 1500).var()
        assert var_bursty > var_smooth

    def test_burstiness_lengthens_bursts(self):
        short = GilbertElliottLoss(rate=0.02, burstiness=0.0)
        long = GilbertElliottLoss(rate=0.02, burstiness=0.8)
        assert long.expected_burst_length() > short.expected_burst_length()

    def test_rejects_rate_above_bad_loss(self):
        with pytest.raises(ConfigError):
            GilbertElliottLoss(rate=0.6, bad_loss=0.5)

    def test_rejects_burstiness_one(self):
        with pytest.raises(ConfigError):
            GilbertElliottLoss(rate=0.01, burstiness=1.0)

    def test_state_persists_across_intervals(self, fresh_rng):
        chain = GilbertElliottLoss(rate=0.3, burstiness=0.9, bad_loss=0.9)
        chain.interval_loss_rate(fresh_rng)
        # Not asserting a specific state — only that the attribute is
        # maintained and boolean (the chain is stateful by design).
        assert isinstance(chain._state_bad, bool)

    def test_rejects_bad_n_intervals(self, fresh_rng):
        chain = GilbertElliottLoss(rate=0.01)
        with pytest.raises(ConfigError):
            chain.interval_loss_rates(fresh_rng, 0)

    @given(st.floats(min_value=0.0, max_value=0.2))
    @settings(max_examples=25, deadline=None)
    def test_rates_always_bounded(self, rate):
        rng = derive(17, "ge-prop", str(rate))
        chain = GilbertElliottLoss(rate=rate, burstiness=0.4)
        value = chain.interval_loss_rate(rng)
        assert 0.0 <= value <= 1.0

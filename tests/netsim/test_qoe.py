"""Tests for the QoE model."""

import pytest

from repro.errors import ConfigError
from repro.netsim.mitigation import EffectiveConditions
from repro.netsim.qoe import QoeModel, QualityScores, _r_to_mos


def eff(delay=30, audio_loss=0.0, video_loss=0.0, video_share=1.0, audio_share=1.0):
    return EffectiveConditions(
        delay_ms=delay,
        residual_audio_loss_pct=audio_loss,
        residual_video_loss_pct=video_loss,
        video_bitrate_share=video_share,
        audio_bitrate_share=audio_share,
    )


class TestRToMos:
    def test_clean_channel_near_max(self):
        assert _r_to_mos(93.2) > 4.3

    def test_monotone(self):
        values = [_r_to_mos(r) for r in (0, 20, 40, 60, 80, 100)]
        assert values == sorted(values)

    def test_bounds(self):
        assert _r_to_mos(-10) == 1.0
        assert _r_to_mos(150) == 4.5


class TestQoeModel:
    def test_clean_conditions_score_high(self):
        scores = QoeModel().score(eff())
        assert scores.audio_mos > 4.2
        assert scores.video_mos > 4.7
        assert scores.overall_mos > 4.3

    def test_audio_mos_decreases_with_delay(self):
        model = QoeModel()
        values = [model.audio_mos(eff(delay=d)) for d in (20, 100, 200, 400)]
        assert values == sorted(values, reverse=True)

    def test_audio_mos_decreases_with_loss(self):
        model = QoeModel()
        values = [model.audio_mos(eff(audio_loss=l)) for l in (0, 1, 3, 8)]
        assert values == sorted(values, reverse=True)

    def test_video_mos_decreases_with_artefacts(self):
        model = QoeModel()
        values = [model.video_mos(eff(video_loss=l)) for l in (0, 2, 5, 15)]
        assert values == sorted(values, reverse=True)

    def test_video_bitrate_saturation(self):
        """1 Mbps should be within a few percent of 4 Mbps (Fig. 1 right)."""
        model = QoeModel()
        at_quarter = model.video_mos(eff(video_share=1.0))  # 1.0 of 1 Mbps target
        nearly_starved = model.video_mos(eff(video_share=0.25))
        assert (at_quarter - nearly_starved) / at_quarter < 0.15

    def test_interactivity_halves_at_halflife(self):
        model = QoeModel(interactivity_halflife_ms=120)
        assert model.interactivity(eff(delay=120)) == pytest.approx(0.5)

    def test_interactivity_steeper_early(self):
        """Most interactivity is lost by ~150 ms — the Mic On knee."""
        model = QoeModel()
        early_drop = model.interactivity(eff(delay=0)) - model.interactivity(eff(delay=150))
        late_drop = model.interactivity(eff(delay=150)) - model.interactivity(eff(delay=300))
        assert early_drop > late_drop

    def test_overall_blend_bounded(self):
        scores = QoeModel().score(eff(delay=500, audio_loss=50, video_loss=80,
                                      video_share=0.1, audio_share=0.5))
        assert 1.0 <= scores.overall_mos <= 5.0

    def test_audio_starvation_catastrophic(self):
        model = QoeModel()
        starved = model.audio_mos(eff(audio_share=0.3))
        fine = model.audio_mos(eff(audio_share=1.0))
        assert starved < fine - 0.8

    @pytest.mark.parametrize("kwargs", [
        dict(r_baseline=0),
        dict(delay_knee_ms=-1),
        dict(loss_impairment_scale=-1),
        dict(interactivity_halflife_ms=0),
    ])
    def test_rejects_invalid_config(self, kwargs):
        with pytest.raises(ConfigError):
            QoeModel(**kwargs)


class TestQualityScores:
    def test_rejects_out_of_range_mos(self):
        with pytest.raises(ConfigError):
            QualityScores(audio_mos=0.5, video_mos=3, interactivity=0.5,
                          overall_mos=3)

    def test_rejects_bad_interactivity(self):
        with pytest.raises(ConfigError):
            QualityScores(audio_mos=3, video_mos=3, interactivity=1.5,
                          overall_mos=3)

"""Tests for path composition."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.netsim.link import LinkProfile
from repro.netsim.path import NetworkPath, access_plus_backbone


def profile(lat=10, loss=0.01, jit=3, bw=2.0, burst=0.3):
    return LinkProfile(base_latency_ms=lat, loss_rate=loss, jitter_ms=jit,
                       bandwidth_mbps=bw, burstiness=burst)


class TestNetworkPath:
    def test_latency_adds(self):
        e2e = NetworkPath.of(profile(lat=10), profile(lat=25)).end_to_end()
        assert e2e.base_latency_ms == 35

    def test_loss_composes_multiplicatively(self):
        e2e = NetworkPath.of(profile(loss=0.1), profile(loss=0.1)).end_to_end()
        assert e2e.loss_rate == pytest.approx(1 - 0.9 * 0.9)

    def test_jitter_adds_in_quadrature(self):
        e2e = NetworkPath.of(profile(jit=3), profile(jit=4)).end_to_end()
        assert e2e.jitter_ms == pytest.approx(5.0)

    def test_bandwidth_is_bottleneck(self):
        e2e = NetworkPath.of(profile(bw=2.0), profile(bw=0.8)).end_to_end()
        assert e2e.bandwidth_mbps == 0.8

    def test_burstiness_is_max(self):
        e2e = NetworkPath.of(profile(burst=0.2), profile(burst=0.7)).end_to_end()
        assert e2e.burstiness == 0.7

    def test_single_segment_identity(self):
        p = profile()
        e2e = NetworkPath.of(p).end_to_end()
        assert e2e.base_latency_ms == p.base_latency_ms
        assert e2e.loss_rate == pytest.approx(p.loss_rate)
        assert e2e.jitter_ms == pytest.approx(p.jitter_ms)
        assert e2e.bandwidth_mbps == p.bandwidth_mbps

    def test_rejects_empty_path(self):
        with pytest.raises(ConfigError):
            NetworkPath(segments=())

    def test_rejects_non_profile_segment(self):
        with pytest.raises(ConfigError):
            NetworkPath(segments=("not a link",))

    def test_len(self):
        assert len(NetworkPath.of(profile(), profile())) == 2


class TestAccessPlusBackbone:
    def test_access_dominates_loss_and_bandwidth(self):
        access = profile(loss=0.02, bw=1.5)
        e2e = access_plus_backbone(access).end_to_end()
        assert e2e.loss_rate == pytest.approx(0.02, rel=0.01)
        assert e2e.bandwidth_mbps == 1.5

    def test_backbone_adds_latency(self):
        access = profile(lat=10)
        e2e = access_plus_backbone(access, backbone_latency_ms=8).end_to_end()
        assert e2e.base_latency_ms == pytest.approx(18)

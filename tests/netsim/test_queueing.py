"""Tests for the bottleneck queue model."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.netsim.queueing import BottleneckQueue, profile_for_load, simulate_queue
from repro.rng import derive


@pytest.fixture(scope="module")
def queue():
    return BottleneckQueue(capacity_mbps=10, buffer_packets=30)


class TestAnalyticModel:
    def test_service_time(self, queue):
        # 1200 bytes at 10 Mbps = 0.96 ms.
        assert queue.service_time_ms == pytest.approx(0.96)

    def test_wait_grows_with_load(self, queue):
        waits = [queue.mean_wait_ms(load) for load in (1, 5, 8, 9.5)]
        assert waits == sorted(waits)

    def test_idle_queue_waits_one_service_time(self, queue):
        assert queue.mean_wait_ms(0.0) == pytest.approx(
            queue.service_time_ms, rel=0.01
        )

    def test_blocking_negligible_until_saturation(self, queue):
        assert queue.blocking_probability(5.0) < 1e-6
        assert queue.blocking_probability(9.9) > 0.01

    def test_blocking_grows_past_capacity(self, queue):
        assert queue.blocking_probability(12.0) > queue.blocking_probability(9.9)

    def test_small_buffer_loses_more(self):
        small = BottleneckQueue(capacity_mbps=10, buffer_packets=5)
        large = BottleneckQueue(capacity_mbps=10, buffer_packets=100)
        assert small.blocking_probability(9.0) > large.blocking_probability(9.0)

    def test_jitter_grows_with_load(self, queue):
        assert queue.delay_std_ms(9.0) > queue.delay_std_ms(2.0)

    @pytest.mark.parametrize("kwargs", [
        dict(capacity_mbps=0),
        dict(buffer_packets=0),
        dict(packet_bytes=0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            BottleneckQueue(**kwargs)

    def test_rejects_negative_load(self, queue):
        with pytest.raises(ConfigError):
            queue.utilisation(-1)


class TestSimulationAgreement:
    """The discrete-event simulation validates the closed forms."""

    @pytest.mark.parametrize("load", [3.0, 7.0, 9.0])
    def test_mean_wait_matches(self, queue, load):
        rng = derive(71, "queue-sim", str(load))
        sojourns, _ = simulate_queue(rng, queue, load, n_packets=30000)
        assert sojourns.mean() == pytest.approx(
            queue.mean_wait_ms(load), rel=0.08
        )

    def test_loss_matches_at_saturation(self, queue):
        rng = derive(72, "queue-sim")
        _, loss = simulate_queue(rng, queue, 9.9, n_packets=40000)
        assert loss == pytest.approx(
            queue.blocking_probability(9.9), abs=0.015
        )

    def test_jitter_matches(self, queue):
        # The sojourn-time std estimator is heavy-tailed and the queue is
        # autocorrelated, so the tolerance is generous.
        rng = derive(74, "queue-sim")
        sojourns, _ = simulate_queue(rng, queue, 8.0, n_packets=60000)
        assert sojourns.std() == pytest.approx(
            queue.delay_std_ms(8.0), rel=0.25
        )

    def test_rejects_zero_load(self, queue, fresh_rng):
        with pytest.raises(SimulationError):
            simulate_queue(fresh_rng, queue, 0.0)


class TestPriorityBottleneck:
    from repro.netsim.queueing import PriorityBottleneck

    @pytest.fixture(scope="class")
    def bottleneck(self):
        from repro.netsim.queueing import PriorityBottleneck

        return PriorityBottleneck(
            BottleneckQueue(capacity_mbps=10, buffer_packets=10**6)
        )

    def test_audio_always_faster(self, bottleneck):
        wait_audio, wait_video = bottleneck.mean_waits_ms(0.5, 8.0)
        assert wait_audio < wait_video

    def test_protection_grows_with_video_load(self, bottleneck):
        light = bottleneck.protection_factor(0.5, 5.0)
        heavy = bottleneck.protection_factor(0.5, 9.0)
        assert heavy > light

    def test_audio_wait_insensitive_to_video_load(self, bottleneck):
        """The DSCP story: piling on video barely moves audio's wait."""
        wait_low, _ = bottleneck.mean_waits_ms(0.5, 3.0)
        wait_high, _ = bottleneck.mean_waits_ms(0.5, 9.0)
        assert wait_high < wait_low * 3

    def test_rejects_saturation(self, bottleneck):
        with pytest.raises(ConfigError):
            bottleneck.mean_waits_ms(5.0, 6.0)

    @pytest.mark.parametrize("audio,video", [(0.5, 7.0), (2.0, 6.0)])
    def test_simulation_matches_analytic(self, bottleneck, audio, video):
        from repro.netsim.queueing import simulate_priority_queue

        rng = derive(75, "pq", str(audio), str(video))
        sim_audio, sim_video = simulate_priority_queue(
            rng, bottleneck, audio, video, n_packets=40000
        )
        ana_audio, ana_video = bottleneck.mean_waits_ms(audio, video)
        assert sim_audio == pytest.approx(ana_audio, rel=0.15)
        assert sim_video == pytest.approx(ana_video, rel=0.15)


class TestProfileForLoad:
    def test_light_load_is_clean(self):
        profile = profile_for_load(20, 2.0)
        assert profile.base_latency_ms < 25
        assert profile.loss_rate < 1e-6
        assert profile.jitter_ms < 3

    def test_heavy_load_is_degraded(self):
        light = profile_for_load(20, 2.0)
        heavy = profile_for_load(20, 9.5)
        assert heavy.base_latency_ms > light.base_latency_ms
        assert heavy.jitter_ms > light.jitter_ms
        assert heavy.loss_rate > light.loss_rate
        assert heavy.bandwidth_mbps < light.bandwidth_mbps
        assert heavy.burstiness > light.burstiness

    def test_profile_feeds_the_rest_of_the_stack(self, fresh_rng):
        """A queueing-derived profile must be usable end to end."""
        from repro.netsim.trace import generate_condition_arrays

        profile = profile_for_load(30, 8.0)
        arrays = generate_condition_arrays(profile, fresh_rng, 60)
        assert arrays["latency_ms"].mean() > 30

    def test_rejects_absurd_load(self):
        with pytest.raises(ConfigError):
            profile_for_load(20, 20.0)

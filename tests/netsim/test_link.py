"""Tests for link profiles and tier sampling."""

import pytest

from repro.errors import ConfigError
from repro.netsim.link import NETWORK_TIERS, LinkProfile, sample_link_profile


class TestLinkProfile:
    def test_valid_profile(self):
        p = LinkProfile(base_latency_ms=20, loss_rate=0.01, jitter_ms=2,
                        bandwidth_mbps=3.0)
        assert p.base_latency_ms == 20

    @pytest.mark.parametrize("kwargs", [
        dict(base_latency_ms=-1, loss_rate=0, jitter_ms=0, bandwidth_mbps=1),
        dict(base_latency_ms=0, loss_rate=1.5, jitter_ms=0, bandwidth_mbps=1),
        dict(base_latency_ms=0, loss_rate=0, jitter_ms=-1, bandwidth_mbps=1),
        dict(base_latency_ms=0, loss_rate=0, jitter_ms=0, bandwidth_mbps=0),
        dict(base_latency_ms=0, loss_rate=0, jitter_ms=0, bandwidth_mbps=1,
             burstiness=2.0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            LinkProfile(**kwargs)

    def test_scaled(self):
        p = LinkProfile(base_latency_ms=10, loss_rate=0.01, jitter_ms=2,
                        bandwidth_mbps=2.0)
        scaled = p.scaled(latency=2.0, loss=3.0, jitter=0.5, bandwidth=2.0)
        assert scaled.base_latency_ms == 20
        assert scaled.loss_rate == pytest.approx(0.03)
        assert scaled.jitter_ms == 1.0
        assert scaled.bandwidth_mbps == 4.0

    def test_scaled_caps_loss_at_one(self):
        p = LinkProfile(base_latency_ms=10, loss_rate=0.5, jitter_ms=1,
                        bandwidth_mbps=1.0)
        assert p.scaled(loss=10).loss_rate == 1.0


class TestTiers:
    def test_weights_sum_to_one(self):
        total = sum(w for _, w in NETWORK_TIERS.values())
        assert total == pytest.approx(1.0)

    def test_all_tiers_valid(self):
        for name, (profile, weight) in NETWORK_TIERS.items():
            assert isinstance(profile, LinkProfile), name
            assert weight > 0

    def test_fiber_beats_terrible(self):
        fiber = NETWORK_TIERS["enterprise_fiber"][0]
        terrible = NETWORK_TIERS["terrible"][0]
        assert fiber.base_latency_ms < terrible.base_latency_ms
        assert fiber.loss_rate < terrible.loss_rate
        assert fiber.bandwidth_mbps > terrible.bandwidth_mbps


class TestSampling:
    def test_deterministic_for_same_stream(self):
        from repro.rng import derive
        a = sample_link_profile(derive(5, "x"))
        b = sample_link_profile(derive(5, "x"))
        assert a == b

    def test_named_tier_respected(self, fresh_rng):
        p = sample_link_profile(fresh_rng, tier="terrible")
        # The anchor is perturbed but stays in its neighbourhood.
        assert p.base_latency_ms > 50

    def test_unknown_tier_raises(self, fresh_rng):
        with pytest.raises(ConfigError):
            sample_link_profile(fresh_rng, tier="carrier_pigeon")

    def test_samples_are_valid_profiles(self, fresh_rng):
        for _ in range(100):
            p = sample_link_profile(fresh_rng)
            assert 0 <= p.loss_rate <= 0.2
            assert p.bandwidth_mbps >= 0.2
            assert 0 <= p.burstiness <= 1

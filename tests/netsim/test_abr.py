"""Tests for the adaptive-bitrate controller."""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.netsim.abr import (
    AbrController,
    graceful_degradation_curve,
    rung_utility,
    simulate_abr,
)
from repro.rng import derive


class TestRungUtility:
    def test_monotone_in_bitrate(self):
        values = [rung_utility(b, 2.5) for b in (0.15, 0.6, 1.5, 2.5)]
        assert values == sorted(values)

    def test_top_rung_is_one(self):
        assert rung_utility(2.5, 2.5) == pytest.approx(1.0)

    def test_diminishing_returns(self):
        low_gain = rung_utility(0.6, 2.5) - rung_utility(0.3, 2.5)
        high_gain = rung_utility(2.5, 2.5) - rung_utility(2.2, 2.5)
        assert low_gain > high_gain

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            rung_utility(0, 2.5)


class TestAbrController:
    def test_rich_bandwidth_reaches_top_rung(self):
        controller = AbrController()
        for _ in range(30):
            selected = controller.step(5.0)
        assert selected == controller.ladder_mbps[-1]

    def test_poor_bandwidth_sits_at_bottom(self):
        controller = AbrController()
        for _ in range(30):
            selected = controller.step(0.2)
        assert selected == controller.ladder_mbps[0]

    def test_downswitch_is_fast_upswitch_is_slow(self):
        controller = AbrController()
        for _ in range(30):
            controller.step(5.0)
        # Bandwidth collapses: must step down within a few intervals.
        down_steps = 0
        while controller.current_bitrate > 0.3 and down_steps < 20:
            controller.step(0.25)
            down_steps += 1
        assert down_steps <= 15
        # Bandwidth recovers: hysteresis forbids instant recovery.
        first = controller.step(5.0)
        assert first < controller.ladder_mbps[-1]

    def test_selected_never_above_ladder(self):
        controller = AbrController()
        rng = derive(91, "abr")
        for bw in rng.uniform(0.1, 6.0, size=200):
            selected = controller.step(float(bw))
            assert selected in controller.ladder_mbps

    @pytest.mark.parametrize("kwargs", [
        dict(ladder_mbps=(1.0,)),
        dict(ladder_mbps=(2.0, 1.0)),
        dict(ladder_mbps=(0.0, 1.0)),
        dict(estimate_gain=0),
        dict(up_headroom=0.9),
        dict(down_trigger=0),
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            AbrController(**kwargs)


class TestSimulateAbr:
    def test_stable_bandwidth_few_switches(self):
        trace = np.full(200, 2.0)
        result = simulate_abr(trace)
        assert result.n_switches <= 2  # initial settle only
        assert result.starvation_fraction == 0.0

    def test_volatile_bandwidth_more_switches_than_stable(self):
        rng = derive(92, "abr")
        volatile = 1.2 * np.exp(rng.normal(0, 0.6, size=300))
        stable = np.full(300, 1.2)
        assert simulate_abr(volatile).n_switches > simulate_abr(stable).n_switches

    def test_hysteresis_damps_flapping(self):
        rng = derive(93, "abr")
        trace = 1.2 * np.exp(rng.normal(0, 0.5, size=300))
        calm = simulate_abr(trace, AbrController(up_headroom=1.5))
        nervous = simulate_abr(trace, AbrController(up_headroom=1.0))
        assert calm.n_switches <= nervous.n_switches

    def test_starvation_measured(self):
        trace = np.full(100, 0.05)  # below the lowest rung
        result = simulate_abr(trace)
        assert result.starvation_fraction == 1.0

    def test_rejects_empty_trace(self):
        with pytest.raises(SimulationError):
            simulate_abr([])


class TestGracefulDegradation:
    def test_fig1_right_mechanism(self):
        """Graceful degradation: quartering bandwidth (4 -> 1 Mbps) costs
        only ~half the utility (sub-sqrt), and the collapse happens below
        the ladder floor — the mechanism behind 'not too bandwidth
        hungry'.  (The engagement flatness in Fig. 1 additionally comes
        from the QoE model's saturation on top of the delivered rung.)"""
        curve = dict(graceful_degradation_curve([0.1, 0.5, 1.0, 2.0, 4.0]))
        assert curve[1.0] / curve[4.0] > (1.0 / 4.0) ** 0.5
        assert curve[1.0] > 0.45  # still clearly usable video
        assert curve[0.1] < 0.5 * curve[4.0]  # the real cliff

    def test_monotone_in_bandwidth(self):
        curve = graceful_degradation_curve([0.2, 0.6, 1.2, 2.5, 4.0])
        utilities = [u for _, u in curve]
        assert utilities == sorted(utilities)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            graceful_degradation_curve([0.0])

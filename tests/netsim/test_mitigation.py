"""Tests for the application-layer mitigation stack."""

import pytest

from repro.errors import ConfigError
from repro.netsim.mitigation import MitigationStack
from repro.netsim.trace import ConditionSample


def sample(lat=20, loss=0.0, jit=2.0, bw=3.0):
    return ConditionSample(t_s=0, latency_ms=lat, loss_pct=loss,
                           jitter_ms=jit, bandwidth_mbps=bw)


class TestMitigationStack:
    def test_fec_repairs_random_in_budget_loss(self):
        stack = MitigationStack()
        eff = stack.apply(sample(loss=1.5), burstiness=0.0)
        # 1.5% raw loss, within budget, ~92% repaired + concealment.
        assert eff.residual_audio_loss_pct < 0.1

    def test_over_budget_loss_leaks_through(self):
        stack = MitigationStack()
        in_budget = stack.apply(sample(loss=2.0), burstiness=0.0)
        over = stack.apply(sample(loss=4.0), burstiness=0.0)
        leak = over.residual_audio_loss_pct - in_budget.residual_audio_loss_pct
        # Everything beyond the 2% budget survives FEC (only concealment
        # damps it): the knee the §3.2 drop-off observation rides on.
        assert leak == pytest.approx(2.0 * (1 - stack.audio_concealment), rel=0.05)

    def test_burstiness_degrades_fec(self):
        stack = MitigationStack()
        random_loss = stack.apply(sample(loss=1.5), burstiness=0.0)
        bursty_loss = stack.apply(sample(loss=1.5), burstiness=0.9)
        assert (
            bursty_loss.residual_audio_loss_pct
            > random_loss.residual_audio_loss_pct
        )

    def test_jitter_buffer_absorbs_small_jitter(self):
        stack = MitigationStack(jitter_buffer_ms=4.0)
        eff = stack.apply(sample(jit=3.0))
        assert eff.residual_video_loss_pct == pytest.approx(0.0, abs=1e-9)

    def test_excess_jitter_hits_video_hardest(self):
        stack = MitigationStack()
        eff = stack.apply(sample(jit=12.0))
        assert eff.residual_video_loss_pct > eff.residual_audio_loss_pct

    def test_buffer_adds_delay(self):
        stack = MitigationStack(jitter_buffer_ms=4.0)
        eff = stack.apply(sample(lat=50, jit=10))
        assert eff.delay_ms == pytest.approx(50 + 4 + 4)

    def test_bandwidth_shares(self):
        stack = MitigationStack(video_target_mbps=1.0, audio_target_mbps=0.064)
        eff = stack.apply(sample(bw=0.5))
        assert eff.video_bitrate_share == 0.5
        assert eff.audio_bitrate_share == 1.0  # audio needs almost nothing

    def test_disabled_stack_passes_loss_through(self):
        eff = MitigationStack.disabled().apply(
            sample(loss=2.0, jit=0.0), burstiness=0.0
        )
        assert eff.residual_audio_loss_pct == pytest.approx(2.0)

    def test_disabled_is_strictly_worse(self):
        s = sample(loss=1.0, jit=8.0)
        on = MitigationStack().apply(s, burstiness=0.3)
        off = MitigationStack.disabled().apply(s, burstiness=0.3)
        assert off.residual_audio_loss_pct > on.residual_audio_loss_pct
        assert off.residual_video_loss_pct > on.residual_video_loss_pct

    def test_rejects_bad_burstiness(self):
        with pytest.raises(ConfigError):
            MitigationStack().apply(sample(), burstiness=1.5)

    @pytest.mark.parametrize("kwargs", [
        dict(fec_efficiency=1.5),
        dict(jitter_buffer_ms=-1),
        dict(audio_concealment=-0.1),
        dict(video_target_mbps=0),
    ])
    def test_rejects_invalid_config(self, kwargs):
        with pytest.raises(ConfigError):
            MitigationStack(**kwargs)

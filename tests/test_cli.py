"""Tests for the command-line interface."""

import datetime as dt

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def calls_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "calls.jsonl"
    code = main([
        "generate-calls", "--n-calls", "60", "--seed", "5",
        "--mos-sample-rate", "0.3", "--out", str(path),
    ])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def posts_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "posts.jsonl"
    code = main([
        "generate-corpus", "--seed", "5", "--start", "2022-01-01",
        "--end", "2022-02-28", "--authors", "300", "--out", str(path),
    ])
    assert code == 0
    return path


class TestGenerate:
    def test_calls_file_loadable(self, calls_path):
        from repro.telemetry.store import CallDataset

        dataset = CallDataset.from_jsonl(calls_path)
        assert len(dataset) == 60

    def test_corpus_file_loadable(self, posts_path):
        from repro.social.corpus import RedditCorpus

        corpus = RedditCorpus.from_jsonl(posts_path)
        assert len(corpus) > 100
        assert corpus.config.span_start == dt.date(2022, 1, 1)

    def test_corpus_roundtrip_preserves_posts(self, posts_path):
        from repro.social.corpus import RedditCorpus

        corpus = RedditCorpus.from_jsonl(posts_path)
        shares = corpus.speed_shares()
        assert shares and shares[0].speed_test.download_mbps > 0


class TestAnalyze:
    def test_analyze_teams_runs(self, calls_path, capsys):
        code = main(["analyze-teams", "--calls", str(calls_path),
                     "--no-controls", "--min-bin-count", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engagement drop" in out
        assert "latency_ms" in out

    def test_analyze_starlink_runs(self, posts_path, capsys):
        code = main(["analyze-starlink", "--posts", str(posts_path),
                     "--peaks", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top sentiment peaks" in out
        assert "outage-keyword spikes" in out

    def test_analyze_teams_report_mode(self, calls_path, capsys):
        code = main(["analyze-teams", "--calls", str(calls_path),
                     "--min-bin-count", "3", "--report"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Implicit user signals" in out

    def test_analyze_starlink_report_mode(self, posts_path, capsys):
        code = main(["analyze-starlink", "--posts", str(posts_path),
                     "--peaks", "2", "--report"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Explicit user signals" in out

    def test_usaas_runs(self, calls_path, posts_path, capsys):
        code = main([
            "usaas", "--calls", str(calls_path), "--posts", str(posts_path),
            "--network", "starlink",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "USaaS digest for starlink" in out


class TestPlanningCommands:
    def test_plan_launches(self, capsys):
        code = main(["plan-launches", "--budget", "1",
                     "--candidates", "2021-7,2022-2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "planned" in out

    def test_tune_mitigation(self, capsys):
        code = main(["tune-mitigation", "--jitter", "14", "--latency", "15"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommendation" in out
        assert "jitter buffer" in out


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestRobustnessFlags:
    def _generate(self, out, *extra):
        return main([
            "generate-calls", "--n-calls", "12", "--seed", "7",
            "--workers", "2", "--out", str(out), *extra,
        ])

    def test_execution_summary_printed(self, tmp_path, capsys):
        out = tmp_path / "calls.jsonl"
        assert self._generate(out, "--max-shard-retries", "1",
                              "--shard-timeout", "30") == 0
        text = capsys.readouterr().out
        assert "execution:" in text
        assert "shards executed" in text

    def test_resume_checkpoint_discarded_after_success(self, tmp_path, capsys):
        out = tmp_path / "calls.jsonl"
        assert self._generate(out, "--resume") == 0
        # The default checkpoint directory sits next to --out and is
        # discarded once the run lands.
        assert not (tmp_path / "calls.jsonl.ckpt").exists()

    def test_kept_checkpoint_serves_resumed_run(self, tmp_path, capsys):
        out = tmp_path / "calls.jsonl"
        assert self._generate(out, "--resume", "--keep-checkpoint") == 0
        first = capsys.readouterr().out
        assert "checkpoint kept:" in first
        ckpt = tmp_path / "calls.jsonl.ckpt"
        assert (ckpt / "manifest.json").exists()
        first_bytes = out.read_bytes()

        assert self._generate(out, "--resume") == 0
        second = capsys.readouterr().out
        assert "resumed:" in second          # every shard came from disk
        assert out.read_bytes() == first_bytes
        assert not ckpt.exists()             # discarded after the rerun

    def test_explicit_checkpoint_dir(self, tmp_path, capsys):
        out = tmp_path / "calls.jsonl"
        ckpt = tmp_path / "elsewhere"
        assert self._generate(out, "--checkpoint-dir", str(ckpt),
                              "--keep-checkpoint") == 0
        assert (ckpt / "manifest.json").exists()


class TestServingFlags:
    """usaas through the overload-safe serving path (exit-code contract)."""

    def test_generous_deadline_serves_normally(self, calls_path, posts_path,
                                               capsys):
        code = main([
            "usaas", "--calls", str(calls_path), "--posts", str(posts_path),
            "--deadline-s", "300",
        ])
        assert code == 0
        assert "USaaS digest for starlink" in capsys.readouterr().out

    def test_hopeless_deadline_exits_3(self, calls_path, posts_path, capsys):
        code = main([
            "usaas", "--calls", str(calls_path), "--posts", str(posts_path),
            "--deadline-s", "0.000001",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "query not served" in err

    def test_priority_flag_engages_serving_path(self, calls_path, posts_path,
                                                capsys):
        code = main([
            "usaas", "--calls", str(calls_path), "--posts", str(posts_path),
            "--priority", "batch",
        ])
        assert code == 0

    def test_exit_code_contract_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["usaas", "--help"])
        out = capsys.readouterr().out
        assert "exit codes: 0 = served" in out
        assert "2 = hard degradation" in out
        assert "deadline exceeded" in out


class TestUsaasSoak:
    def test_soak_runs_and_reports(self, capsys):
        code = main(["usaas", "soak", "--seed", "7", "--duration-s", "1.0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "soak:" in out
        assert "interactive" in out
        assert "drain:" in out

    def test_soak_json_is_seed_deterministic(self, capsys):
        import json

        assert main(["usaas", "soak", "--seed", "9", "--duration-s", "1.0",
                     "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["usaas", "soak", "--seed", "9", "--duration-s", "1.0",
                     "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["submitted"] == (
            first["served"] + first["served_degraded"] + first["shed"]
            + first["deadline_exceeded"] + first["failed"]
        )
        assert first["leftover_pending"] == 0
        assert first["in_flight"] == 0

    def test_soak_different_seed_differs(self, capsys):
        import json

        assert main(["usaas", "soak", "--seed", "9", "--duration-s", "1.0",
                     "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["usaas", "soak", "--seed", "10", "--duration-s", "1.0",
                     "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first != second

    def test_soak_include_flaky_degrades(self, capsys):
        import json

        assert main(["usaas", "soak", "--seed", "7", "--duration-s", "1.0",
                     "--include-flaky", "--json"]) == 0
        counters = json.loads(capsys.readouterr().out)
        assert counters["served"] == 0
        assert counters["served_degraded"] > 0


class TestUsaasClusterSoak:
    def test_cluster_soak_runs_and_reports(self, capsys):
        code = main(["usaas", "cluster-soak", "--seed", "7",
                     "--duration-s", "1.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster soak:" in out
        assert "replicas" in out
        assert "rebalances" in out
        assert "r0" in out and "r1" in out and "r2" in out

    def test_cluster_soak_json_is_seed_deterministic(self, capsys):
        import json

        argv = ["usaas", "cluster-soak", "--seed", "9",
                "--duration-s", "1.5", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        # The default mid-spike crash lost queued work, terminally.
        assert first["failed"] > 0
        assert first["submitted"] == (
            first["served"] + first["served_degraded"] + first["shed"]
            + first["deadline_exceeded"] + first["failed"]
        )
        assert first["drain"]["leftover"] == 0

    def test_cluster_soak_different_seed_differs(self, capsys):
        import json

        assert main(["usaas", "cluster-soak", "--seed", "9",
                     "--duration-s", "1.5", "--json"]) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(["usaas", "cluster-soak", "--seed", "10",
                     "--duration-s", "1.5", "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        assert first != second

    def test_cluster_soak_explicit_faults_and_tenants(self, capsys):
        import json

        assert main([
            "usaas", "cluster-soak", "--seed", "7", "--duration-s", "1.5",
            "--fault", "r1:crash:0.5:0.5", "--fault", "r2:slow:0.2:1.0:0.1",
            "--tenant", "alpha:2", "--tenant", "beta:1:50:5",
            "--json",
        ]) == 0
        counters = json.loads(capsys.readouterr().out)
        assert counters["fault_events"] == 4  # crash+recover, start+end
        assert set(counters["cluster"]["tenants"]) == {"alpha", "beta"}

    def test_cluster_soak_no_faults_is_clean(self, capsys):
        import json

        assert main(["usaas", "cluster-soak", "--seed", "7",
                     "--duration-s", "1.5", "--no-faults", "--json"]) == 0
        counters = json.loads(capsys.readouterr().out)
        assert counters["fault_events"] == 0
        assert counters["failed"] == 0
        assert counters["cluster"]["rebalances"] == 0

    def test_cluster_soak_bad_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["usaas", "cluster-soak", "--fault", "r1:crash"])
        assert exc_info.value.code == 2
        assert "replica:kind:at_s" in capsys.readouterr().err

    def test_cluster_soak_bad_tenant_spec_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["usaas", "cluster-soak", "--tenant", "alpha:-2"])
        assert exc_info.value.code == 2
        assert "bad tenant" in capsys.readouterr().err

    def test_cluster_soak_exit_code_contract_documented(self, capsys):
        with pytest.raises(SystemExit):
            main(["usaas", "cluster-soak", "--help"])
        out = capsys.readouterr().out
        assert "exit codes: 0" in out
        assert "accounting violation" in out
        assert "total outage" in out


class TestUsaasStreamSoak:
    ARGS = ["usaas", "stream-soak", "--seed", "7", "--duration-s", "300"]

    def test_stream_soak_runs_and_reports(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "[stream-soak]" in out
        assert "ledger=closed" in out
        assert "[cp]" in out  # change points printed with attribution

    def test_stream_soak_json_is_seed_deterministic(self, capsys):
        import json

        argv = self.ARGS + ["--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["emitted"] == (
            first["aggregated"] + first["late_dropped"]
            + first["late_side"] + first["deduped"]
        )
        assert first["deduped"] > 0

    def test_stream_soak_crash_resume_matches_clean_run(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        clean = json.loads(capsys.readouterr().out)
        assert main(self.ARGS + ["--crash-at", "120", "--json"]) == 0
        crashed = json.loads(capsys.readouterr().out)
        assert crashed["crashes"] == 1
        assert crashed["resumes"] == 1
        # Only process-internal mechanics may differ (how often queues
        # filled, how many snapshots were cut); every output-facing
        # counter must survive the crash unchanged.
        internal = (
            "crashes", "resumes", "checkpoints", "backpressure_waits",
        )
        for key, value in clean.items():
            if key not in internal:
                assert crashed[key] == value, key

    def test_stream_soak_no_faults_has_no_chaos_buckets(self, capsys):
        import json

        assert main(self.ARGS + ["--no-faults", "--json"]) == 0
        counters = json.loads(capsys.readouterr().out)
        assert counters["deduped"] == 0
        assert counters["late_dropped"] == 0
        assert counters["emitted"] == counters["aggregated"]

    def test_stream_soak_side_policy_counts_late(self, capsys):
        import json

        assert main(self.ARGS + [
            "--late-policy", "side", "--allowed-lateness-s", "2",
            "--json",
        ]) == 0
        counters = json.loads(capsys.readouterr().out)
        assert counters["late_side"] > 0
        assert counters["late_dropped"] == 0

    def test_stream_soak_exit_code_contract_documented(self, capsys):
        with pytest.raises(SystemExit):
            main(["usaas", "stream-soak", "--help"])
        out = capsys.readouterr().out
        assert "exit codes: 0" in out
        assert "accounting violation" in out
        assert "detector blind" in out


class TestUsaasIntegritySoak:
    """usaas integrity-soak: the ε-contamination sweep."""

    ARGS = ["usaas", "integrity-soak", "--n-calls", "120",
            "--corpus-weeks", "2"]

    def test_sweep_holds_and_reports(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "integrity soak [OK]" in out
        assert "eps sweep" in out
        assert "mos trust" in out  # the table header

    def test_json_is_seed_deterministic(self, capsys):
        import json

        argv = self.ARGS + ["--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second
        # The clean row and the top-ε row carry the contract.
        assert first["eps=0.n_fraud_flagged"] == 0
        assert first["eps=0.2.n_fraud_flagged"] > 0

    def test_exit_code_contract_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["usaas", "integrity-soak", "--help"])
        out = capsys.readouterr().out
        assert "exit codes: 0" in out
        assert "naive mean broke" in out
        assert "columnar path diverged" in out


class TestUsaasPredict:
    """usaas predict: fit, grade vs ground truth, optional soak."""

    ARGS = ["usaas", "predict", "--seed", "7", "--n-calls", "80",
            "--mos-sample-rate", "0.5"]

    def test_happy_path_prints_error_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "model vs experienced QoE:" in out
        assert "(all)" in out
        assert "E-model prior MAE" in out

    def test_json_payload_grades_model_and_prior(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sessions"] == payload["model"]["n"]
        assert payload["rated"] > 0
        assert set(payload["emodel_prior"]) >= {"mae", "bias", "per_platform"}
        assert payload["weights"]

    def test_json_is_seed_deterministic(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS + ["--json"]) == 0
        assert capsys.readouterr().out == first

    def test_zero_ratings_exits_2_with_typed_message(self, capsys):
        code = main(["usaas", "predict", "--seed", "7", "--n-calls", "20",
                     "--mos-sample-rate", "0.0"])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot fit the MOS predictor" in err
        assert "0 rated session(s)" in err

    def test_soak_reports_and_stays_within_contract(self, capsys):
        import json

        assert main(self.ARGS + ["--soak-queries", "60", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        soak = payload["soak"]
        assert soak["submitted"] == 60
        assert soak["deadline_exceeded"] == 0
        terminal = (soak["served"] + soak["served_degraded"] + soak["shed"]
                    + soak["failed"])
        assert terminal == soak["submitted"]

    def test_exit_code_contract_documented_in_help(self, capsys):
        with pytest.raises(SystemExit):
            main(["usaas", "predict", "--help"])
        out = capsys.readouterr().out
        assert "exit codes: 0" in out
        assert "2" in out and "3" in out

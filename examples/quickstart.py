#!/usr/bin/env python3
"""Quickstart: the two user-signal pipelines in ~40 lines each.

Runs a small version of both of the paper's studies:

1. implicit signals — simulate conferencing calls and show how user
   actions react to network latency;
2. explicit signals — simulate three months of r/Starlink and score the
   community's sentiment day by day.

Run: ``python examples/quickstart.py``
"""

import datetime as dt

import numpy as np

from repro.io.tables import format_table
from repro.netsim import LinkProfile
from repro.nlp import SentimentAnalyzer
from repro.social import CorpusConfig, CorpusGenerator
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.generator import sweep_value_of


def implicit_signals_demo() -> None:
    """User actions react to network conditions (§3 in miniature)."""
    print("=== Implicit signals: engagement vs latency ===\n")
    generator = CallDatasetGenerator(GeneratorConfig(n_calls=0, seed=1))
    base = LinkProfile(base_latency_ms=20, loss_rate=0.001, jitter_ms=2,
                       bandwidth_mbps=3.5)
    sweep = generator.generate_sweep(
        base, "latency", [15.0, 150.0, 300.0], calls_per_value=100
    )
    by_latency: dict = {}
    for call in sweep:
        by_latency.setdefault(sweep_value_of(call), []).append(
            call.participants[0]  # the focal (swept) participant
        )
    rows = []
    for latency in sorted(by_latency):
        sessions = by_latency[latency]
        rows.append([
            f"{latency:.0f} ms",
            float(np.mean([p.presence_pct for p in sessions])),
            float(np.mean([p.cam_on_pct for p in sessions])),
            float(np.mean([p.mic_on_pct for p in sessions])),
        ])
    print(format_table(
        ["latency", "presence %", "cam on %", "mic on %"], rows
    ))
    print("\nHigher latency -> users mute first, then drop video, then leave.\n")


def explicit_signals_demo() -> None:
    """Social posts carry network experience (§4 in miniature)."""
    print("=== Explicit signals: r/Starlink sentiment ===\n")
    corpus = CorpusGenerator(CorpusConfig(
        seed=1,
        span_start=dt.date(2022, 1, 1),
        span_end=dt.date(2022, 3, 31),
        author_pool_size=500,
    )).generate()
    analyzer = SentimentAnalyzer()
    strong_neg_days: dict = {}
    for post in corpus:
        scores = analyzer.score(post.full_text)
        if scores.is_strong_negative:
            strong_neg_days[post.date] = strong_neg_days.get(post.date, 0) + 1
    worst = sorted(strong_neg_days.items(), key=lambda kv: -kv[1])[:3]
    print(format_table(
        ["day", "strong-negative posts"],
        [[str(day), count] for day, count in worst],
        title=f"{len(corpus)} posts generated; worst sentiment days:",
    ))
    print("\n(2022-01-07 was a real global Starlink outage — the community "
          "noticed.)\n")


if __name__ == "__main__":
    implicit_signals_demo()
    explicit_signals_demo()

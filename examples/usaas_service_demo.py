#!/usr/bin/env python3
"""§5: User Signals as-a-Service, end to end.

The paper's worked example: *"If SpaceX Starlink wants to understand how
users on their network are perceiving the MS Teams experience, USaaS
could filter online user actions and MOS on MS Teams pertaining to
Starlink and the offline feedback on the same on social media."*

This demo wires three signal sources into one service:

* a Teams-like telemetry export for users on a satellite-grade network;
* the same export for a fiber control population;
* the r/Starlink social corpus;

then asks the service the paper's question and prints its digest.

Run: ``python examples/usaas_service_demo.py`` (takes ~1 minute).
"""

import datetime as dt

from repro.core.usaas import (
    UsaasQuery,
    UsaasService,
    social_signals,
    telemetry_signals,
)
from repro.netsim import LinkProfile
from repro.social import CorpusConfig, CorpusGenerator
from repro.telemetry import CallDatasetGenerator, GeneratorConfig

STARLINK_PROFILE = LinkProfile(
    base_latency_ms=45, loss_rate=0.012, jitter_ms=10.0,
    bandwidth_mbps=2.8, burstiness=0.6,
)
FIBER_PROFILE = LinkProfile(
    base_latency_ms=12, loss_rate=0.0004, jitter_ms=1.0,
    bandwidth_mbps=4.0, burstiness=0.1,
)


def build_service() -> UsaasService:
    generator = CallDatasetGenerator(
        GeneratorConfig(n_calls=0, seed=7, mos_sample_rate=0.2)
    )
    starlink_calls = generator.generate_sweep(
        STARLINK_PROFILE, "latency", [45.0], calls_per_value=100,
        focal_only=False,
    )
    fiber_calls = generator.generate_sweep(
        FIBER_PROFILE, "latency", [12.0], calls_per_value=100,
        focal_only=False,
    )
    corpus = CorpusGenerator(CorpusConfig(
        seed=7,
        span_start=dt.date(2022, 1, 1),
        span_end=dt.date(2022, 6, 30),
        author_pool_size=800,
    )).generate()

    service = UsaasService()
    service.register_source(
        "teams/starlink",
        lambda: telemetry_signals(starlink_calls, network="starlink"),
    )
    service.register_source(
        "teams/fiber",
        lambda: telemetry_signals(fiber_calls, network="fiber"),
    )
    service.register_source("reddit", lambda: social_signals(corpus))
    return service


def main() -> None:
    print("Building USaaS with three signal sources...\n")
    service = build_service()

    for network in ("starlink", "fiber"):
        print(f"--- query: how do {network} users perceive Teams? ---")
        report = service.answer(UsaasQuery(network=network, service="teams"))
        print(report.summary)
        print(f"(from {report.n_implicit} implicit + "
              f"{report.n_explicit} explicit signals)\n")

    print("Cross-signal correlations found for starlink:")
    report = service.answer(UsaasQuery(network="starlink", service="teams"))
    for finding in report.correlations:
        print(f"  {finding.metric_a} x {finding.metric_b}: "
              f"r={finding.correlation:+.2f} ({finding.strength}, "
              f"lag {finding.best_lag_days:+d}d, {finding.n_days} days)")

    print("\nNetwork comparison (implicit signals, effect sizes):")
    print(service.compare("starlink", "fiber", service="teams").summary())


if __name__ == "__main__":
    main()

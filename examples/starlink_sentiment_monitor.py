#!/usr/bin/env python3
"""The full §4 study: explicit social feedback as network measurement.

Reproduces the paper's r/Starlink analysis end-to-end:

1. generate two years of r/Starlink (Jan '21 – Dec '22);
2. score every post (Fig. 5a) and extract the top-3 sentiment peaks;
3. annotate each peak with word clouds + news search — and find the
   unreported 22 Apr '22 outage (Fig. 5b);
4. run the outage-keyword monitor over negative threads (Fig. 6);
5. OCR the shared speed-test screenshots and build the monthly median
   downlink track with stability subsampling (Fig. 7);
6. compute Pos vs speed and the two conditioning exceptions (§4.2).

Run: ``python examples/starlink_sentiment_monitor.py`` (takes ~1 minute).
"""

import numpy as np

from repro.analysis import (
    annotate_peak,
    outage_keyword_series,
    pos_vs_speed,
    sentiment_timeline,
    track_speeds,
)
from repro.io.tables import format_table
from repro.social import CorpusConfig, CorpusGenerator, EventCalendar, build_news_index


def main() -> None:
    print("Generating two years of r/Starlink...")
    corpus = CorpusGenerator(CorpusConfig(seed=2024)).generate()
    stats = corpus.weekly_stats()
    print(f"  {len(corpus)} posts "
          f"({stats['posts_per_week']:.0f}/week; paper: 372/week)\n")

    # --- Fig. 5a ------------------------------------------------------------
    print("Scoring sentiment (Fig. 5a)...")
    timeline = sentiment_timeline(corpus)
    peaks = timeline.top_peaks(3)
    index = build_news_index(EventCalendar())
    rows = []
    for day, value in peaks:
        annotation = annotate_peak(corpus, index, day)
        rows.append([
            str(day),
            int(value),
            timeline.peak_polarity(day),
            annotation.headline or "(nothing in the news!)",
        ])
    print(format_table(
        ["peak day", "strong posts", "polarity", "news annotation"], rows
    ))
    print("  -> the 3rd peak is an outage no outlet ever covered (Fig. 5b)\n")

    # --- Fig. 6 ---------------------------------------------------------------
    outages = outage_keyword_series(corpus, scores=timeline.scores)
    spikes = outages.top_spike_days(2)
    print("Fig. 6 — outage keywords in negative threads; largest spikes:")
    for day, value in spikes:
        print(f"  {day}: {int(value)} keyword occurrences")
    transients = outages.transient_peak_days(
        spike_threshold=spikes[-1][1] * 0.3, floor=3
    )
    print(f"  plus {len(transients)} transient-outage days nobody reported\n")

    # --- Fig. 7 ---------------------------------------------------------------
    print("OCR-ing shared speed-test screenshots (Fig. 7)...")
    track = track_speeds(corpus)
    print(f"  extracted {track.n_extracted}/{track.n_shared} screenshots "
          f"({100 * track.extraction_rate:.0f}%)")
    rise = track.median.slice((2021, 1), (2021, 9)).trend()
    fall = track.median.slice((2021, 9), (2022, 12)).trend()
    print(f"  median downlink trend Jan-Sep '21: {rise:+.1f} Mbps/month")
    print(f"  median downlink trend Sep '21-Dec '22: {fall:+.1f} Mbps/month")
    print(f"  subsample stability (95%/90%): max deviation "
          f"{100 * track.max_subsample_deviation():.1f}%\n")

    # --- §4.2 fulcrum ---------------------------------------------------------
    fulcrum = pos_vs_speed(corpus, track.median, scores=timeline.scores)
    exc = fulcrum.exception_dec21_vs_apr21()
    inv = fulcrum.inversion_2022()
    print("§4.2 'the wheel of time':")
    print(f"  spring '21: {exc['speed_apr21']:.0f} Mbps, Pos {exc['pos_apr21']:.2f}")
    print(f"  Q4 '21    : {exc['speed_dec21']:.0f} Mbps, Pos {exc['pos_dec21']:.2f}"
          "   <- faster but unhappier (conditioned by the peak era)")
    print(f"  Mar-Dec '22: speeds {inv['speed_trend']:+.2f} Mbps/month while "
          f"Pos {inv['pos_trend']:+.3f}/month"
          "   <- users acclimatize to less")


if __name__ == "__main__":
    main()

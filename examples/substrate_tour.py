#!/usr/bin/env python3
"""A tour of the network substrates under the reproduction.

The paper-facing examples treat the simulators as black boxes; this one
opens them up:

1. queueing — where latency/jitter/loss physically come from;
2. loss processes — why burstiness defeats FEC;
3. mitigation + QoE — what the user actually experiences;
4. ABR — why video degrades gracefully with bandwidth.

Run: ``python examples/substrate_tour.py``
"""

import numpy as np

from repro.io.tables import format_table
from repro.netsim import (
    AbrController,
    BottleneckQueue,
    GilbertElliottLoss,
    MitigationStack,
    QoeModel,
    profile_for_load,
    simulate_abr,
)
from repro.netsim.abr import graceful_degradation_curve
from repro.netsim.trace import ConditionSample
from repro.rng import derive


def queueing_tour() -> None:
    print("=== 1. The bottleneck queue ===\n")
    queue = BottleneckQueue(capacity_mbps=10, buffer_packets=30)
    rows = []
    for load in (2.0, 6.0, 9.0, 9.9):
        rows.append([
            f"{load:.1f} / 10 Mbps",
            queue.mean_wait_ms(load),
            queue.delay_std_ms(load),
            100 * queue.blocking_probability(load),
        ])
    print(format_table(
        ["offered load", "mean wait ms", "jitter ms", "loss %"], rows,
        title="M/M/1/K bottleneck: congestion manufactures all three evils",
    ))
    profile = profile_for_load(base_latency_ms=25, offered_mbps=9.0,
                               queue=queue)
    print(f"\n-> as a LinkProfile: {profile}\n")


def burstiness_tour() -> None:
    print("=== 2. Bursty loss vs FEC ===\n")
    stack = MitigationStack()
    sample = ConditionSample(t_s=0, latency_ms=20, loss_pct=1.5,
                             jitter_ms=2, bandwidth_mbps=3.0)
    rows = []
    for burstiness in (0.0, 0.5, 0.9):
        chain = GilbertElliottLoss(rate=0.015, burstiness=burstiness)
        eff = stack.apply(sample, burstiness=burstiness)
        rows.append([
            f"{burstiness:.1f}",
            chain.expected_burst_length(),
            eff.residual_audio_loss_pct,
        ])
    print(format_table(
        ["burstiness", "mean burst (pkts)", "residual audible loss %"],
        rows,
        title="Same 1.5% raw loss; bursts overwhelm FEC block protection",
    ))
    print()


def qoe_tour() -> None:
    print("=== 3. From conditions to experience ===\n")
    stack, model = MitigationStack(), QoeModel()
    scenarios = {
        "pristine fiber": ConditionSample(t_s=0, latency_ms=12, loss_pct=0.02,
                                          jitter_ms=1, bandwidth_mbps=4.0),
        "long VPN detour": ConditionSample(t_s=0, latency_ms=280, loss_pct=0.05,
                                           jitter_ms=2, bandwidth_mbps=3.5),
        "wifi by microwave": ConditionSample(t_s=0, latency_ms=30, loss_pct=0.5,
                                             jitter_ms=14, bandwidth_mbps=2.5),
        "overloaded DSL": ConditionSample(t_s=0, latency_ms=70, loss_pct=3.5,
                                          jitter_ms=7, bandwidth_mbps=0.8),
    }
    rows = []
    for name, sample in scenarios.items():
        scores = model.score(stack.apply(sample, burstiness=0.4))
        rows.append([name, scores.audio_mos, scores.video_mos,
                     scores.interactivity, scores.overall_mos])
    print(format_table(
        ["path", "audio MOS", "video MOS", "interactivity", "overall"],
        rows,
        title="Different impairments hurt different dimensions — which is "
              "why users take different actions (Fig. 1)",
    ))
    print()


def abr_tour() -> None:
    print("=== 4. Graceful video degradation ===\n")
    curve = graceful_degradation_curve([0.2, 0.5, 1.0, 2.0, 4.0])
    print(format_table(
        ["mean bandwidth Mbps", "delivered utility"],
        [[bw, u] for bw, u in curve],
        title="The bitrate ladder: quartering bandwidth costs about half "
              "the utility (Fig. 1 right's mechanism)",
    ))
    rng = derive(5, "tour")
    volatile = 1.2 * np.exp(rng.normal(0, 0.5, size=240))
    nervous = simulate_abr(volatile, AbrController(up_headroom=1.0))
    calm = simulate_abr(volatile, AbrController(up_headroom=1.5))
    print(f"\nhysteresis on a volatile link: {nervous.n_switches} rung "
          f"switches without headroom vs {calm.n_switches} with")


if __name__ == "__main__":
    queueing_tour()
    burstiness_tour()
    qoe_tour()
    abr_tour()

#!/usr/bin/env python3
"""§6 future work, implemented: acting on user signals.

Four closed loops the paper sketches as future directions:

1. **Confounder adjustment** ("Are networks to blame always?") — how much
   of a naive engagement-vs-latency slope is composition, not causation;
2. **Early warning** — engagement confirms a quality regression days
   before the sparse MOS stream can;
3. **Online resource tuning** — per-cohort jitter-buffer/FEC settings
   chosen from predicted engagement;
4. **Deployment planning** — placing extra Starlink launches where they
   maximise community satisfaction under the conditioning model.

Run: ``python examples/network_planning.py``
"""

import numpy as np

from repro.engagement.adjustment import composition_bias_demo
from repro.engagement.early_warning import detection_latency_experiment
from repro.netsim.link import LinkProfile
from repro.netsim.tuning import MitigationTuner, tuning_gain
from repro.rng import derive
from repro.starlink.planning import LaunchPlanner, plan_outcome
from repro.telemetry import CallDatasetGenerator, GeneratorConfig


def confounders() -> None:
    print("=== 1. Are networks to blame always? ===\n")
    dataset = CallDatasetGenerator(
        GeneratorConfig(n_calls=800, seed=11, decorrelate=0.7)
    ).generate()
    numbers = composition_bias_demo(
        dataset.participants(), edges=(0, 120, 350)
    )
    print(f"  naive Mic On drop over latency : {numbers['raw_drop_pct']:.1f} %")
    print(f"  after platform adjustment      : {numbers['adjusted_drop_pct']:.1f} %")
    print(f"  composition bias removed       : {numbers['composition_bias_pct']:.1f} points\n")


def early_warning() -> None:
    print("=== 2. Early warning: engagement vs sampled MOS ===\n")
    outcomes = detection_latency_experiment(derive(11, "planning-demo"))
    eng, mos = outcomes["engagement"], outcomes["mos"]
    print(f"  regression ships on day 40 of 60")
    print(f"  engagement detector fires after {eng.days_to_detect} day(s)")
    if mos.days_to_detect is None:
        print("  MOS detector never confirms within the horizon "
              "(0.1-1% sampling is too thin)\n")
    else:
        print(f"  MOS detector fires after {mos.days_to_detect} day(s)\n")


def resource_tuning() -> None:
    print("=== 3. Per-cohort mitigation tuning ===\n")
    cohorts = {
        "jittery cable": LinkProfile(base_latency_ms=15, loss_rate=0.003,
                                     jitter_ms=14, bandwidth_mbps=3.0,
                                     burstiness=0.4),
        "clean satellite": LinkProfile(base_latency_ms=120, loss_rate=0.002,
                                       jitter_ms=2, bandwidth_mbps=2.5,
                                       burstiness=0.3),
        "lossy DSL": LinkProfile(base_latency_ms=40, loss_rate=0.025,
                                 jitter_ms=5, bandwidth_mbps=1.5,
                                 burstiness=0.6),
    }
    results = tuning_gain(
        cohorts, MitigationTuner(fec_budgets_pct=(1.0, 2.0, 4.0))
    )
    for name, r in results.items():
        print(f"  {name:16s} -> buffer {r.stack.jitter_buffer_ms:4.0f} ms, "
              f"FEC budget {r.stack.fec_budget_pct:.0f}%  "
              f"(QoE {r.default_score:.2f} -> {r.score:.2f}, "
              f"gain {r.gain:+.2f})")
    print()


def deployment_planning() -> None:
    print("=== 4. Sentiment-aware launch planning ===\n")
    baseline = plan_outcome({})
    print(f"  historical plan: mean satisfaction "
          f"{baseline.mean_satisfaction:.3f}, worst month "
          f"{baseline.min_satisfaction:.3f}")
    planner = LaunchPlanner(objective="mean")
    candidates = [(2021, 7), (2021, 12), (2022, 2), (2022, 9)]
    planned = planner.plan(3, candidates)
    print(f"  +3 launches, greedily placed: {planned.extra_launches}")
    print(f"  planned: mean satisfaction {planned.mean_satisfaction:.3f}, "
          f"worst month {planned.min_satisfaction:.3f}")
    print("  (the planner cushions demand shocks rather than boosting "
          "already-good months — raising the peak would only raise "
          "expectations)")


if __name__ == "__main__":
    confounders()
    early_warning()
    resource_tuning()
    deployment_planning()

#!/usr/bin/env python3
"""The full §3 study: implicit user actions as network measurement.

Reproduces the paper's MS Teams analysis end-to-end on a synthetic call
population:

1. generate an observational enterprise call dataset;
2. apply the paper's cohort filter (enterprise, business hours, weekdays,
   3+ participants, US-only);
3. compute the Fig. 1 engagement-vs-condition curves with the paper's
   hold-other-metrics-constant windows;
4. compute the Fig. 2 latency x loss compounding grid;
5. compute Fig. 4's engagement <-> MOS correlation on the rated subset;
6. train the §5 MOS predictor and compare feature families.

Run: ``python examples/teams_engagement_study.py`` (takes ~1 minute).
"""

import numpy as np

from repro.engagement import (
    CohortFilter,
    compound_presence_grid,
    fig1_curves,
    mos_by_engagement,
)
from repro.engagement.predictor import (
    ALL_FEATURES,
    NETWORK_FEATURES,
    train_test_evaluate,
)
from repro.io.tables import format_table
from repro.telemetry import CallDatasetGenerator, GeneratorConfig


def main() -> None:
    print("Generating the call dataset (1500 meetings)...")
    dataset = CallDatasetGenerator(GeneratorConfig(
        n_calls=1500, seed=2024, mos_sample_rate=0.2, decorrelate=0.65
    )).generate()
    print(f"  {len(dataset)} calls, {dataset.n_participants} sessions")

    cohort = CohortFilter().apply(dataset)
    pool = list(cohort.participants())
    print(f"  cohort filter kept {len(cohort)} calls / {len(pool)} sessions\n")

    # --- Fig. 1 -----------------------------------------------------------
    print("Fig. 1 — engagement vs network conditions "
          "(other metrics held in the paper's control windows):")
    result = fig1_curves(pool, min_bin_count=8)
    for metric in ("latency_ms", "loss_pct", "jitter_ms", "bandwidth_mbps"):
        parts = []
        for engagement in ("presence_pct", "cam_on_pct", "mic_on_pct"):
            try:
                drop = result.relative_drop_pct(metric, engagement)
                parts.append(f"{engagement.replace('_pct', '')}: -{drop:.0f}%")
            except Exception:
                parts.append(f"{engagement.replace('_pct', '')}: n/a")
        print(f"  {metric:16s} worst-bin drop  " + "  ".join(parts))

    # --- Fig. 2 -----------------------------------------------------------
    grid = compound_presence_grid(list(dataset.participants()))
    print(f"\nFig. 2 — compounding latency x loss: Presence dips up to "
          f"{grid.max_dip_pct():.0f}% in the worst cell (paper: ~50%)")

    # --- Fig. 4 -----------------------------------------------------------
    mos = mos_by_engagement(dataset.participants())
    print(f"\nFig. 4 — engagement vs MOS over {mos.n_rated} rated sessions:")
    print(format_table(
        ["engagement metric", "spearman r with MOS"],
        sorted(mos.correlations.items(), key=lambda kv: -kv[1]),
    ))
    print(f"  strongest correlate: {mos.strongest_metric()} "
          "(paper: Presence)")

    # --- §5 predictor -------------------------------------------------------
    print("\n§5 — predicting MOS for the 99%+ of sessions without ratings:")
    for name, features in (
        ("network only", NETWORK_FEATURES),
        ("network + engagement", ALL_FEATURES),
    ):
        report = train_test_evaluate(
            dataset.participants(), features=features, seed=3
        )
        print(f"  {name:22s} MAE={report.mae:.3f}  corr={report.correlation:.3f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""§5 corroboration: implicit signals confirm what social media reports.

The paper: *"User actions could be used to corroborate the user posts on
social media."*  This demo stages the 7 Jan '22 Starlink outage in both
signal families and shows USaaS matching them:

1. a Teams-like call dataset where every path degrades on the outage day
   (the incident is injected at the *network* level — nobody tells the
   behaviour engine there's an outage; the drop-off spike is emergent);
2. the r/Starlink corpus, where the same day produces an outage-keyword
   and strong-negative-sentiment spike;
3. the USaaS monitoring loop raising a drop-off alarm on the same day the
   social pipeline's keyword monitor spikes.

Run: ``python examples/outage_cross_validation.py`` (~1 minute).
"""

import datetime as dt

from repro.analysis import outage_keyword_series, sentiment_timeline
from repro.core.usaas import UsaasService, telemetry_signals, watch_metric
from repro.engagement.early_warning import DriftDetector
from repro.social import CorpusConfig, CorpusGenerator
from repro.telemetry import CallDatasetGenerator, GeneratorConfig
from repro.telemetry.meetings import MeetingScheduler

OUTAGE_DAY = dt.date(2022, 1, 7)


def main() -> None:
    print("Simulating January 2022 in both signal families...\n")

    # --- implicit side: calls, with the incident injected at the network.
    scheduler = MeetingScheduler(
        span_start=dt.date(2021, 12, 1), span_end=dt.date(2022, 1, 31)
    )
    dataset = CallDatasetGenerator(
        GeneratorConfig(n_calls=2500, seed=13,
                        outage_days={OUTAGE_DAY: 0.9}),
        scheduler=scheduler,
    ).generate()
    signals = telemetry_signals(dataset, network="starlink")

    alarms = watch_metric(
        signals, "drop_off",
        DriftDetector(direction="rise", warmup_days=21,
                      consecutive_days=1),
    )
    print("implicit side (Teams telemetry):")
    if alarms:
        for alarm in alarms[:3]:
            print(f"  drop-off alarm on {alarm.day} "
                  f"(z={alarm.z_score:+.1f}, day mean "
                  f"{alarm.day_mean:.0f}% across {alarm.n_signals} sessions)")
    else:
        print("  no alarms (unexpected!)")

    # --- explicit side: the corpus over the same window.
    corpus = CorpusGenerator(CorpusConfig(
        seed=13,
        span_start=dt.date(2021, 12, 1),
        span_end=dt.date(2022, 1, 31),
        author_pool_size=800,
    )).generate()
    timeline = sentiment_timeline(corpus)
    outages = outage_keyword_series(corpus, scores=timeline.scores)
    top_day, top_count = outages.top_spike_days(1)[0]
    print("\nexplicit side (r/Starlink):")
    print(f"  biggest outage-keyword day: {top_day} "
          f"({int(top_count)} occurrences)")
    print(f"  strong-negative posts that day: "
          f"{int(timeline.strong_negative[top_day])}")

    # --- the corroboration.
    print("\ncorroboration:")
    implicit_days = {a.day for a in alarms}
    if top_day in implicit_days:
        print(f"  ✓ both families independently flag {top_day} — "
              "the social report is corroborated by in-call actions")
    else:
        print(f"  implicit alarms: {sorted(implicit_days)}; "
              f"social spike: {top_day}")


if __name__ == "__main__":
    main()
